#ifndef FLOWER_OPT_NSGA2_H_
#define FLOWER_OPT_NSGA2_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "opt/problem.h"

namespace flower::opt {

/// Per-generation solver telemetry, reported through
/// Nsga2Config::on_generation after environmental selection.
struct Nsga2GenerationStats {
  size_t generation = 0;   ///< 0-based generation index.
  size_t front_size = 0;   ///< Rank-0 individuals in the new population.
  size_t evaluations = 0;  ///< Cumulative objective evaluations so far.
  /// Hypervolume of the feasible rank-0 front w.r.t. the nadir of the
  /// initial population; NaN for problems with != 2 objectives.
  double hypervolume = std::numeric_limits<double>::quiet_NaN();
  /// Consecutive generations whose convergence indicator improved by
  /// less than Nsga2Config::stall_tolerance; always 0 when the
  /// early-exit is disabled.
  size_t stalled_generations = 0;
};

/// Tuning parameters of the NSGA-II solver. Defaults follow Deb et al.
/// (TEVC 2002): SBX crossover with eta_c = 15, polynomial mutation with
/// eta_m = 20 and rate 1/n.
struct Nsga2Config {
  size_t population_size = 100;   ///< Must be even and >= 4.
  size_t generations = 250;
  double crossover_prob = 0.9;
  double mutation_prob = -1.0;    ///< < 0 means 1 / num_variables.
  double eta_crossover = 15.0;    ///< SBX distribution index.
  double eta_mutation = 20.0;     ///< Polynomial mutation index.
  uint64_t seed = 42;
  /// Worker threads for the per-generation variation/evaluation fan-out
  /// (0 = hardware concurrency). Results are bit-identical at any
  /// thread count: every offspring pair draws from its own RNG stream
  /// keyed by (seed, generation, pair index), and all reductions run on
  /// the calling thread. With num_threads > 1 the Problem's Evaluate
  /// must be safe to call concurrently (const and stateless suffices).
  size_t num_threads = 1;
  /// Optional warm-start seed population: decision vectors injected
  /// into the initial population in order (a previous solve's
  /// final_population x's, a neighbouring window's plans, ...). Each
  /// seed must have one entry per problem variable (InvalidArgument
  /// otherwise); values are repaired — clamped to the variable bounds,
  /// integers rounded — before evaluation. When more seeds than
  /// population_size are supplied only the first population_size are
  /// used. Remaining slots are filled from the same per-index RNG
  /// streams as a cold start, so warm-started runs stay bit-identical
  /// at any thread count. Empty (the default) is a cold start.
  std::vector<std::vector<double>> seed_population;
  /// Convergence early-exit: stop once this many *consecutive*
  /// generations each improve the convergence indicator by less than
  /// stall_tolerance (relative to the best indicator so far). The
  /// indicator is the exact front hypervolume w.r.t. the initial
  /// population's nadir for 2- and 3-objective problems, and a
  /// front-unchanged check otherwise. Computed on the coordinator
  /// thread from the deterministic front, so the exit generation is
  /// deterministic and thread-count-invariant. 0 (the default)
  /// disables the exit and reproduces the fixed-generation behavior
  /// exactly.
  size_t stall_generations = 0;
  double stall_tolerance = 1e-4;  ///< Relative improvement threshold.
  /// Optional observer invoked once per generation; keeps the solver
  /// free of any telemetry dependency. Always called on the thread that
  /// called Solve, after the generation's parallel section has joined.
  std::function<void(const Nsga2GenerationStats&)> on_generation;
};

/// Outcome of an NSGA-II run.
struct Nsga2Result {
  /// Deduplicated feasible first front of the final population, sorted
  /// lexicographically by objectives.
  std::vector<Solution> pareto_front;
  /// The whole final population (diagnostics / warm starts: feed the
  /// x vectors back through Nsga2Config::seed_population).
  std::vector<Solution> final_population;
  size_t evaluations = 0;
  /// Generations actually run (== config.generations unless the
  /// convergence early-exit fired).
  size_t generations_run = 0;
  /// True when the stall criterion stopped the run early.
  bool early_exit = false;
};

/// NSGA-II (Deb et al. 2002), the solver the paper uses to search the
/// provisioning-plan space (§3.2).
///
/// Implements fast non-dominated sorting, crowding-distance truncation,
/// binary tournament selection under constrained domination, simulated
/// binary crossover, and polynomial mutation. Integer variables are
/// handled by rounding before evaluation. Deterministic for a fixed
/// config, independent of num_threads.
///
/// The steady-state generation loop is allocation-lean: sort/crowding
/// scratch lives in a reusable workspace, environmental selection
/// permutes a persistent parent+offspring arena instead of copying
/// individuals, and all per-generation buffers are reserved up front,
/// so after warm-up the loop performs no heap allocations of its own
/// (bench/perf_micro guards this).
class Nsga2 {
 public:
  explicit Nsga2(Nsga2Config config) : config_(std::move(config)) {}

  /// Runs the solver. Errors: population_size odd or < 4, generations
  /// == 0, a problem with no variables or objectives, or a seed
  /// population entry whose arity does not match the problem.
  Result<Nsga2Result> Solve(const Problem& problem) const;

 private:
  Nsga2Config config_;
};

namespace internal {

/// An individual with NSGA-II bookkeeping; exposed for unit tests.
struct Individual {
  Solution sol;
  int rank = -1;
  double crowding = 0.0;
};

/// Reusable scratch for the non-dominated sort, crowding assignment,
/// and environmental selection. Buffers are reserved to their maxima
/// by Reserve(), after which a generation performs no allocations.
struct SortWorkspace {
  /// Pairwise domination relation: bit (p, q) set means p dominates q.
  /// Row-major, `words_per_row` 64-bit words per row.
  std::vector<uint64_t> dominates;
  size_t words_per_row = 0;
  std::vector<int> domination_count;
  /// Fronts of the last sort, concatenated: front i is
  /// front_data[front_offsets[i] .. front_offsets[i + 1]).
  std::vector<size_t> front_data;
  std::vector<size_t> front_offsets;
  /// Index scratch for crowding sorts and crowding truncation.
  std::vector<size_t> order;
  std::vector<size_t> truncate;
  /// Environmental-selection output and arena permutation scratch.
  std::vector<size_t> selected;
  std::vector<size_t> perm;
  std::vector<char> visited;

  /// Pre-sizes every buffer for populations of up to `n` individuals.
  void Reserve(size_t n);
  size_t num_fronts() const { return front_offsets.size() - 1; }
  const size_t* front_begin(size_t i) const {
    return front_data.data() + front_offsets[i];
  }
  size_t front_size(size_t i) const {
    return front_offsets[i + 1] - front_offsets[i];
  }
};

/// Crowded-comparison operator (Deb 2002): lower rank wins; equal rank
/// → larger crowding distance wins.
bool CrowdedLess(const Individual& a, const Individual& b);

/// Binary tournament under the crowded-comparison operator over
/// pop[0..n). Draws two *distinct* competitor indices (collisions are
/// redrawn) so a slot never silently degrades to a single random pick;
/// returns the winning index. Exposed for unit tests.
size_t BinaryTournamentIndex(const Individual* pop, size_t n, Rng* rng);
inline size_t BinaryTournamentIndex(const std::vector<Individual>& pop,
                                    Rng* rng) {
  return BinaryTournamentIndex(pop.data(), pop.size(), rng);
}

/// Fast non-dominated sort over pop[0..n): assigns ranks (0 = best)
/// and fills the workspace's front lists. Allocation-free once the
/// workspace is reserved for n.
void FastNonDominatedSort(Individual* pop, size_t n, SortWorkspace* ws);

/// Convenience wrapper returning the fronts as index lists (tests and
/// one-shot callers).
std::vector<std::vector<size_t>> FastNonDominatedSort(
    std::vector<Individual>* pop);

/// Assigns crowding distance within one front (indices into pop);
/// `order_scratch` is reused between calls. Degenerate objective
/// ranges (f_max == f_min, or non-finite spans) contribute zero
/// distance instead of NaN/Inf.
void AssignCrowdingDistance(const size_t* front, size_t front_len,
                            Individual* pop,
                            std::vector<size_t>* order_scratch);
void AssignCrowdingDistance(const std::vector<size_t>& front,
                            std::vector<Individual>* pop);

}  // namespace internal
}  // namespace flower::opt

#endif  // FLOWER_OPT_NSGA2_H_
