#ifndef FLOWER_OPT_NSGA2_H_
#define FLOWER_OPT_NSGA2_H_

#include <functional>
#include <limits>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "opt/problem.h"

namespace flower::opt {

/// Per-generation solver telemetry, reported through
/// Nsga2Config::on_generation after environmental selection.
struct Nsga2GenerationStats {
  size_t generation = 0;   ///< 0-based generation index.
  size_t front_size = 0;   ///< Rank-0 individuals in the new population.
  size_t evaluations = 0;  ///< Cumulative objective evaluations so far.
  /// Hypervolume of the feasible rank-0 front w.r.t. the nadir of the
  /// initial population; NaN for problems with != 2 objectives.
  double hypervolume = std::numeric_limits<double>::quiet_NaN();
};

/// Tuning parameters of the NSGA-II solver. Defaults follow Deb et al.
/// (TEVC 2002): SBX crossover with eta_c = 15, polynomial mutation with
/// eta_m = 20 and rate 1/n.
struct Nsga2Config {
  size_t population_size = 100;   ///< Must be even and >= 4.
  size_t generations = 250;
  double crossover_prob = 0.9;
  double mutation_prob = -1.0;    ///< < 0 means 1 / num_variables.
  double eta_crossover = 15.0;    ///< SBX distribution index.
  double eta_mutation = 20.0;     ///< Polynomial mutation index.
  uint64_t seed = 42;
  /// Worker threads for the per-generation variation/evaluation fan-out
  /// (0 = hardware concurrency). Results are bit-identical at any
  /// thread count: every offspring pair draws from its own RNG stream
  /// keyed by (seed, generation, pair index), and all reductions run on
  /// the calling thread. With num_threads > 1 the Problem's Evaluate
  /// must be safe to call concurrently (const and stateless suffices).
  size_t num_threads = 1;
  /// Optional observer invoked once per generation; keeps the solver
  /// free of any telemetry dependency. Always called on the thread that
  /// called Solve, after the generation's parallel section has joined.
  std::function<void(const Nsga2GenerationStats&)> on_generation;
};

/// Outcome of an NSGA-II run.
struct Nsga2Result {
  /// Deduplicated feasible first front of the final population, sorted
  /// lexicographically by objectives.
  std::vector<Solution> pareto_front;
  /// The whole final population (diagnostics / warm starts).
  std::vector<Solution> final_population;
  size_t evaluations = 0;
};

/// NSGA-II (Deb et al. 2002), the solver the paper uses to search the
/// provisioning-plan space (§3.2).
///
/// Implements fast non-dominated sorting, crowding-distance truncation,
/// binary tournament selection under constrained domination, simulated
/// binary crossover, and polynomial mutation. Integer variables are
/// handled by rounding before evaluation. Deterministic for a fixed
/// config, independent of num_threads.
class Nsga2 {
 public:
  explicit Nsga2(Nsga2Config config) : config_(config) {}

  /// Runs the solver. Errors: population_size odd or < 4, generations
  /// == 0, or a problem with no variables or objectives.
  Result<Nsga2Result> Solve(const Problem& problem) const;

 private:
  Nsga2Config config_;
};

namespace internal {

/// An individual with NSGA-II bookkeeping; exposed for unit tests.
struct Individual {
  Solution sol;
  int rank = -1;
  double crowding = 0.0;
};

/// Crowded-comparison operator (Deb 2002): lower rank wins; equal rank
/// → larger crowding distance wins.
bool CrowdedLess(const Individual& a, const Individual& b);

/// Binary tournament under the crowded-comparison operator. Draws two
/// *distinct* competitor indices (collisions are redrawn) so a slot
/// never silently degrades to a single random pick; returns the winning
/// index. Exposed for unit tests.
size_t BinaryTournamentIndex(const std::vector<Individual>& pop, Rng* rng);

/// Fast non-dominated sort: assigns ranks (0 = best) and returns the
/// fronts as index lists.
std::vector<std::vector<size_t>> FastNonDominatedSort(
    std::vector<Individual>* pop);

/// Assigns crowding distance within one front (indices into pop).
/// Degenerate objective ranges (f_max == f_min, or non-finite spans)
/// contribute zero distance instead of NaN/Inf.
void AssignCrowdingDistance(const std::vector<size_t>& front,
                            std::vector<Individual>* pop);

}  // namespace internal
}  // namespace flower::opt

#endif  // FLOWER_OPT_NSGA2_H_
