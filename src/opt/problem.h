#ifndef FLOWER_OPT_PROBLEM_H_
#define FLOWER_OPT_PROBLEM_H_

#include <string>
#include <vector>

namespace flower::opt {

/// Bounds and type of one decision variable.
struct VariableSpec {
  std::string name;
  double lower = 0.0;
  double upper = 1.0;
  /// Integer variables are rounded to the nearest integer before
  /// evaluation (resource counts: shards, VMs, capacity units).
  bool integer = false;
};

/// A multi-objective optimization problem.
///
/// Convention: **all objectives are maximized** (the paper's Eq. 3
/// maximizes the per-layer resource shares). Constraints are expressed
/// as violation amounts: `Evaluate` fills `violations` with one
/// non-negative number per constraint, where 0 means satisfied. The
/// solver uses Deb's constrained-domination rule over the sum of
/// violations.
class Problem {
 public:
  virtual ~Problem() = default;

  virtual const std::vector<VariableSpec>& variables() const = 0;
  virtual size_t num_objectives() const = 0;
  virtual size_t num_constraints() const = 0;

  /// Computes objective values (size num_objectives, maximized) and
  /// constraint violations (size num_constraints, >= 0) at `x`.
  virtual void Evaluate(const std::vector<double>& x,
                        std::vector<double>* objectives,
                        std::vector<double>* violations) const = 0;

  size_t num_variables() const { return variables().size(); }
};

/// One evaluated candidate solution.
struct Solution {
  std::vector<double> x;
  std::vector<double> objectives;
  double total_violation = 0.0;

  bool feasible() const { return total_violation <= 0.0; }
};

}  // namespace flower::opt

#endif  // FLOWER_OPT_PROBLEM_H_
