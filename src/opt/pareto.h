#ifndef FLOWER_OPT_PARETO_H_
#define FLOWER_OPT_PARETO_H_

#include <vector>

#include "opt/problem.h"

namespace flower::opt {

/// True when `a` Pareto-dominates `b` under maximization: a is no worse
/// in every objective and strictly better in at least one.
bool Dominates(const std::vector<double>& a, const std::vector<double>& b);

/// Deb's constrained-domination: a feasible solution dominates an
/// infeasible one; among infeasible solutions the smaller total
/// violation dominates; among feasible solutions plain Pareto
/// domination applies.
bool ConstrainedDominates(const Solution& a, const Solution& b);

/// Extracts the non-dominated subset of `solutions` (feasible solutions
/// only, under plain Pareto domination). Duplicate objective vectors are
/// collapsed to one representative.
std::vector<Solution> ParetoFront(const std::vector<Solution>& solutions);

/// Hypervolume of a 2-objective maximization front w.r.t. reference
/// point (ref_x, ref_y): the area jointly dominated by `points` and
/// dominating the reference. Points not strictly better than the
/// reference in both objectives contribute nothing. Returns 0 for an
/// empty front; points must all have exactly 2 objectives.
double Hypervolume2D(const std::vector<std::vector<double>>& points,
                     double ref_x, double ref_y);

}  // namespace flower::opt

#endif  // FLOWER_OPT_PARETO_H_
