#ifndef FLOWER_OPT_PARETO_H_
#define FLOWER_OPT_PARETO_H_

#include <array>
#include <utility>
#include <vector>

#include "opt/problem.h"

namespace flower::opt {

/// True when `a` Pareto-dominates `b` under maximization: a is no worse
/// in every objective and strictly better in at least one.
bool Dominates(const std::vector<double>& a, const std::vector<double>& b);

/// Deb's constrained-domination: a feasible solution dominates an
/// infeasible one; among infeasible solutions the smaller total
/// violation dominates; among feasible solutions plain Pareto
/// domination applies.
bool ConstrainedDominates(const Solution& a, const Solution& b);

/// Extracts the non-dominated subset of `solutions` (feasible solutions
/// only, under plain Pareto domination). Duplicate objective vectors are
/// collapsed to one representative.
std::vector<Solution> ParetoFront(const std::vector<Solution>& solutions);

/// Indices into `solutions` forming the same deduplicated feasible
/// front as ParetoFront, sorted lexicographically by objectives; a
/// duplicate objective vector keeps its earliest occurrence. Lets the
/// solver copy only the surviving solutions instead of deep-copying
/// every candidate through the dedup pass.
std::vector<size_t> ParetoFrontIndices(
    const std::vector<Solution>& solutions);

/// Hypervolume of a 2-objective maximization front w.r.t. reference
/// point (ref_x, ref_y): the area jointly dominated by `points` and
/// dominating the reference. Points not strictly better than the
/// reference in both objectives contribute nothing. Returns 0 for an
/// empty front; points must all have exactly 2 objectives.
double Hypervolume2D(const std::vector<std::vector<double>>& points,
                     double ref_x, double ref_y);

/// In-place variant for allocation-free repeated evaluation (the
/// solver's per-generation convergence indicator): `points` is scratch
/// owned by the caller and is reordered by the call. Named rather than
/// overloaded: an empty braced list would otherwise prefer the pointer
/// overload (null) over the vector one.
double Hypervolume2DInPlace(std::vector<std::pair<double, double>>* points,
                            double ref_x, double ref_y);

/// Exact hypervolume of a 3-objective maximization front w.r.t.
/// (ref_x, ref_y, ref_z), by sweeping slabs of the third objective and
/// accumulating the 2D hypervolume of each slab's (f0, f1) projection.
/// O(n^2) after the sort. Points not strictly better than the
/// reference in all three objectives contribute nothing.
double Hypervolume3D(const std::vector<std::vector<double>>& points,
                     double ref_x, double ref_y, double ref_z);

/// In-place variant: `points` is reordered; `xy_scratch` holds the
/// growing slab projection between calls so steady-state evaluation
/// performs no heap allocations once both buffers are at capacity.
double Hypervolume3DInPlace(
    std::vector<std::array<double, 3>>* points, double ref_x, double ref_y,
    double ref_z, std::vector<std::pair<double, double>>* xy_scratch);

}  // namespace flower::opt

#endif  // FLOWER_OPT_PARETO_H_
