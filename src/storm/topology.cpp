#include "storm/topology.h"

namespace flower::storm {

Status StatelessBolt::Execute(const Tuple& input, SimTime /*now*/,
                              const std::function<void(Tuple)>& emit) {
  pending_emits_ += selectivity_;
  while (pending_emits_ >= 1.0) {
    emit(input);
    pending_emits_ -= 1.0;
  }
  return Status::OK();
}

Status Topology::AddSpout(std::string name, SpoutFn fn,
                          double cpu_cost_per_tuple) {
  if (!fn) return Status::InvalidArgument("AddSpout: null pull function");
  if (FindSpout(name) >= 0 || FindBolt(name) >= 0) {
    return Status::AlreadyExists("AddSpout: duplicate component name '" +
                                 name + "'");
  }
  if (cpu_cost_per_tuple < 0.0) {
    return Status::InvalidArgument("AddSpout: negative cpu cost");
  }
  spouts_.push_back({std::move(name), std::move(fn), cpu_cost_per_tuple});
  return Status::OK();
}

Status Topology::SetSpout(std::string name, SpoutFn fn,
                          double cpu_cost_per_tuple) {
  if (!spouts_.empty()) {
    return Status::AlreadyExists("Topology '" + name_ +
                                 "' already has a spout");
  }
  return AddSpout(std::move(name), std::move(fn), cpu_cost_per_tuple);
}

int Topology::FindBolt(const std::string& name) const {
  for (size_t i = 0; i < bolts_.size(); ++i) {
    if (bolts_[i].spec.name == name) return static_cast<int>(i);
  }
  return -1;
}

int Topology::FindSpout(const std::string& name) const {
  for (size_t i = 0; i < spouts_.size(); ++i) {
    if (spouts_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status Topology::AddBolt(BoltSpec spec,
                         const std::vector<std::string>& parents) {
  if (!spec.logic) {
    return Status::InvalidArgument("AddBolt: bolt '" + spec.name +
                                   "' has no logic");
  }
  if (spec.cpu_cost_per_tuple < 0.0) {
    return Status::InvalidArgument("AddBolt: negative cpu cost");
  }
  if (FindBolt(spec.name) >= 0 || FindSpout(spec.name) >= 0) {
    return Status::AlreadyExists("AddBolt: duplicate component name '" +
                                 spec.name + "'");
  }
  if (parents.empty()) {
    return Status::InvalidArgument("AddBolt: bolt '" + spec.name +
                                   "' needs at least one parent");
  }
  BoltNode node;
  node.spec = std::move(spec);
  for (const std::string& parent : parents) {
    if (parent.empty()) {
      if (spouts_.size() != 1) {
        return Status::InvalidArgument(
            "AddBolt: \"\" parent requires exactly one spout");
      }
      node.parents.push_back(-1);  // -1 - 0.
      continue;
    }
    int s = FindSpout(parent);
    if (s >= 0) {
      node.parents.push_back(-1 - s);
      continue;
    }
    int b = FindBolt(parent);
    if (b >= 0) {
      node.parents.push_back(b);
      continue;
    }
    return Status::NotFound("AddBolt: unknown parent '" + parent + "'");
  }
  // Maintain the forward adjacency the scheduler tick consumes
  // (spout -> subscribers, bolt -> children). Deduplicated: a parent
  // listed twice still delivers each tuple once, matching the
  // HasSpoutParent/HasBoltParent semantics the per-tick scan had.
  const size_t new_idx = bolts_.size();
  for (size_t i = 0; i < node.parents.size(); ++i) {
    int p = node.parents[i];
    bool seen = false;
    for (size_t j = 0; j < i; ++j) seen = seen || node.parents[j] == p;
    if (seen) continue;
    if (p < 0) {
      spouts_[static_cast<size_t>(-1 - p)].subscribers.push_back(new_idx);
    } else {
      bolts_[static_cast<size_t>(p)].children.push_back(new_idx);
    }
  }
  bolts_.push_back(std::move(node));
  return Status::OK();
}

Status Topology::AddBolt(BoltSpec spec, const std::string& parent) {
  return AddBolt(std::move(spec), std::vector<std::string>{parent});
}

size_t Topology::PendingTuples() const {
  size_t total = 0;
  for (const BoltNode& b : bolts_) total += b.queue.size();
  return total;
}

std::vector<std::pair<std::string, size_t>> Topology::QueueLengths() const {
  std::vector<std::pair<std::string, size_t>> out;
  out.reserve(bolts_.size());
  for (const BoltNode& b : bolts_) {
    out.emplace_back(b.spec.name, b.queue.size());
  }
  return out;
}

}  // namespace flower::storm
