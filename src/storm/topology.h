#ifndef FLOWER_STORM_TOPOLOGY_H_
#define FLOWER_STORM_TOPOLOGY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/time_series.h"
#include "common/vec_deque.h"

namespace flower::storm {

/// A unit of data flowing through a topology. `origin_time` is stamped
/// when the tuple enters the topology (spout emission) and is used to
/// measure complete latency; `entity_id` carries the application key
/// (e.g. the clicked URL id).
struct Tuple {
  SimTime origin_time = 0.0;
  int64_t entity_id = 0;
  int32_t size_bytes = 256;
  /// Application value: 1.0 for raw events, an aggregate (e.g. a window
  /// count) for tuples emitted by aggregating bolts.
  double value = 1.0;
  /// Which stream/spout the tuple originated from (the spout's index in
  /// declaration order) — lets join bolts distinguish their inputs.
  int32_t source = 0;
};

/// Application logic of one bolt. `Execute` is called once per input
/// tuple; output tuples are pushed through `emit`. Returning a
/// retryable status (e.g. Throttled from a storage sink) re-queues the
/// tuple and pauses this bolt until the next scheduler tick —
/// backpressure from the storage layer into the analytics layer.
class BoltLogic {
 public:
  virtual ~BoltLogic() = default;
  virtual Status Execute(const Tuple& input, SimTime now,
                         const std::function<void(Tuple)>& emit) = 0;
};

/// Stateless pass-through logic with fixed selectivity: every input
/// emits `selectivity` outputs on average (fractional selectivity
/// accumulates; e.g. 0.25 emits one tuple every four inputs).
class StatelessBolt final : public BoltLogic {
 public:
  explicit StatelessBolt(double selectivity = 1.0)
      : selectivity_(selectivity) {}
  Status Execute(const Tuple& input, SimTime now,
                 const std::function<void(Tuple)>& emit) override;

 private:
  double selectivity_;
  double pending_emits_ = 0.0;
};

/// Declaration of one bolt: name, per-tuple CPU cost (abstract work
/// units, matched against the cluster's compute capacity), and logic.
struct BoltSpec {
  std::string name;
  double cpu_cost_per_tuple = 1000.0;
  std::shared_ptr<BoltLogic> logic;
};

/// A spout's pull function: appends up to `max` tuples from the
/// upstream source to `*out` (the flow layer wires this to Kinesis
/// GetRecordsInto). The caller owns and clears the buffer, so a
/// steady-state pull reuses warm capacity instead of allocating a
/// fresh vector per tick.
using SpoutFn = std::function<void(size_t max, std::vector<Tuple>* out)>;

/// A DAG of spouts and bolts.
///
/// Build with `AddSpout` (one or more) then `AddBolt(spec, parents)`,
/// where each parent names a spout or a previously added bolt — so the
/// topology supports fan-out (one parent, many children), fan-in /
/// joins (one bolt, many parents), and multiple source streams. The
/// topology owns per-bolt input queues; execution is driven by the
/// Cluster's scheduler ticks.
class Topology {
 public:
  explicit Topology(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a source stream. Errors: duplicate name or null function.
  Status AddSpout(std::string name, SpoutFn fn,
                  double cpu_cost_per_tuple = 100.0);

  /// Single-spout convenience (legacy name). Errors if a spout already
  /// exists — use AddSpout for multi-stream topologies.
  Status SetSpout(std::string name, SpoutFn fn,
                  double cpu_cost_per_tuple = 100.0);

  /// Adds a bolt consuming from each component in `parents` (spout or
  /// previously added bolt names; "" means the sole spout). Errors:
  /// duplicate name, unknown/later parent, empty parents, or missing
  /// logic.
  Status AddBolt(BoltSpec spec, const std::vector<std::string>& parents);
  /// Single-parent convenience; "" = the sole spout.
  Status AddBolt(BoltSpec spec, const std::string& parent = "");

  bool HasSpout() const { return !spouts_.empty(); }
  size_t spout_count() const { return spouts_.size(); }
  size_t bolt_count() const { return bolts_.size(); }

  /// Total tuples buffered in all bolt input queues.
  size_t PendingTuples() const;

  /// Per-bolt pending queue length, by bolt declaration order.
  std::vector<std::pair<std::string, size_t>> QueueLengths() const;

 private:
  friend class Cluster;

  struct SpoutNode {
    std::string name;
    SpoutFn fn;
    double cost = 100.0;
    /// Bolt indices consuming this spout's output, in declaration
    /// order. Maintained by AddBolt so the scheduler tick never scans.
    std::vector<size_t> subscribers;
  };
  struct BoltNode {
    BoltSpec spec;
    /// Parent references: spout index (< 0: encoded as -1 - idx) or
    /// bolt index (>= 0).
    std::vector<int> parents;
    /// Bolt indices consuming this bolt's output (always greater than
    /// this bolt's own index — the DAG is built in topological order).
    /// Maintained by AddBolt, deduplicated.
    std::vector<size_t> children;
    VecDeque<Tuple> queue;
    uint64_t executed = 0;

    bool HasSpoutParent(int spout_idx) const {
      for (int p : parents) {
        if (p == -1 - spout_idx) return true;
      }
      return false;
    }
    bool HasBoltParent(int bolt_idx) const {
      for (int p : parents) {
        if (p == bolt_idx) return true;
      }
      return false;
    }
  };

  int FindBolt(const std::string& name) const;
  int FindSpout(const std::string& name) const;

  std::string name_;
  std::vector<SpoutNode> spouts_;
  std::vector<BoltNode> bolts_;  // In topological (declaration) order.
};

}  // namespace flower::storm

#endif  // FLOWER_STORM_TOPOLOGY_H_
