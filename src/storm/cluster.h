#ifndef FLOWER_STORM_CLUSTER_H_
#define FLOWER_STORM_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "cloudwatch/metric_store.h"
#include "common/random.h"
#include "common/reservoir.h"
#include "ec2/fleet.h"
#include "sim/simulation.h"
#include "storm/topology.h"

namespace flower::storm {

/// Configuration of a simulated Storm cluster.
struct ClusterConfig {
  std::string name = "storm";
  /// Scheduler tick: work is executed in discrete slices of this
  /// length (seconds). 1 s gives per-second CPU accounting.
  double tick_period_sec = 1.0;
  /// Max tuples pulled from the spout per tick (per-tick poll limit).
  size_t spout_batch_limit = 20000;
  /// Backpressure: the spout stops pulling while the topology has more
  /// than this many pending tuples (Storm's max.spout.pending).
  size_t max_pending_tuples = 50000;
  /// Fraction of worker capacity usable by topology work (the rest
  /// models OS/worker overhead).
  double usable_capacity_fraction = 0.9;
  /// Period of metric publication.
  double metrics_period_sec = 60.0;
  /// Multiplicative noise on tuple execution cost (stationary std dev
  /// as a fraction of the nominal cost), modelling JIT/GC/cache and
  /// noisy-neighbour variance on real workers. The noise follows an
  /// AR(1) process (see cost_jitter_phi) so it does not average away
  /// within one metric period. 0 disables.
  double cost_jitter = 0.08;
  /// Autocorrelation of the cost noise across ticks (0 = white).
  double cost_jitter_phi = 0.95;
  uint64_t jitter_seed = 1;
};

/// Simulated Storm cluster (the analytics layer).
///
/// Executes one Topology on the pooled compute capacity of an EC2
/// `Fleet`. Every scheduler tick the cluster (a) pulls tuples from the
/// spout unless backpressure is active, then (b) drains bolt queues in
/// topology order, charging each bolt's per-tuple CPU cost against the
/// tick's work budget (capacity × tick). When offered work exceeds the
/// budget, CPU utilization saturates at 100% and queues grow — exactly
/// the overload signal Flower's analytics-layer controller watches.
///
/// Scaling the cluster = resizing the fleet (`SetWorkerCount`), which
/// takes effect after the fleet's boot delay.
///
/// Published metrics (namespace "Flower/Storm", dimension = cluster
/// name): CpuUtilization (%), WorkerCount, PendingTuples,
/// ExecutedTuples, CompleteLatency (s, mean per period),
/// CompleteLatencyP50 / CompleteLatencyP99 (reservoir-sampled tail
/// percentiles), SinkThrottles.
/// Per-bolt metrics (dimension "<cluster>.<bolt>"): BoltExecuted,
/// BoltQueueLength, and BoltCapacity (fraction of the cluster's work
/// budget the bolt consumed — Storm's "capacity" gauge, which flags
/// the bottleneck component).
class Cluster {
 public:
  /// `metrics` may be nullptr (no publication). The cluster schedules
  /// its own ticks on `sim` starting at the current simulated time.
  Cluster(sim::Simulation* sim, cloudwatch::MetricStore* metrics,
          ec2::Fleet* fleet, ClusterConfig config);

  /// Submits the topology (exactly one; must have a spout).
  Status Submit(std::shared_ptr<Topology> topology);

  /// Rebalances the cluster to `n` workers (>= 1).
  Status SetWorkerCount(int n);

  int worker_count() const { return fleet_->running_count(); }
  int requested_worker_count() const { return fleet_->requested_count(); }

  /// CPU utilization (%) measured over the last completed tick.
  double LastTickCpuUtilizationPct() const { return last_tick_cpu_pct_; }

  uint64_t total_executed() const { return total_executed_; }
  uint64_t total_acked() const { return total_acked_; }
  uint64_t total_sink_throttles() const { return total_sink_throttles_; }
  const ClusterConfig& config() const { return config_; }
  const std::shared_ptr<Topology>& topology() const { return topology_; }

 private:
  void Tick();
  void PublishMetrics();

  sim::Simulation* sim_;
  cloudwatch::MetricStore* metrics_;
  ec2::Fleet* fleet_;
  ClusterConfig config_;
  std::shared_ptr<Topology> topology_;
  Rng jitter_rng_;
  double jitter_state_ = 0.0;  ///< AR(1) noise state.

  /// Scratch buffer for spout pulls, reused across ticks so the
  /// steady-state tick never allocates (see bench/perf_micro's
  /// zero-allocation guard).
  std::vector<Tuple> pull_buf_;

  double last_tick_cpu_pct_ = 0.0;
  uint64_t total_executed_ = 0;
  uint64_t total_acked_ = 0;
  uint64_t total_sink_throttles_ = 0;

  // Period accumulators for metric publication.
  double period_cpu_sum_ = 0.0;
  size_t period_ticks_ = 0;
  uint64_t period_executed_ = 0;
  uint64_t period_sink_throttles_ = 0;
  double period_latency_sum_ = 0.0;
  uint64_t period_acked_ = 0;
  double period_budget_ = 0.0;
  std::vector<uint64_t> period_bolt_executed_;
  std::vector<double> period_bolt_work_;
  /// Reservoir of per-tuple complete latencies in the current period
  /// (for p50/p99 publication without storing every ack).
  ReservoirSampler period_latency_sample_{1024, 97};
};

}  // namespace flower::storm

#endif  // FLOWER_STORM_CLUSTER_H_
