#include "storm/cluster.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace flower::storm {

namespace {
constexpr const char* kNamespace = "Flower/Storm";
}

Cluster::Cluster(sim::Simulation* sim, cloudwatch::MetricStore* metrics,
                 ec2::Fleet* fleet, ClusterConfig config)
    : sim_(sim), metrics_(metrics), fleet_(fleet),
      config_(std::move(config)), jitter_rng_(config_.jitter_seed) {
  Status st = sim_->SchedulePeriodic(
      sim_->Now() + config_.tick_period_sec, config_.tick_period_sec, [this] {
        Tick();
        return true;
      });
  FLOWER_CHECK(st.ok()) << st.ToString();
  if (metrics_ != nullptr) {
    st = sim_->SchedulePeriodic(
        sim_->Now() + config_.metrics_period_sec, config_.metrics_period_sec,
        [this] {
          PublishMetrics();
          return true;
        });
    FLOWER_CHECK(st.ok()) << st.ToString();
  }
}

Status Cluster::Submit(std::shared_ptr<Topology> topology) {
  if (topology_ != nullptr) {
    return Status::AlreadyExists("Cluster '" + config_.name +
                                 "' already runs a topology");
  }
  if (topology == nullptr || !topology->HasSpout()) {
    return Status::InvalidArgument("Submit: topology missing a spout");
  }
  topology_ = std::move(topology);
  return Status::OK();
}

Status Cluster::SetWorkerCount(int n) {
  if (n < 1) {
    return Status::InvalidArgument("SetWorkerCount: need at least 1 worker");
  }
  return fleet_->SetDesiredCount(n);
}

void Cluster::Tick() {
  if (topology_ == nullptr) return;
  SimTime now = sim_->Now();
  double budget = fleet_->TotalComputeCapacity() *
                  config_.usable_capacity_fraction * config_.tick_period_sec;
  const double initial_budget = budget;
  if (initial_budget <= 0.0) {
    last_tick_cpu_pct_ = 100.0;  // No capacity: fully saturated.
    period_cpu_sum_ += last_tick_cpu_pct_;
    ++period_ticks_;
    return;
  }
  Topology& topo = *topology_;
  period_budget_ += initial_budget;
  if (period_bolt_executed_.size() != topo.bolts_.size()) {
    period_bolt_executed_.assign(topo.bolts_.size(), 0);
    period_bolt_work_.assign(topo.bolts_.size(), 0.0);
  }

  // Execution-cost noise (JIT/GC/cache and noisy neighbours): AR(1)
  // with stationary std dev cost_jitter, bounded so costs stay
  // positive. Correlated across ticks so that per-minute averages keep
  // realistic variance.
  double cost_factor = 1.0;
  if (config_.cost_jitter > 0.0) {
    double phi = std::clamp(config_.cost_jitter_phi, 0.0, 0.999);
    double innovation_sd =
        config_.cost_jitter * std::sqrt(1.0 - phi * phi);
    jitter_state_ =
        phi * jitter_state_ + jitter_rng_.Normal(0.0, innovation_sd);
    cost_factor = std::max(0.4, 1.0 + jitter_state_);
  }

  // (a) Spout pulls, unless backpressure holds them back. The per-tick
  // batch limit is shared evenly across spouts.
  if (topo.PendingTuples() < config_.max_pending_tuples &&
      !topo.spouts_.empty()) {
    size_t room = config_.max_pending_tuples - topo.PendingTuples();
    size_t share = std::max<size_t>(
        1, std::min(config_.spout_batch_limit, room) / topo.spouts_.size());
    for (size_t si = 0; si < topo.spouts_.size(); ++si) {
      auto& spout = topo.spouts_[si];
      size_t max_pull = share;
      // The spout also costs CPU; bound the pull by remaining budget.
      double spout_cost = spout.cost * cost_factor;
      if (spout_cost > 0.0) {
        max_pull =
            std::min(max_pull, static_cast<size_t>(budget / spout_cost));
      }
      if (max_pull == 0) continue;
      pull_buf_.clear();
      spout.fn(max_pull, &pull_buf_);
      budget -= static_cast<double>(pull_buf_.size()) * spout_cost;
      // Stamp the source once in the pull buffer, then hand the whole
      // span to each subscribing bolt — one bulk copy per subscriber
      // instead of a per-tuple copy per bolt scan.
      for (Tuple& t : pull_buf_) t.source = static_cast<int32_t>(si);
      for (size_t cj : spout.subscribers) {
        topo.bolts_[cj].queue.AppendRange(pull_buf_.data(),
                                          pull_buf_.size());
      }
    }
  }

  // (b) Drain bolt queues in topology order within the budget.
  for (size_t bi = 0; bi < topo.bolts_.size(); ++bi) {
    auto& bolt = topo.bolts_[bi];
    const double cost = bolt.spec.cpu_cost_per_tuple * cost_factor;
    const bool is_leaf = bolt.children.empty();
    // {topology, node} fits std::function's inline storage: building
    // the emit thunk costs no allocation.
    std::function<void(Tuple)> emit =
        [t = &topo, node = &bolt](Tuple tup) {
          for (size_t cj : node->children) {
            t->bolts_[cj].queue.push_back(tup);
          }
        };
    // Per-tuple bookkeeping lands in locals and is flushed once after
    // the drain. `budget` stays per-tuple: its running value gates the
    // loop, and switching to one fused subtraction would change the
    // floating-point rounding — and with it how many tuples fit a tick.
    uint64_t executed_n = 0;
    uint64_t acked_n = 0;
    double latency_sum = 0.0;
    while (!bolt.queue.empty() && budget >= cost) {
      const Tuple& t = bolt.queue.front();
      Status st = bolt.spec.logic->Execute(t, now, emit);
      if (st.IsRetryable()) {
        // Storage backpressure: keep the tuple queued, stop this bolt
        // for the rest of the tick.
        ++total_sink_throttles_;
        ++period_sink_throttles_;
        break;
      }
      if (is_leaf) {
        ++acked_n;
        double latency = now - t.origin_time;
        latency_sum += latency;
        period_latency_sample_.Add(latency);
      }
      bolt.queue.pop_front();
      budget -= cost;
      ++executed_n;
    }
    bolt.executed += executed_n;
    total_executed_ += executed_n;
    period_executed_ += executed_n;
    period_bolt_executed_[bi] += executed_n;
    period_bolt_work_[bi] += static_cast<double>(executed_n) * cost;
    total_acked_ += acked_n;
    period_acked_ += acked_n;
    period_latency_sum_ += latency_sum;
  }

  last_tick_cpu_pct_ =
      100.0 * (initial_budget - budget) / initial_budget;
  period_cpu_sum_ += last_tick_cpu_pct_;
  ++period_ticks_;
}

void Cluster::PublishMetrics() {
  SimTime now = sim_->Now();
  auto put = [&](const char* name, double v) {
    Status st =
        metrics_->Put({kNamespace, name, config_.name}, now, v);
    FLOWER_CHECK(st.ok()) << st.ToString();
  };
  double cpu = period_ticks_ > 0
                   ? period_cpu_sum_ / static_cast<double>(period_ticks_)
                   : 0.0;
  put("CpuUtilization", cpu);
  put("WorkerCount", static_cast<double>(worker_count()));
  put("PendingTuples",
      topology_ ? static_cast<double>(topology_->PendingTuples()) : 0.0);
  put("ExecutedTuples", static_cast<double>(period_executed_));
  put("CompleteLatency",
      period_acked_ > 0
          ? period_latency_sum_ / static_cast<double>(period_acked_)
          : 0.0);
  put("CompleteLatencyP50",
      period_latency_sample_.Percentile(50.0).ValueOr(0.0));
  put("CompleteLatencyP99",
      period_latency_sample_.Percentile(99.0).ValueOr(0.0));
  put("SinkThrottles", static_cast<double>(period_sink_throttles_));
  // Per-bolt stats: executed count, queue length, and the fraction of
  // the cluster's work budget each bolt consumed (bottleneck gauge).
  if (topology_ != nullptr) {
    const auto lengths = topology_->QueueLengths();
    for (size_t bi = 0; bi < lengths.size(); ++bi) {
      std::string dim = config_.name + "." + lengths[bi].first;
      auto put_bolt = [&](const char* name, double v) {
        Status st = metrics_->Put({kNamespace, name, dim}, now, v);
        FLOWER_CHECK(st.ok()) << st.ToString();
      };
      put_bolt("BoltExecuted",
               bi < period_bolt_executed_.size()
                   ? static_cast<double>(period_bolt_executed_[bi])
                   : 0.0);
      put_bolt("BoltQueueLength", static_cast<double>(lengths[bi].second));
      put_bolt("BoltCapacity",
               period_budget_ > 0.0 && bi < period_bolt_work_.size()
                   ? period_bolt_work_[bi] / period_budget_
                   : 0.0);
    }
  }
  period_cpu_sum_ = 0.0;
  period_ticks_ = 0;
  period_executed_ = 0;
  period_sink_throttles_ = 0;
  period_latency_sum_ = 0.0;
  period_acked_ = 0;
  period_latency_sample_.Reset();
  period_budget_ = 0.0;
  period_bolt_executed_.assign(period_bolt_executed_.size(), 0);
  period_bolt_work_.assign(period_bolt_work_.size(), 0.0);
}

}  // namespace flower::storm
