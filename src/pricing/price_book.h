#ifndef FLOWER_PRICING_PRICE_BOOK_H_
#define FLOWER_PRICING_PRICE_BOOK_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace flower::pricing {

/// Resource kinds whose unit-hours are billed across the three layers.
/// These are the cost dimensions `c_d` of the paper's Eq. 4.
enum class ResourceKind {
  kKinesisShard,     ///< Ingestion layer: one shard.
  kEc2Instance,      ///< Analytics layer: one worker VM.
  kDynamoWcu,        ///< Storage layer: one write capacity unit.
  kDynamoRcu,        ///< Storage layer: one read capacity unit.
};

std::string ResourceKindToString(ResourceKind k);

/// Hourly unit prices for every billable resource. Defaults follow
/// 2017-era AWS us-east-1 published prices (rounded): what matters for
/// resource-share analysis is the *relative* price structure.
class PriceBook {
 public:
  PriceBook();

  /// Overrides one unit price (USD per unit-hour).
  void SetHourlyPrice(ResourceKind kind, double usd_per_unit_hour);

  /// USD per unit-hour. All kinds always have a price (defaults).
  double HourlyPrice(ResourceKind kind) const;

  /// Cost of holding `units` of `kind` for `seconds`.
  double Cost(ResourceKind kind, double units, double seconds) const;

 private:
  std::map<ResourceKind, double> hourly_;
};

/// Integrates the cost of one resource's provisioned quantity over
/// simulated time (a step function: the quantity holds until changed).
class CostAccumulator {
 public:
  CostAccumulator(const PriceBook* book, ResourceKind kind)
      : book_(book), kind_(kind) {}

  /// Declares that the provisioned quantity becomes `units` at `time`.
  /// Times must be non-decreasing.
  Status SetQuantity(double time, double units);

  /// Accumulated USD cost up to `time` (extends the last quantity).
  double CostUpTo(double time) const;

  double current_quantity() const { return quantity_; }

 private:
  const PriceBook* book_;
  ResourceKind kind_;
  double last_time_ = 0.0;
  double quantity_ = 0.0;
  double accrued_usd_ = 0.0;
  bool started_ = false;
};

}  // namespace flower::pricing

#endif  // FLOWER_PRICING_PRICE_BOOK_H_
