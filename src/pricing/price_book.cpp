#include "pricing/price_book.h"

#include "common/units.h"

namespace flower::pricing {

std::string ResourceKindToString(ResourceKind k) {
  switch (k) {
    case ResourceKind::kKinesisShard: return "kinesis-shard";
    case ResourceKind::kEc2Instance: return "ec2-instance";
    case ResourceKind::kDynamoWcu: return "dynamodb-wcu";
    case ResourceKind::kDynamoRcu: return "dynamodb-rcu";
  }
  return "unknown";
}

PriceBook::PriceBook() {
  // 2017-era us-east-1 list prices (rounded).
  hourly_[ResourceKind::kKinesisShard] = 0.015;
  hourly_[ResourceKind::kEc2Instance] = 0.10;   // m4.large
  hourly_[ResourceKind::kDynamoWcu] = 0.00065;
  hourly_[ResourceKind::kDynamoRcu] = 0.00013;
}

void PriceBook::SetHourlyPrice(ResourceKind kind, double usd) {
  hourly_[kind] = usd;
}

double PriceBook::HourlyPrice(ResourceKind kind) const {
  auto it = hourly_.find(kind);
  return it == hourly_.end() ? 0.0 : it->second;
}

double PriceBook::Cost(ResourceKind kind, double units,
                       double seconds) const {
  return HourlyPrice(kind) * units * (seconds / kHour);
}

Status CostAccumulator::SetQuantity(double time, double units) {
  if (units < 0.0) {
    return Status::InvalidArgument("CostAccumulator: negative quantity");
  }
  if (started_ && time < last_time_) {
    return Status::InvalidArgument("CostAccumulator: time moved backwards");
  }
  if (started_) {
    accrued_usd_ += book_->Cost(kind_, quantity_, time - last_time_);
  }
  last_time_ = time;
  quantity_ = units;
  started_ = true;
  return Status::OK();
}

double CostAccumulator::CostUpTo(double time) const {
  double total = accrued_usd_;
  if (started_ && time > last_time_) {
    total += book_->Cost(kind_, quantity_, time - last_time_);
  }
  return total;
}

}  // namespace flower::pricing
