#include "kinesis/stream.h"

#include <algorithm>

#include "common/logging.h"

namespace flower::kinesis {

namespace {
constexpr const char* kNamespace = "Flower/Kinesis";
}

Stream::Stream(sim::Simulation* sim, cloudwatch::MetricStore* metrics,
               StreamConfig config)
    : sim_(sim), metrics_(metrics), config_(std::move(config)) {
  int n = std::clamp(config_.initial_shards, config_.min_shards,
                     config_.max_shards);
  shards_.resize(static_cast<size_t>(n));
  for (Shard& s : shards_) s.last_refill = sim_->Now();
  target_shards_ = n;
  period_start_ = sim_->Now();
  if (metrics_ != nullptr) {
    Status st = sim_->SchedulePeriodic(
        sim_->Now() + config_.metrics_period_sec, config_.metrics_period_sec,
        [this] {
          PublishMetrics();
          return true;
        });
    FLOWER_CHECK(st.ok()) << st.ToString();
  }
}

void Stream::RefillTokens(Shard* shard, SimTime now) {
  double dt = now - shard->last_refill;
  if (dt <= 0.0) return;
  shard->record_tokens =
      std::min(kKinesisShardWriteRecordsPerSec,
               shard->record_tokens + dt * kKinesisShardWriteRecordsPerSec);
  shard->byte_tokens = std::min(
      static_cast<double>(kKinesisShardWriteBytesPerSec),
      shard->byte_tokens + dt * static_cast<double>(kKinesisShardWriteBytesPerSec));
  shard->read_byte_tokens = std::min(
      static_cast<double>(kKinesisShardReadBytesPerSec),
      shard->read_byte_tokens +
          dt * static_cast<double>(kKinesisShardReadBytesPerSec));
  shard->read_call_tokens =
      std::min(kKinesisShardReadCallsPerSec,
               shard->read_call_tokens + dt * kKinesisShardReadCallsPerSec);
  shard->last_refill = now;
}

Status Stream::PutRecord(const Record& record) {
  SimTime now = sim_->Now();
  size_t idx = record.partition_key % shards_.size();
  Shard& shard = shards_[idx];
  RefillTokens(&shard, now);
  if (shard.record_tokens < 1.0 ||
      shard.byte_tokens < static_cast<double>(record.size_bytes)) {
    ++total_throttled_;
    ++period_throttled_;
    return Status::Throttled("Kinesis '" + config_.name +
                             "': ProvisionedThroughputExceeded on shard " +
                             std::to_string(idx));
  }
  shard.record_tokens -= 1.0;
  shard.byte_tokens -= static_cast<double>(record.size_bytes);
  Record stamped = record;
  stamped.timestamp = now;
  shard.buffer.push_back(stamped);
  ++total_incoming_;
  ++period_incoming_;
  return Status::OK();
}

Result<std::vector<Record>> Stream::GetRecords(int shard_index,
                                               size_t max_records) {
  std::vector<Record> out;
  Status st = GetRecordsInto(shard_index, max_records, &out);
  if (!st.ok()) return st;
  return out;
}

Status Stream::GetRecordsInto(int shard_index, size_t max_records,
                              std::vector<Record>* out) {
  if (shard_index < 0 || shard_index >= shard_count()) {
    return Status::OutOfRange("Kinesis '" + config_.name +
                              "': shard index out of range");
  }
  Shard& shard = shards_[static_cast<size_t>(shard_index)];
  RefillTokens(&shard, sim_->Now());
  if (shard.read_call_tokens < 1.0) {
    ++total_read_throttles_;
    return Status::Throttled("Kinesis '" + config_.name +
                             "': GetRecords call rate exceeded on shard " +
                             std::to_string(shard_index));
  }
  shard.read_call_tokens -= 1.0;
  size_t n = std::min(max_records, shard.buffer.size());
  for (size_t i = 0; i < n; ++i) {
    const Record& front = shard.buffer.front();
    // The first record of a call always fits (matching the service,
    // which never returns an empty batch just because of byte limits).
    if (i > 0 &&
        shard.read_byte_tokens < static_cast<double>(front.size_bytes)) {
      break;
    }
    shard.read_byte_tokens -= static_cast<double>(front.size_bytes);
    out->push_back(front);
    shard.buffer.pop_front();
  }
  return Status::OK();
}

Stream::Shard Stream::MakeChildShard(SimTime now) {
  Shard s;
  s.record_tokens = 0.0;
  s.byte_tokens = 0.0;
  s.read_byte_tokens = 0.0;
  s.read_call_tokens = 0.0;
  s.last_refill = now;
  return s;
}

Status Stream::UpdateShardCount(int target) {
  if (target < config_.min_shards || target > config_.max_shards) {
    return Status::InvalidArgument(
        "Kinesis '" + config_.name + "': target shard count " +
        std::to_string(target) + " outside [" +
        std::to_string(config_.min_shards) + ", " +
        std::to_string(config_.max_shards) + "]");
  }
  target_shards_ = target;
  if (target == shard_count() && !reshard_in_flight_) return Status::OK();
  reshard_in_flight_ = true;
  uint64_t epoch = ++reshard_epoch_;
  return sim_->ScheduleAfter(config_.reshard_delay_sec, [this, epoch] {
    if (epoch != reshard_epoch_) return;  // Superseded by a newer request.
    ApplyReshard(target_shards_);
    reshard_in_flight_ = false;
  });
}

Status Stream::SplitShard(int shard_index) {
  if (shard_index < 0 || shard_index >= shard_count()) {
    return Status::OutOfRange("SplitShard: shard index out of range");
  }
  if (shard_count() >= config_.max_shards) {
    return Status::FailedPrecondition("SplitShard: stream at max_shards");
  }
  if (reshard_in_flight_) {
    return Status::FailedPrecondition(
        "SplitShard: a resharding operation is already in flight");
  }
  reshard_in_flight_ = true;
  target_shards_ = shard_count() + 1;
  uint64_t epoch = ++reshard_epoch_;
  return sim_->ScheduleAfter(config_.reshard_delay_sec,
                             [this, epoch, shard_index] {
    if (epoch != reshard_epoch_) return;
    // The new shard opens empty; the parent keeps its buffer (real
    // Kinesis children read the parent's remainder first — buffered
    // order is preserved either way in this model). The parent's banked
    // tokens are split evenly with the child: total instantaneous
    // capacity is conserved across the split, so the split neither
    // mints a free burst nor throttles traffic already in flight.
    SimTime now = sim_->Now();
    Shard child = MakeChildShard(now);
    {
      Shard& parent = shards_[static_cast<size_t>(shard_index)];
      RefillTokens(&parent, now);
      parent.record_tokens *= 0.5;
      parent.byte_tokens *= 0.5;
      parent.read_byte_tokens *= 0.5;
      parent.read_call_tokens *= 0.5;
      child.record_tokens = parent.record_tokens;
      child.byte_tokens = parent.byte_tokens;
      child.read_byte_tokens = parent.read_byte_tokens;
      child.read_call_tokens = parent.read_call_tokens;
    }  // `parent` dies here: the insert below relocates shards_.
    shards_.insert(shards_.begin() + shard_index + 1, child);
    reshard_in_flight_ = false;
  });
}

Status Stream::MergeShards(int shard_index) {
  if (shard_index < 0 || shard_index + 1 >= shard_count()) {
    return Status::OutOfRange(
        "MergeShards: need two adjacent shards at the given index");
  }
  if (shard_count() <= config_.min_shards) {
    return Status::FailedPrecondition("MergeShards: stream at min_shards");
  }
  if (reshard_in_flight_) {
    return Status::FailedPrecondition(
        "MergeShards: a resharding operation is already in flight");
  }
  reshard_in_flight_ = true;
  target_shards_ = shard_count() - 1;
  uint64_t epoch = ++reshard_epoch_;
  return sim_->ScheduleAfter(config_.reshard_delay_sec,
                             [this, epoch, shard_index] {
    if (epoch != reshard_epoch_) return;
    // Drain the victim fully before the erase; the erase itself uses an
    // index computed fresh here, so no reference or iterator obtained
    // before it survives past it (shards_ relocates on erase).
    auto& keep = shards_[static_cast<size_t>(shard_index)].buffer;
    auto& gone = shards_[static_cast<size_t>(shard_index) + 1].buffer;
    while (!gone.empty()) {
      keep.push_back(gone.front());
      gone.pop_front();
    }
    shards_.erase(shards_.begin() + shard_index + 1);
    reshard_in_flight_ = false;
  });
}

double Stream::OldestRecordAgeSec() const {
  SimTime now = sim_->Now();
  double oldest = now;
  bool any = false;
  for (const Shard& s : shards_) {
    if (!s.buffer.empty()) {
      oldest = std::min(oldest, s.buffer.front().timestamp);
      any = true;
    }
  }
  return any ? now - oldest : 0.0;
}

void Stream::ApplyReshard(int target) {
  int current = shard_count();
  if (target == current) return;
  SimTime now = sim_->Now();
  if (target > current) {
    // Scale-out conserves the tokens banked by the live shards: refill
    // everyone to `now`, then divide the totals evenly across the
    // post-reshard fleet. resize() would default-construct the new
    // shards with full buckets — a free burst of (target - current) ×
    // 1000 records (plus bytes and read quota) the instant the reshard
    // lands, above any per-shard limit. Zero-token children would err
    // the other way, throttling legitimate traffic that arrives in the
    // same instant. Each share is total/target ≤ capacity, so no
    // clamping is needed, and the added capacity shows up where it
    // should: in the refill *rate*, now target × per-shard.
    double rec = 0.0, wbytes = 0.0, rbytes = 0.0, rcalls = 0.0;
    for (Shard& s : shards_) {
      RefillTokens(&s, now);
      rec += s.record_tokens;
      wbytes += s.byte_tokens;
      rbytes += s.read_byte_tokens;
      rcalls += s.read_call_tokens;
    }
    shards_.reserve(static_cast<size_t>(target));
    for (int i = current; i < target; ++i) {
      shards_.push_back(MakeChildShard(now));
    }
    double inv = 1.0 / static_cast<double>(target);
    for (Shard& s : shards_) {
      s.record_tokens = rec * inv;
      s.byte_tokens = wbytes * inv;
      s.read_byte_tokens = rbytes * inv;
      s.read_call_tokens = rcalls * inv;
      s.last_refill = now;
    }
    return;
  }
  // Shrink: merge buffered records of removed shards into survivors
  // (round-robin) so no data is lost.
  size_t rr = 0;
  for (int i = target; i < current; ++i) {
    auto& victim = shards_[static_cast<size_t>(i)].buffer;
    while (!victim.empty()) {
      shards_[rr % static_cast<size_t>(target)].buffer.push_back(
          victim.front());
      victim.pop_front();
      ++rr;
    }
  }
  shards_.resize(static_cast<size_t>(target));
}

size_t Stream::BacklogRecords() const {
  size_t total = 0;
  for (const Shard& s : shards_) total += s.buffer.size();
  return total;
}

double Stream::CurrentWriteUtilizationPct() const {
  SimTime now = sim_->Now();
  double elapsed = now - period_start_;
  if (elapsed <= 0.0) return 0.0;
  double rate = static_cast<double>(period_incoming_) / elapsed;
  double capacity = static_cast<double>(shard_count()) *
                    kKinesisShardWriteRecordsPerSec;
  return capacity > 0.0 ? 100.0 * rate / capacity : 0.0;
}

void Stream::PublishMetrics() {
  SimTime now = sim_->Now();
  cloudwatch::MetricStore& m = *metrics_;
  auto put = [&](const char* name, double v) {
    Status st = m.Put({kNamespace, name, config_.name}, now, v);
    FLOWER_CHECK(st.ok()) << st.ToString();
  };
  put("IncomingRecords", static_cast<double>(period_incoming_));
  put("ThrottledRecords", static_cast<double>(period_throttled_));
  put("WriteUtilization", CurrentWriteUtilizationPct());
  put("ShardCount", static_cast<double>(shard_count()));
  put("BacklogRecords", static_cast<double>(BacklogRecords()));
  put("IteratorAge", OldestRecordAgeSec());
  period_incoming_ = 0;
  period_throttled_ = 0;
  period_start_ = now;
}

}  // namespace flower::kinesis
