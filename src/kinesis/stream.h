#ifndef FLOWER_KINESIS_STREAM_H_
#define FLOWER_KINESIS_STREAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cloudwatch/metric_store.h"
#include "common/result.h"
#include "common/units.h"
#include "common/vec_deque.h"
#include "sim/simulation.h"

namespace flower::kinesis {

/// One ingested record. The payload is abstracted to the fields the
/// downstream click-stream topology needs: a partition key (routes the
/// record to a shard), an entity id (e.g. the clicked URL), and a size.
struct Record {
  SimTime timestamp = 0.0;
  uint64_t partition_key = 0;
  int64_t entity_id = 0;
  int32_t size_bytes = 256;
};

/// Configuration of a simulated stream.
struct StreamConfig {
  std::string name = "clickstream";
  int initial_shards = 1;
  int min_shards = 1;
  int max_shards = 500;
  /// UpdateShardCount completes after this many simulated seconds
  /// (resharding is not instantaneous on the real service).
  double reshard_delay_sec = 60.0;
  /// Period of metric publication to the metric store.
  double metrics_period_sec = 60.0;
};

/// Simulated Amazon Kinesis stream (the ingestion layer).
///
/// Behaviourally faithful to the published service contract the paper
/// relies on: each shard accepts at most 1,000 records/s and 1 MiB/s of
/// writes (token buckets, continuously refilled); excess writes fail
/// with `Status::Throttled` (ProvisionedThroughputExceeded). Records
/// are routed to shards by partition key and buffered until a consumer
/// fetches them with `GetRecords`. `UpdateShardCount` (the elasticity
/// actuator) takes effect after a resharding delay.
///
/// Published metrics (namespace "Flower/Kinesis", dimension = stream
/// name, one datapoint per metrics period):
///   IncomingRecords        — accepted records in the period
///   ThrottledRecords       — rejected records in the period
///   WriteUtilization       — accepted rate / (shards × 1,000 rec/s), %
///   ShardCount             — provisioned shards
///   BacklogRecords         — records buffered and not yet consumed
///   IteratorAge            — age (s) of the oldest unconsumed record
class Stream {
 public:
  /// Starts the periodic metrics publication on `sim`.
  /// `metrics` may be nullptr (no publication, for unit tests).
  Stream(sim::Simulation* sim, cloudwatch::MetricStore* metrics,
         StreamConfig config);

  /// Ingests one record at the current simulated time. Returns
  /// Throttled when the target shard's write quota is exhausted.
  Status PutRecord(const Record& record);

  /// Fetches up to `max_records` buffered records from shard
  /// `shard_index` (FIFO), subject to the published read limits:
  /// 5 GetRecords calls/s and 2 MiB/s per shard (both token buckets).
  /// Errors: index out of range; Throttled when either read quota is
  /// exhausted.
  Result<std::vector<Record>> GetRecords(int shard_index,
                                         size_t max_records);

  /// Same contract as GetRecords, appending into `*out` instead of
  /// returning a fresh vector — the per-tick consumer path (the flow
  /// spout) reuses one warm buffer instead of allocating per call.
  /// `*out` is untouched on error.
  Status GetRecordsInto(int shard_index, size_t max_records,
                        std::vector<Record>* out);

  uint64_t total_read_throttles() const { return total_read_throttles_; }

  /// Requests a new shard count; applied after the resharding delay.
  /// While a reshard is in flight, further requests supersede it.
  /// Errors: target outside [min_shards, max_shards].
  Status UpdateShardCount(int target);

  /// Splits one shard into two (targeted scale-up, the low-level API
  /// UpdateShardCount is built on). Applied after the resharding
  /// delay. Errors: index out of range, at max_shards, or a reshard is
  /// already in flight.
  Status SplitShard(int shard_index);

  /// Merges two adjacent shards (targeted scale-down); the surviving
  /// shard inherits both buffers. Same preconditions as SplitShard.
  Status MergeShards(int shard_index);

  /// Age (seconds) of the oldest buffered record across all shards —
  /// the consumer-lag signal (GetRecords.IteratorAge). 0 when empty.
  double OldestRecordAgeSec() const;

  int shard_count() const { return static_cast<int>(shards_.size()); }
  int target_shard_count() const { return target_shards_; }
  bool resharding() const { return reshard_in_flight_; }

  /// Total records buffered across all shards.
  size_t BacklogRecords() const;

  uint64_t total_incoming() const { return total_incoming_; }
  uint64_t total_throttled() const { return total_throttled_; }
  const StreamConfig& config() const { return config_; }

  /// Write utilization over the lifetime of the current metrics period,
  /// in percent of aggregate shard write capacity.
  double CurrentWriteUtilizationPct() const;

 private:
  struct Shard {
    VecDeque<Record> buffer;
    // Continuous-refill token buckets (write and read paths). Shards
    // created at stream construction start full (a fresh stream has a
    // full second of quota); shards created by a mid-run reshard
    // inherit an even share of the tokens already banked by the live
    // shards (see ApplyReshard / SplitShard) so scale-out conserves the
    // stream's instantaneous capacity — no free burst, no spurious
    // throttles on traffic arriving the instant the reshard lands.
    double record_tokens = kKinesisShardWriteRecordsPerSec;
    double byte_tokens = static_cast<double>(kKinesisShardWriteBytesPerSec);
    double read_byte_tokens =
        static_cast<double>(kKinesisShardReadBytesPerSec);
    double read_call_tokens = kKinesisShardReadCallsPerSec;
    SimTime last_refill = 0.0;
  };

  /// A shard born mid-run: zero tokens, refill clock anchored at `now`.
  /// Callers seed the token fields from capacity being divided (a share
  /// of the parents' banked tokens). The explicit `last_refill = now`
  /// matters: a zero/stale refill timestamp would mint a full catch-up
  /// bucket on the shard's first touch, letting a 2→8 scale-out accept
  /// a burst of 6×1000 records in one instant — above any per-shard
  /// limit.
  static Shard MakeChildShard(SimTime now);

  void RefillTokens(Shard* shard, SimTime now);
  void ApplyReshard(int target);
  void PublishMetrics();

  sim::Simulation* sim_;
  cloudwatch::MetricStore* metrics_;
  StreamConfig config_;
  std::vector<Shard> shards_;
  int target_shards_;
  bool reshard_in_flight_ = false;
  uint64_t reshard_epoch_ = 0;

  uint64_t total_incoming_ = 0;
  uint64_t total_throttled_ = 0;
  uint64_t total_read_throttles_ = 0;
  // Period counters (reset after each publication).
  uint64_t period_incoming_ = 0;
  uint64_t period_throttled_ = 0;
  SimTime period_start_ = 0.0;
};

}  // namespace flower::kinesis

#endif  // FLOWER_KINESIS_STREAM_H_
