// Capacity planning with Flower's resource-share analyzer: sweep the
// hourly budget and print, for each budget, the Pareto-optimal
// provisioning plans and the balanced plan Flower would enact. Emits a
// CSV block that can be plotted directly (budget, shards, vms, wcu,
// cost) — the workflow an admin uses before enabling the controllers.
//
//   $ ./build/examples/capacity_planner

#include <iostream>

#include "common/csv.h"
#include "common/table_printer.h"
#include "core/resource_share.h"

using namespace flower;

int main() {
  pricing::PriceBook book;
  std::cout << "== Flower capacity planner ==\n"
            << "Unit prices: shard $"
            << book.HourlyPrice(pricing::ResourceKind::kKinesisShard)
            << "/h, VM $"
            << book.HourlyPrice(pricing::ResourceKind::kEc2Instance)
            << "/h, WCU $"
            << book.HourlyPrice(pricing::ResourceKind::kDynamoWcu) << "/h\n";

  TablePrinter table({"budget $/h", "pareto plans", "balanced plan "
                      "(shards/vms/wcu)", "plan cost $/h",
                      "max shares (I/A/S)"});
  std::cout << "\nCSV: budget,shards,vms,wcu,cost\n";
  CsvWriter csv(&std::cout);

  for (double budget : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    core::ResourceShareRequest req;
    req.hourly_budget_usd = budget;
    req.SetPricesFrom(book);
    req.bounds[0] = {1.0, 60.0};
    req.bounds[1] = {1.0, 30.0};
    req.bounds[2] = {5.0, 2000.0};
    req.constraints.push_back(core::LinearConstraint::AtLeast(
        core::Layer::kAnalytics, 5.0, core::Layer::kIngestion, 1.0,
        "5*vms >= shards"));
    req.constraints.push_back(core::LinearConstraint::AtMost(
        core::Layer::kAnalytics, 2.0, core::Layer::kIngestion, -1.0, 0.0,
        "2*vms <= shards"));
    req.constraints.push_back(core::LinearConstraint::AtMost(
        core::Layer::kIngestion, 2.0, core::Layer::kStorage, -1.0, 0.0,
        "2*shards <= wcu"));

    opt::Nsga2Config solver;
    solver.population_size = 100;
    solver.generations = 200;
    core::ResourceShareAnalyzer analyzer(solver);
    auto res = analyzer.Analyze(req);
    if (!res.ok()) {
      std::cerr << "budget " << budget << ": " << res.status() << "\n";
      continue;
    }
    auto balanced = core::ResourceShareAnalyzer::PickBalancedPlan(*res, req);
    auto max_shares = core::ResourceShareAnalyzer::MaxShares(*res);
    if (!balanced.ok() || !max_shares.ok()) continue;

    table.AddRow(
        {TablePrinter::Num(budget, 2),
         std::to_string(res->pareto_plans.size()),
         TablePrinter::Num(balanced->ingestion(), 0) + "/" +
             TablePrinter::Num(balanced->analytics(), 0) + "/" +
             TablePrinter::Num(balanced->storage(), 0),
         TablePrinter::Num(balanced->hourly_cost_usd, 3),
         TablePrinter::Num(max_shares->ingestion(), 0) + "/" +
             TablePrinter::Num(max_shares->analytics(), 0) + "/" +
             TablePrinter::Num(max_shares->storage(), 0)});
    for (const core::ProvisioningPlan& p : res->pareto_plans) {
      csv.WriteNumericRow({budget, p.ingestion(), p.analytics(), p.storage(),
                           p.hourly_cost_usd});
    }
  }
  std::cout << "\n";
  table.Print(std::cout);
  return 0;
}
