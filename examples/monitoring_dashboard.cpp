// Cross-platform monitoring (paper §3.4): run the managed flow and
// render the all-in-one-place dashboard at regular intervals, with
// CloudWatch-style alarms on every layer feeding a consolidated event
// log — the text equivalent of watching Fig. 6's UI live.
//
//   $ ./build/examples/monitoring_dashboard

#include <iomanip>
#include <iostream>
#include <sstream>
#include <vector>

#include "cloudwatch/alarm.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "core/dependency_analyzer.h"
#include "core/flow_builder.h"
#include "core/monitor.h"
#include "obs/health/health_monitor.h"
#include "obs/telemetry.h"
#include "sim/fault_injector.h"

using namespace flower;

namespace {

std::string Labels(const obs::LabelSet& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += " ";
    out += k + "=" + v;
  }
  return out;
}

std::string Num(double v, int digits = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

// The live-style instrument table: one row per registered counter,
// gauge, and histogram, straight from a registry snapshot.
void RenderMetricsTable(const obs::Telemetry& telemetry, std::ostream& os) {
  obs::MetricsSnapshot snap = telemetry.metrics().Snapshot();
  TablePrinter table({"instrument", "labels", "value"});
  for (const obs::CounterSample& c : snap.counters) {
    table.AddRow({c.name, Labels(c.labels), std::to_string(c.value)});
  }
  for (const obs::GaugeSample& g : snap.gauges) {
    table.AddRow({g.name, Labels(g.labels), Num(g.value)});
  }
  for (const obs::HistogramSample& h : snap.histograms) {
    table.AddRow({h.name, Labels(h.labels),
                  "n=" + std::to_string(h.count) + " p50=" + Num(h.p50) +
                      " p99=" + Num(h.p99) + " max=" + Num(h.max)});
  }
  table.Print(os);
}

}  // namespace

int main() {
  obs::Telemetry telemetry;
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;

  // A bursty workload that will trip the alarms.
  auto arrival = std::make_shared<workload::CompositeArrival>();
  arrival->Add(std::make_shared<workload::ConstantArrival>(500.0));
  arrival->Add(std::make_shared<workload::FlashCrowdArrival>(
      0.0, 2500.0, 40 * kMinute, 20 * kMinute, 2 * kMinute));

  // Inject some weather so the resilience counters have something to
  // show: analytics resizes fail transiently during the flash crowd,
  // and the storage metrics drop out for a while.
  sim::FaultInjector chaos(&sim, /*seed=*/3);
  chaos.FailActuator("analytics", 40 * kMinute, 55 * kMinute, 0.7);
  chaos.DropMetrics("storage", 70 * kMinute, 80 * kMinute);

  core::ResiliencePolicy resilience;
  resilience.retry.max_retries = 3;
  resilience.retry.initial_backoff_sec = 5.0;
  resilience.breaker.failure_threshold = 5;
  resilience.breaker.cooldown_sec = 10 * kMinute;
  resilience.sensor.on_miss = core::SensorMissPolicy::kHoldLastValue;
  resilience.sensor.max_hold_sec = 15 * kMinute;

  auto managed = core::FlowBuilder()
                     .WithWorkload(arrival)
                     .WithSeed(3)
                     .WithResilience(resilience)
                     .WithFaultInjector(&chaos)
                     .WithTelemetry(&telemetry)
                     .Build(&sim, &metrics);
  if (!managed.ok()) {
    std::cerr << managed.status() << "\n";
    return 1;
  }

  // Alarms across all three platforms, consolidated in one event log.
  std::vector<cloudwatch::Alarm> alarms;
  auto add_alarm = [&](const char* name, cloudwatch::MetricId id,
                       double threshold, cloudwatch::Comparison cmp) {
    cloudwatch::AlarmConfig cfg;
    cfg.name = name;
    cfg.metric = std::move(id);
    cfg.threshold = threshold;
    cfg.comparison = cmp;
    cfg.period = 60.0;
    cfg.evaluation_periods = 2;
    alarms.emplace_back(cfg);
  };
  add_alarm("storm-cpu-high", {"Flower/Storm", "CpuUtilization", "storm"},
            85.0, cloudwatch::Comparison::kGreaterThan);
  add_alarm("kinesis-throttling",
            {"Flower/Kinesis", "ThrottledRecords", "clickstream"}, 0.5,
            cloudwatch::Comparison::kGreaterThan);
  add_alarm("dynamo-overuse",
            {"Flower/DynamoDB", "WriteUtilization", "aggregates"}, 90.0,
            cloudwatch::Comparison::kGreaterThan);
  for (cloudwatch::Alarm& alarm : alarms) {
    alarm.set_on_state_change([&](const cloudwatch::Alarm& a,
                                  cloudwatch::AlarmState old_state,
                                  cloudwatch::AlarmState new_state) {
      std::cout << "[t=" << sim.Now() / kMinute << "min] ALARM '"
                << a.config().name << "': "
                << cloudwatch::AlarmStateToString(old_state) << " -> "
                << cloudwatch::AlarmStateToString(new_state) << "\n";
    });
  }
  (void)sim.SchedulePeriodic(2 * kMinute, kMinute, [&] {
    for (cloudwatch::Alarm& alarm : alarms) alarm.Evaluate(metrics, sim.Now());
    return true;
  });

  // Flow-health layer next to the raw alarms: utilization SLOs per
  // loop, anomaly detectors on the sensed signals and failure rates,
  // and Eq. 1 dependency edges for root-cause attribution.
  obs::health::HealthMonitorConfig health_cfg;
  health_cfg.eval_period_sec = kMinute;
  obs::health::HealthMonitor flow_health(&telemetry, health_cfg);
  for (const obs::health::SloSpec& spec :
       obs::health::MakeDefaultSloPack(/*util_threshold=*/90.0,
                                       /*objective=*/0.95)) {
    if (auto st = flow_health.AddSlo(spec); !st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
  }
  for (const char* layer : {"ingestion", "analytics", "storage"}) {
    (void)flow_health.Watch(
        obs::health::AnomalyBank::Source::kGauge,
        {"loop.sensed_y", {{"loop", layer}, {"layer", layer}}}, layer);
    (void)flow_health.Watch(
        obs::health::AnomalyBank::Source::kCounterRate,
        {"loop.actuation_failures", {{"loop", layer}, {"layer", layer}}},
        layer);
  }
  managed->manager->SetHealthAnnotator(
      [&](const std::string& layer, SimTime) {
        return flow_health.MaskFor(layer);
      });
  (void)sim.SchedulePeriodic(kMinute, kMinute, [&] {
    flow_health.Evaluate(sim.Now());
    return true;
  });
  // Re-learn Eq. 1 edges over the trailing hour so attribution follows
  // the load as it shifts.
  core::DependencyAnalyzer analyzer;
  const std::vector<core::LayerMetric> layer_metrics = {
      {core::Layer::kIngestion,
       {"Flower/Kinesis", "IncomingRecords", "clickstream"}},
      {core::Layer::kAnalytics, {"Flower/Storm", "CpuUtilization", "storm"}},
      {core::Layer::kStorage,
       {"Flower/DynamoDB", "ConsumedWriteCapacityUnits", "aggregates"}},
  };
  (void)sim.SchedulePeriodic(kHour, 30 * kMinute, [&] {
    flow_health.SetDependencyEdges(core::ToHealthEdges(analyzer.AnalyzeAll(
        metrics, layer_metrics, sim.Now() - kHour, sim.Now())));
    return true;
  });

  core::CrossPlatformMonitor monitor(&metrics);
  monitor.Watch({"Flower/Kinesis", "WriteUtilization", "clickstream"});
  monitor.Watch({"Flower/Kinesis", "ShardCount", "clickstream"});
  monitor.Watch({"Flower/Storm", "CpuUtilization", "storm"});
  monitor.Watch({"Flower/Storm", "WorkerCount", "storm"});
  monitor.Watch({"Flower/Storm", "CompleteLatency", "storm"});
  monitor.Watch({"Flower/DynamoDB", "WriteUtilization", "aggregates"});

  // Render the consolidated dashboard every 30 simulated minutes, with
  // the telemetry instrument table next to the metric charts — the text
  // equivalent of the paper's live monitoring pane.
  (void)sim.SchedulePeriodic(30 * kMinute, 30 * kMinute, [&] {
    monitor.RenderDashboard(std::cout, sim.Now() - 30 * kMinute, sim.Now());
    std::cout << "Telemetry instruments @ t=" << sim.Now() / kMinute
              << "min:\n";
    RenderMetricsTable(telemetry, std::cout);
    return sim.Now() < 2 * kHour;
  });

  sim.RunUntil(2 * kHour);

  std::cout << "\nFinal hour with trend charts:\n";
  monitor.RenderDashboard(std::cout, kHour, 2 * kHour, /*with_charts=*/true);

  // Control-loop health: the resilience counters next to the metric
  // dashboards, one row per loop.
  std::cout << "\nControl-loop health:\n";
  TablePrinter health({"loop", "steps", "misses", "stale", "act fails",
                       "retries", "retry ok", "brk trips", "brk skips",
                       "breaker"});
  for (const std::string& name : managed->manager->LoopNames()) {
    auto state = managed->manager->GetState(name);
    if (!state.ok()) continue;
    const core::LayerControlState& s = **state;
    health.AddRow({name, std::to_string(s.actuations.size()),
                   std::to_string(s.sensor_misses()),
                   std::to_string(s.stale_sensor_reads()),
                   std::to_string(s.actuation_failures()),
                   std::to_string(s.actuation_retries()),
                   std::to_string(s.retry_successes()),
                   std::to_string(s.breaker_trips()),
                   std::to_string(s.breaker_skipped_steps()),
                   s.breaker_open ? "OPEN" : "closed"});
  }
  health.Print(std::cout);

  // Flow-health panel: the SLO engine's view of the same run — burn
  // rates, budget spend, fired alerts, and (when something broke) the
  // ranked root-cause attribution.
  std::cout << "\nFlow health (" << flow_health.evaluations()
            << " evaluations):\n";
  TablePrinter slo_table({"slo", "layer", "good", "burn 5m", "burn 1h",
                          "budget", "state", "alerts"});
  for (const obs::health::SloStatus& s : flow_health.Statuses()) {
    slo_table.AddRow({s.id, s.layer, Num(s.good_fraction, 3),
                      Num(s.burn_fast), Num(s.burn_slow),
                      Num(s.budget_consumed * 100.0, 1) + "%",
                      s.breached ? "BREACHED" : "ok",
                      std::to_string(s.alerts_fired)});
  }
  slo_table.Print(std::cout);

  // Rollup panel: trailing-window aggregates straight from the health
  // monitor's fixed-memory rollup store (the same sparse feed its SLO
  // burn windows read), no registry scan and no per-query allocation.
  if (flow_health.rollups() != nullptr) {
    const obs::RollupStore& rollups = *flow_health.rollups();
    std::cout << "\nRollup queries (" << rollups.NumTracked()
              << " tracked series, " << rollups.ticks() << " ticks):\n";
    TablePrinter roll({"metric", "window", "mean", "max", "fail/h"});
    for (const char* layer : {"ingestion", "analytics", "storage"}) {
      obs::LabelSet labels{{"layer", layer}, {"loop", layer}};
      for (double window : {30 * kMinute, 2 * kHour}) {
        auto mean = rollups.Query("loop.sensed_y", labels, window,
                                  obs::RollupAgg::kMean);
        auto max = rollups.Query("loop.sensed_y", labels, window,
                                 obs::RollupAgg::kMax);
        auto fails = rollups.Query("loop.actuation_failures", labels, window,
                                   obs::RollupAgg::kRate);
        roll.AddRow({std::string("loop.sensed_y{layer=") + layer + "}",
                     Num(window / kMinute, 0) + "min",
                     mean.ok() ? Num(*mean, 1) : "n/a",
                     max.ok() ? Num(*max, 1) : "n/a",
                     fails.ok() ? Num(*fails * 3600.0, 2) : "n/a"});
      }
    }
    roll.Print(std::cout);
  }

  const auto& anomalies = flow_health.anomaly_log();
  std::cout << "Anomalies flagged: " << anomalies.size();
  if (!anomalies.empty()) {
    const obs::health::AnomalyEvent& last = anomalies.back();
    std::cout << " (last: " << last.stream << " "
              << obs::health::AnomalyKindToString(last.kind) << " @ t="
              << Num(last.time / kMinute, 0) << "min, score="
              << Num(last.score, 1) << ")";
  }
  std::cout << "\n";
  if (flow_health.reports().empty()) {
    std::cout << "No SLO breach reports — flow healthy.\n";
  } else {
    const obs::health::HealthReport& report = flow_health.reports().back();
    std::cout << "Latest health report (t="
              << Num(report.time / kMinute, 0) << "min): " << report.summary
              << "\n";
    TablePrinter ranking({"rank", "layer", "score", "top evidence"});
    int rank = 1;
    for (const obs::health::LayerAttribution& a : report.ranking) {
      ranking.AddRow({std::to_string(rank++), a.layer, Num(a.score, 1),
                      a.evidence.empty() ? "" : a.evidence.front().detail});
    }
    ranking.Print(std::cout);
  }

  // Tail of the control-decision event log: the structured record of
  // what each loop sensed and decided, newest last.
  std::vector<obs::ControlDecisionRecord> decisions =
      telemetry.decisions().Snapshot();
  constexpr size_t kTail = 8;
  size_t first = decisions.size() > kTail ? decisions.size() - kTail : 0;
  std::cout << "\nLast " << decisions.size() - first
            << " control decisions (of " << decisions.size() << "):\n";
  TablePrinter tail({"t min", "loop", "law", "y", "y_r", "gain", "u",
                     "outcome", "faults"});
  for (size_t i = first; i < decisions.size(); ++i) {
    const obs::ControlDecisionRecord& d = decisions[i];
    tail.AddRow({Num(d.time / kMinute, 0), d.loop, d.law, Num(d.sensed_y, 1),
                 Num(d.reference, 1), Num(d.gain, 3), Num(d.clamped_u, 1),
                 obs::StepOutcomeToString(d.outcome),
                 std::to_string(static_cast<int>(d.fault_mask))});
  }
  tail.Print(std::cout);

  std::cout << "\nInjected faults: "
            << chaos.stats().actuator_failures << " actuation failures, "
            << chaos.stats().metric_gaps << " metric gaps\n";
  return 0;
}
