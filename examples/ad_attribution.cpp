// Ad-attribution flow: a second domain scenario built from Flower's
// lower-level primitives (no FlowBuilder): TWO Kinesis streams — ad
// impressions and clicks — joined inside one Storm topology (the
// multi-parent DAG), with attributed conversions persisted to DynamoDB
// and Flower's adaptive controllers managing every resource.
//
//   impressions ─┐
//                ├─ join (attribution window) ─ persist → DynamoDB
//   clicks ──────┘
//
//   $ ./build/examples/ad_attribution

#include <iostream>
#include <map>

#include "common/table_printer.h"
#include "common/units.h"
#include "core/elasticity_manager.h"
#include "core/controller_factory.h"
#include "core/monitor.h"
#include "dynamodb/table.h"
#include "storm/cluster.h"
#include "workload/clickstream.h"

using namespace flower;

namespace {

/// Joins clicks (source 1) to the most recent impression (source 0) of
/// the same ad within the attribution window; emits one attributed
/// tuple per match.
class AttributionJoinBolt final : public storm::BoltLogic {
 public:
  explicit AttributionJoinBolt(double window_sec) : window_(window_sec) {}

  Status Execute(const storm::Tuple& t, SimTime now,
                 const std::function<void(storm::Tuple)>& emit) override {
    if (t.source == 0) {  // Impression: remember it.
      last_impression_[t.entity_id] = now;
      return Status::OK();
    }
    // Click: attribute if an impression for this ad is fresh enough.
    auto it = last_impression_.find(t.entity_id);
    if (it != last_impression_.end() && now - it->second <= window_) {
      storm::Tuple attributed = t;
      attributed.value = 1.0;
      emit(attributed);
      ++attributed_;
    } else {
      ++unattributed_;
    }
    return Status::OK();
  }

  uint64_t attributed() const { return attributed_; }
  uint64_t unattributed() const { return unattributed_; }

 private:
  double window_;
  std::map<int64_t, SimTime> last_impression_;
  uint64_t attributed_ = 0;
  uint64_t unattributed_ = 0;
};

/// Accumulates attributed conversions per ad and writes running totals
/// to DynamoDB.
class ConversionSink final : public storm::BoltLogic {
 public:
  explicit ConversionSink(dynamodb::Table* table) : table_(table) {}
  Status Execute(const storm::Tuple& t, SimTime,
                 const std::function<void(storm::Tuple)>&) override {
    double& total = totals_[t.entity_id];
    Status st = table_->PutItem(t.entity_id,
                                std::to_string(total + t.value), 128);
    if (st.ok()) total += t.value;
    return st;  // Throttled -> re-queued by the cluster (backpressure).
  }

 private:
  dynamodb::Table* table_;
  std::map<int64_t, double> totals_;
};

}  // namespace

int main() {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;

  // --- Ingestion: two streams.
  kinesis::StreamConfig imp_cfg;
  imp_cfg.name = "impressions";
  imp_cfg.initial_shards = 4;
  imp_cfg.max_shards = 64;
  kinesis::Stream impressions(&sim, &metrics, imp_cfg);
  kinesis::StreamConfig clk_cfg;
  clk_cfg.name = "clicks";
  clk_cfg.initial_shards = 2;
  clk_cfg.max_shards = 64;
  kinesis::Stream clicks(&sim, &metrics, clk_cfg);

  // --- Storage.
  dynamodb::TableConfig table_cfg;
  table_cfg.name = "conversions";
  table_cfg.initial_wcu = 100.0;
  table_cfg.max_wcu = 5000.0;
  dynamodb::Table table(&sim, &metrics, table_cfg);

  // --- Analytics: join topology on a simulated EC2 fleet.
  ec2::Fleet fleet(&sim, {"m4.large", 2, 1.0e6, 0.10}, 4, 90.0);
  storm::ClusterConfig cluster_cfg;
  cluster_cfg.name = "attribution";
  storm::Cluster cluster(&sim, &metrics, &fleet, cluster_cfg);

  auto drain = [](kinesis::Stream* stream) {
    return [stream](size_t max, std::vector<storm::Tuple>* out) {
      for (int s = 0; s < stream->shard_count() && out->size() < max; ++s) {
        auto recs = stream->GetRecords(
            s, max / static_cast<size_t>(stream->shard_count()) + 1);
        if (!recs.ok()) continue;
        for (const kinesis::Record& r : *recs) {
          storm::Tuple t;
          t.origin_time = r.timestamp;
          t.entity_id = r.entity_id;
          t.size_bytes = r.size_bytes;
          out->push_back(t);
          if (out->size() >= max) break;
        }
      }
    };
  };
  auto topology = std::make_shared<storm::Topology>("attribution");
  if (!topology->AddSpout("impressions", drain(&impressions), 300.0).ok() ||
      !topology->AddSpout("clicks", drain(&clicks), 300.0).ok()) {
    return 1;
  }
  auto join = std::make_shared<AttributionJoinBolt>(5.0 * kMinute);
  storm::BoltSpec join_spec;
  join_spec.name = "attribution-join";
  join_spec.cpu_cost_per_tuple = 2500.0;
  join_spec.logic = join;
  if (!topology->AddBolt(join_spec, std::vector<std::string>{"impressions", "clicks"}).ok()) {
    return 1;
  }
  storm::BoltSpec sink_spec;
  sink_spec.name = "conversion-sink";
  sink_spec.cpu_cost_per_tuple = 600.0;
  sink_spec.logic = std::make_shared<ConversionSink>(&table);
  if (!topology->AddBolt(sink_spec, "attribution-join").ok()) return 1;
  if (!cluster.Submit(topology).ok()) return 1;

  // --- Workloads: many impressions, fewer clicks, same ad catalog.
  workload::ClickStreamConfig ads;
  ads.num_users = 100000;
  ads.num_urls = 300;  // Ad ids.
  workload::ClickStreamGenerator imp_gen(
      &sim, &impressions,
      std::make_shared<workload::DiurnalArrival>(2000.0, 1200.0, 2 * kHour),
      ads, 101);
  workload::ClickStreamGenerator clk_gen(
      &sim, &clicks,
      std::make_shared<workload::DiurnalArrival>(250.0, 150.0, 2 * kHour),
      ads, 202);

  // --- Flower: controllers on both streams, the cluster and the table.
  core::ElasticityManager manager(&sim, &metrics);
  auto attach = [&](core::Layer layer, cloudwatch::MetricId metric,
                    double initial_u, control::ActuatorLimits limits,
                    double gain_scale,
                    std::function<Status(double)> actuator) {
    auto controller = core::MakeController(
        core::ControllerKind::kAdaptiveGain, 60.0, limits, gain_scale);
    if (!controller.ok()) return false;
    core::LayerControlConfig cfg;
    cfg.layer = layer;
    cfg.sensor_metric = std::move(metric);
    cfg.monitoring_period_sec = 120.0;
    cfg.monitoring_window_sec = 120.0;
    cfg.controller = std::move(*controller);
    cfg.actuator = std::move(actuator);
    cfg.initial_u = initial_u;
    return manager.Attach(std::move(cfg)).ok();
  };
  control::ActuatorLimits shard_limits{1.0, 64.0, true};
  control::ActuatorLimits vm_limits{1.0, 40.0, true};
  control::ActuatorLimits wcu_limits{5.0, 5000.0, true};
  bool ok =
      attach(core::Layer::kIngestion,
             {"Flower/Kinesis", "WriteUtilization", "impressions"}, 4.0,
             shard_limits, 1.0,
             [&](double u) {
               return impressions.UpdateShardCount(
                   static_cast<int>(std::lround(u)));
             }) &&
      attach(core::Layer::kAnalytics,
             {"Flower/Storm", "CpuUtilization", "attribution"}, 4.0,
             vm_limits, 1.0,
             [&](double u) {
               return cluster.SetWorkerCount(
                   static_cast<int>(std::lround(u)));
             }) &&
      attach(core::Layer::kStorage,
             {"Flower/DynamoDB", "WriteUtilization", "conversions"}, 100.0,
             wcu_limits, 50.0, [&](double u) {
               return table.SetProvisionedThroughput(
                   u, table.provisioned_rcu());
             });
  {
    // The same manager runs a second, *named* ingestion loop for the
    // clicks stream (one loop per resource, several per layer).
    core::LayerControlConfig cfg;
    cfg.layer = core::Layer::kIngestion;
    cfg.name = "ingestion-clicks";
    cfg.sensor_metric = {"Flower/Kinesis", "WriteUtilization", "clicks"};
    cfg.monitoring_period_sec = 120.0;
    cfg.monitoring_window_sec = 120.0;
    auto controller = core::MakeController(
        core::ControllerKind::kAdaptiveGain, 60.0, shard_limits);
    if (!controller.ok()) return 1;
    cfg.controller = std::move(*controller);
    cfg.actuator = [&](double u) {
      return clicks.UpdateShardCount(static_cast<int>(std::lround(u)));
    };
    cfg.initial_u = 2.0;
    ok = ok && manager.Attach(std::move(cfg)).ok();
  }
  if (!ok) {
    std::cerr << "failed to attach controllers\n";
    return 1;
  }

  // --- Run 4 simulated hours, reporting hourly.
  TablePrinter report({"hour", "imp shards", "clk shards", "VMs", "WCU",
                       "attributed", "unattributed", "items"});
  (void)sim.SchedulePeriodic(kHour, kHour, [&] {
    report.AddRow({TablePrinter::Num(sim.Now() / kHour, 0),
                   std::to_string(impressions.shard_count()),
                   std::to_string(clicks.shard_count()),
                   std::to_string(cluster.worker_count()),
                   TablePrinter::Num(table.provisioned_wcu(), 0),
                   std::to_string(join->attributed()),
                   std::to_string(join->unattributed()),
                   std::to_string(table.ItemCount())});
    return sim.Now() < 4 * kHour;
  });
  sim.RunUntil(4 * kHour);

  std::cout << "== Ad-attribution flow (two streams joined in one "
               "topology) ==\n\n";
  report.Print(std::cout);
  double rate = join->attributed() + join->unattributed() > 0
                    ? 100.0 * static_cast<double>(join->attributed()) /
                          static_cast<double>(join->attributed() +
                                              join->unattributed())
                    : 0.0;
  std::cout << "\nAttribution rate: " << TablePrinter::Num(rate, 1)
            << "% of clicks matched an impression within 5 minutes\n";
  std::cout << "Dropped impressions: " << imp_gen.total_dropped()
            << ", dropped clicks: " << clk_gen.total_dropped() << "\n\n";
  core::CrossPlatformMonitor monitor(&metrics);
  monitor.Watch({"Flower/Kinesis", "WriteUtilization", "impressions"});
  monitor.Watch({"Flower/Kinesis", "WriteUtilization", "clicks"});
  monitor.Watch({"Flower/Storm", "CpuUtilization", "attribution"});
  monitor.Watch({"Flower/DynamoDB", "WriteUtilization", "conversions"});
  monitor.RenderDashboard(std::cout, 3 * kHour, 4 * kHour);
  return 0;
}
