// Trace replay: record a workload's rate profile to CSV, reload it, and
// drive the managed flow from the replayed trace — the workflow for
// re-running production traffic against new elasticity settings.
//
//   $ ./build/examples/trace_replay [trace.csv]
//
// With no argument, a synthetic "production" trace is generated and
// written to a temporary file first, so the example is self-contained.

#include <cstdio>
#include <iostream>

#include "common/units.h"
#include "core/flow_builder.h"
#include "core/monitor.h"
#include "workload/trace_io.h"

using namespace flower;

namespace {

// A bursty "production day" rate profile, 1-minute resolution.
TimeSeries SyntheticProductionTrace() {
  TimeSeries trace("production");
  Rng rng(99);
  for (double t = 0.0; t < 4 * kHour; t += kMinute) {
    double base = 700.0 + 500.0 * std::sin(2.0 * M_PI * t / (4 * kHour));
    double burst =
        (t > 1.5 * kHour && t < 1.8 * kHour) ? 1200.0 : 0.0;
    trace.AppendUnchecked(t, std::max(50.0, base + burst +
                                                rng.Normal(0.0, 30.0)));
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = std::string(std::tmpnam(nullptr)) + "_flower_trace.csv";
    Status st = workload::SaveRateTraceCsv(SyntheticProductionTrace(), path);
    if (!st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
    std::cout << "Wrote synthetic production trace to " << path << "\n";
  }

  auto trace = workload::LoadRateTraceCsv(path);
  if (!trace.ok()) {
    std::cerr << "cannot load trace: " << trace.status() << "\n";
    return 1;
  }
  std::cout << "Loaded " << trace->size() << " samples spanning "
            << (trace->end_time() - trace->start_time()) / kHour
            << " hours\n";

  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  auto managed =
      core::FlowBuilder()
          .WithWorkload(std::make_shared<workload::TraceArrival>(*trace))
          .WithSeed(5)
          .Build(&sim, &metrics);
  if (!managed.ok()) {
    std::cerr << managed.status() << "\n";
    return 1;
  }
  double horizon = trace->end_time();
  sim.RunUntil(horizon);

  auto& flow = *managed->flow;
  std::cout << "\nReplay finished at t=" << horizon / kHour << "h:\n"
            << "  events generated : " << flow.generator()->total_generated()
            << "\n"
            << "  events dropped   : " << flow.generator()->total_dropped()
            << "\n"
            << "  final shards/VMs/WCU: " << flow.stream().shard_count()
            << "/" << flow.cluster().worker_count() << "/"
            << flow.table().provisioned_wcu() << "\n\n";

  core::CrossPlatformMonitor monitor(&metrics);
  monitor.Watch({"Flower/Kinesis", "IncomingRecords", "clickstream"});
  monitor.Watch({"Flower/Storm", "CpuUtilization", "storm"});
  monitor.Watch({"Flower/Storm", "WorkerCount", "storm"});
  monitor.RenderDashboard(std::cout, 0.0, horizon, /*with_charts=*/true);

  if (argc <= 1) std::remove(path.c_str());
  return 0;
}
