// Quickstart: build a managed click-stream data analytics flow in a
// dozen lines, run it for two simulated hours, and watch Flower keep
// every layer near its utilization target.
//
//   $ ./build/examples/quickstart

#include <iostream>

#include "core/flow_builder.h"
#include "core/monitor.h"
#include "common/units.h"

using namespace flower;

int main() {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;

  // 1. Describe the flow (Kinesis -> Storm -> DynamoDB) and its
  //    workload; everything else uses wizard defaults: adaptive-gain
  //    controllers at 60% utilization on all three layers.
  auto managed =
      core::FlowBuilder()
          .WithWorkload(std::make_shared<workload::DiurnalArrival>(
              /*base=*/800.0, /*amplitude=*/600.0, /*period=*/kHour))
          .WithSeed(1)
          .Build(&sim, &metrics);
  if (!managed.ok()) {
    std::cerr << "failed to build flow: " << managed.status() << "\n";
    return 1;
  }

  // 2. Run two simulated hours.
  sim.RunUntil(2 * kHour);

  // 3. Inspect the outcome through the cross-platform monitor.
  core::CrossPlatformMonitor monitor(&metrics);
  monitor.WatchNamespace("Flower/Kinesis");
  monitor.WatchNamespace("Flower/Storm");
  monitor.WatchNamespace("Flower/DynamoDB");
  monitor.RenderDashboard(std::cout, 0.0, 2 * kHour);

  auto& flow = *managed->flow;
  std::cout << "\nAfter 2 simulated hours:\n"
            << "  events generated : " << flow.generator()->total_generated()
            << "\n"
            << "  events dropped   : " << flow.generator()->total_dropped()
            << "\n"
            << "  aggregates acked : " << flow.cluster().total_acked() << "\n"
            << "  items in DynamoDB: " << flow.table().ItemCount() << "\n"
            << "  shards / VMs / WCU now: " << flow.stream().shard_count()
            << " / " << flow.cluster().worker_count() << " / "
            << flow.table().provisioned_wcu() << "\n";
  return 0;
}
