// The paper's demonstration scenario end to end (§4): the click-stream
// analytics flow of Fig. 1, managed by Flower.
//
//   Step 0  Deploy the flow and a multi-instance click generator.
//   Step 1  (Flow Builder)  assemble Kinesis -> Storm -> DynamoDB.
//   Step 2  (Config Wizard) pick controllers and references per layer.
//   Step 3  (Performance Monitor) run, watch capacities adapt live.
//
// Along the way the example exercises all four Flower components:
// workload dependency analysis on an observation run, resource share
// analysis to derive per-layer upper bounds, adaptive provisioning,
// and cross-platform monitoring.

#include <iostream>

#include "common/table_printer.h"
#include "common/units.h"
#include "core/dependency_analyzer.h"
#include "core/flow_builder.h"
#include "core/monitor.h"
#include "core/resource_share.h"

using namespace flower;

namespace {

std::shared_ptr<workload::ArrivalProcess> WebsiteTraffic() {
  // Realistic site traffic: diurnal cycle + lunchtime flash crowd.
  auto arrival = std::make_shared<workload::CompositeArrival>();
  arrival->Add(
      std::make_shared<workload::DiurnalArrival>(900.0, 650.0, 6 * kHour));
  arrival->Add(std::make_shared<workload::FlashCrowdArrival>(
      0.0, 1500.0, 3 * kHour, 30 * kMinute, 5 * kMinute));
  return arrival;
}

}  // namespace

int main() {
  std::cout << "== Flower demo: click-stream analytics flow (paper Fig. 1)\n";

  // ---- Observation run: gather logs for dependency analysis (§3.1).
  core::Dependency eq2;
  {
    sim::Simulation sim;
    cloudwatch::MetricStore metrics;
    flow::FlowConfig cfg;
    cfg.stream.initial_shards = 8;
    cfg.initial_workers = 24;
    cfg.instance_type = {"m4.large", 2, 1.0e6, 0.10};
    auto flow = flow::DataAnalyticsFlow::Create(&sim, &metrics, cfg)
                    .MoveValueOrDie();
    workload::ClickStreamConfig wl;
    wl.num_users = 50000;
    wl.num_urls = 500;
    if (!flow->AttachWorkload(WebsiteTraffic(), wl, 7).ok()) return 1;
    sim.RunUntil(3 * kHour);

    core::DependencyAnalyzer analyzer;
    auto deps = analyzer.AnalyzeAll(
        metrics,
        {{core::Layer::kIngestion,
          {"Flower/Kinesis", "IncomingRecords", "clickstream"}},
         {core::Layer::kAnalytics,
          {"Flower/Storm", "CpuUtilization", "storm"}},
         {core::Layer::kStorage,
          {"Flower/DynamoDB", "ConsumedWriteCapacityUnits", "aggregates"}}},
        0.0, 3 * kHour);
    std::cout << "\n-- Workload dependency analysis (Eq. 1/2):\n";
    for (const auto& d : deps) {
      std::cout << "   " << d.ToString() << "\n";
      if (d.significant && d.predictor.layer == core::Layer::kIngestion &&
          d.response.layer == core::Layer::kAnalytics) {
        eq2 = d;
      }
    }
  }

  // ---- Resource share analysis (§3.2) under a budget.
  core::ResourceShareRequest req;
  req.hourly_budget_usd = 1.5;
  pricing::PriceBook book;
  req.SetPricesFrom(book);
  req.bounds[0] = {1.0, 40.0};
  req.bounds[1] = {1.0, 20.0};
  req.bounds[2] = {5.0, 1000.0};
  req.constraints.push_back(core::LinearConstraint::AtLeast(
      core::Layer::kAnalytics, 5.0, core::Layer::kIngestion, 1.0,
      "5*vms >= shards"));
  req.constraints.push_back(core::LinearConstraint::AtMost(
      core::Layer::kIngestion, 2.0, core::Layer::kStorage, -1.0, 0.0,
      "2*shards <= wcu"));
  core::ResourceShareAnalyzer analyzer;
  auto plans = analyzer.Analyze(req);
  if (!plans.ok()) {
    std::cerr << plans.status() << "\n";
    return 1;
  }
  std::cout << "\n-- Resource share analysis: " << plans->pareto_plans.size()
            << " Pareto-optimal plans under $" << req.hourly_budget_usd
            << "/h\n";
  auto bounds = core::ResourceShareAnalyzer::MaxShares(*plans);
  if (!bounds.ok()) return 1;
  std::cout << "   controller upper bounds: shards<=" << bounds->ingestion()
            << " vms<=" << bounds->analytics() << " wcu<="
            << bounds->storage() << "\n";

  // ---- Managed run (§3.3 + §3.4): controllers on, bounds applied.
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  core::LayerElasticityConfig storage;
  storage.min_resource = 5.0;
  storage.max_resource = 1000.0;
  auto managed = core::FlowBuilder()
                     .WithStorage(storage)
                     .WithWorkload(WebsiteTraffic())
                     .WithSeed(7)
                     .Build(&sim, &metrics);
  if (!managed.ok()) {
    std::cerr << managed.status() << "\n";
    return 1;
  }
  for (int i = 0; i < core::kNumLayers; ++i) {
    auto layer = static_cast<core::Layer>(i);
    if (!managed->manager->SetShareUpperBound(layer, bounds->shares[i]).ok()) {
      return 1;
    }
  }

  std::cout << "\n-- Live run: capacities sampled hourly\n";
  TablePrinter table({"hour", "shards", "VMs", "WCU", "backlog", "items"});
  (void)sim.SchedulePeriodic(kHour, kHour, [&] {
    auto& f = *managed->flow;
    table.AddRow({TablePrinter::Num(sim.Now() / kHour, 0),
                  std::to_string(f.stream().shard_count()),
                  std::to_string(f.cluster().worker_count()),
                  TablePrinter::Num(f.table().provisioned_wcu(), 0),
                  std::to_string(f.stream().BacklogRecords()),
                  std::to_string(f.table().ItemCount())});
    return sim.Now() < 6 * kHour;
  });
  sim.RunUntil(6 * kHour);
  table.Print(std::cout);

  std::cout << "\n-- Cross-platform dashboard (last hour):\n";
  core::CrossPlatformMonitor monitor(&metrics);
  monitor.Watch({"Flower/Kinesis", "WriteUtilization", "clickstream"});
  monitor.Watch({"Flower/Storm", "CpuUtilization", "storm"});
  monitor.Watch({"Flower/DynamoDB", "WriteUtilization", "aggregates"});
  monitor.RenderDashboard(std::cout, 5 * kHour, 6 * kHour,
                          /*with_charts=*/true);

  if (eq2.significant) {
    std::cout << "Reminder — learned dependency (paper Eq. 2 analogue):\n   "
              << eq2.ToString() << "\n";
  }
  return 0;
}
