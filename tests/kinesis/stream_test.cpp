#include "kinesis/stream.h"

#include <gtest/gtest.h>

namespace flower::kinesis {
namespace {

StreamConfig TestConfig(int shards = 2) {
  StreamConfig cfg;
  cfg.name = "clicks";
  cfg.initial_shards = shards;
  cfg.min_shards = 1;
  cfg.max_shards = 32;
  cfg.reshard_delay_sec = 60.0;
  return cfg;
}

Record Rec(uint64_t key, int32_t bytes = 256, int64_t entity = 7) {
  Record r;
  r.partition_key = key;
  r.size_bytes = bytes;
  r.entity_id = entity;
  return r;
}

TEST(StreamTest, PutAndGetRoundTrip) {
  sim::Simulation sim;
  Stream stream(&sim, nullptr, TestConfig());
  ASSERT_TRUE(stream.PutRecord(Rec(0)).ok());  // Shard 0.
  ASSERT_TRUE(stream.PutRecord(Rec(1)).ok());  // Shard 1.
  EXPECT_EQ(stream.BacklogRecords(), 2u);
  auto recs = stream.GetRecords(0, 10);
  ASSERT_TRUE(recs.ok());
  ASSERT_EQ(recs->size(), 1u);
  EXPECT_EQ((*recs)[0].entity_id, 7);
  EXPECT_EQ(stream.BacklogRecords(), 1u);
}

TEST(StreamTest, RecordsAreFifoPerShard) {
  sim::Simulation sim;
  Stream stream(&sim, nullptr, TestConfig(1));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(stream.PutRecord(Rec(0, 256, i)).ok());
  }
  auto recs = stream.GetRecords(0, 3);
  ASSERT_TRUE(recs.ok());
  ASSERT_EQ(recs->size(), 3u);
  EXPECT_EQ((*recs)[0].entity_id, 0);
  EXPECT_EQ((*recs)[2].entity_id, 2);
}

TEST(StreamTest, ThrottlesBeyondPerShardRecordRate) {
  sim::Simulation sim;
  Stream stream(&sim, nullptr, TestConfig(1));
  // One shard accepts 1000 records at t=0 (full token bucket), then
  // throttles.
  int accepted = 0, throttled = 0;
  for (int i = 0; i < 1500; ++i) {
    Status st = stream.PutRecord(Rec(0, 64));
    if (st.ok()) ++accepted;
    else if (st.IsThrottled()) ++throttled;
  }
  EXPECT_EQ(accepted, 1000);
  EXPECT_EQ(throttled, 500);
  EXPECT_EQ(stream.total_throttled(), 500u);
}

TEST(StreamTest, TokensRefillOverTime) {
  sim::Simulation sim;
  Stream stream(&sim, nullptr, TestConfig(1));
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(stream.PutRecord(Rec(0, 64)).ok());
  EXPECT_TRUE(stream.PutRecord(Rec(0, 64)).IsThrottled());
  sim.RunUntil(0.5);  // Half a second refills ~500 record tokens.
  int accepted = 0;
  for (int i = 0; i < 600; ++i) {
    if (stream.PutRecord(Rec(0, 64)).ok()) ++accepted;
  }
  EXPECT_NEAR(accepted, 500, 2);
}

TEST(StreamTest, ThrottlesOnByteRate) {
  sim::Simulation sim;
  Stream stream(&sim, nullptr, TestConfig(1));
  // 1 MiB/s per shard: four 300 KiB records exceed it.
  int accepted = 0;
  for (int i = 0; i < 4; ++i) {
    if (stream.PutRecord(Rec(0, 300 * 1024)).ok()) ++accepted;
  }
  EXPECT_EQ(accepted, 3);
}

TEST(StreamTest, MoreShardsMoreAggregateCapacity) {
  sim::Simulation sim;
  Stream stream(&sim, nullptr, TestConfig(4));
  int accepted = 0;
  for (int i = 0; i < 5000; ++i) {
    if (stream.PutRecord(Rec(static_cast<uint64_t>(i), 64)).ok()) ++accepted;
  }
  EXPECT_GT(accepted, 3500);  // ~4000 with 4 shards vs 1000 with 1.
}

TEST(StreamTest, GetRecordsValidatesShardIndex) {
  sim::Simulation sim;
  Stream stream(&sim, nullptr, TestConfig(2));
  EXPECT_EQ(stream.GetRecords(-1, 10).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(stream.GetRecords(2, 10).status().code(),
            StatusCode::kOutOfRange);
}

TEST(StreamTest, UpdateShardCountAppliesAfterDelay) {
  sim::Simulation sim;
  Stream stream(&sim, nullptr, TestConfig(2));
  ASSERT_TRUE(stream.UpdateShardCount(8).ok());
  EXPECT_EQ(stream.shard_count(), 2);
  EXPECT_TRUE(stream.resharding());
  EXPECT_EQ(stream.target_shard_count(), 8);
  sim.RunUntil(61.0);
  EXPECT_EQ(stream.shard_count(), 8);
  EXPECT_FALSE(stream.resharding());
}

TEST(StreamTest, ShrinkPreservesBufferedRecords) {
  sim::Simulation sim;
  Stream stream(&sim, nullptr, TestConfig(4));
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(stream.PutRecord(Rec(static_cast<uint64_t>(i), 64)).ok());
  }
  ASSERT_TRUE(stream.UpdateShardCount(1).ok());
  sim.RunUntil(61.0);
  EXPECT_EQ(stream.shard_count(), 1);
  EXPECT_EQ(stream.BacklogRecords(), 40u);  // Nothing lost in the merge.
}

TEST(StreamTest, UpdateShardCountValidatesBounds) {
  sim::Simulation sim;
  Stream stream(&sim, nullptr, TestConfig(2));
  EXPECT_FALSE(stream.UpdateShardCount(0).ok());
  EXPECT_FALSE(stream.UpdateShardCount(33).ok());
}

TEST(StreamTest, SupersedingReshardWins) {
  sim::Simulation sim;
  Stream stream(&sim, nullptr, TestConfig(2));
  ASSERT_TRUE(stream.UpdateShardCount(8).ok());
  sim.RunUntil(10.0);
  ASSERT_TRUE(stream.UpdateShardCount(3).ok());  // Supersedes the first.
  sim.RunUntil(200.0);
  EXPECT_EQ(stream.shard_count(), 3);
}

TEST(StreamTest, ReadCallRateLimited) {
  sim::Simulation sim;
  Stream stream(&sim, nullptr, TestConfig(1));
  ASSERT_TRUE(stream.PutRecord(Rec(0, 64)).ok());
  // 5 banked call tokens; the 6th immediate call throttles.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(stream.GetRecords(0, 1).ok()) << i;
  }
  auto sixth = stream.GetRecords(0, 1);
  EXPECT_TRUE(sixth.status().IsThrottled());
  EXPECT_EQ(stream.total_read_throttles(), 1u);
  // Call tokens refill with time.
  sim.RunUntil(1.0);
  EXPECT_TRUE(stream.GetRecords(0, 1).ok());
}

TEST(StreamTest, ReadByteRateBoundsBatchSize) {
  sim::Simulation sim;
  Stream stream(&sim, nullptr, TestConfig(1));
  // Buffer ~4 MiB of records (write limits allow 1 MiB/s, so spread
  // the puts over a few simulated seconds).
  int accepted = 0;
  ASSERT_TRUE(sim.SchedulePeriodic(1.0, 1.0, [&] {
    for (int i = 0; i < 2; ++i) {
      if (stream.PutRecord(Rec(0, 512 * 1024)).ok()) ++accepted;
    }
    return sim.Now() < 8.0;
  }).ok());
  sim.RunUntil(9.0);
  ASSERT_GE(accepted, 8);  // >= 4 MiB buffered.
  // One call drains at most ~2 MiB (the read bucket) + the first
  // record: 512 KiB records -> <= 5 records.
  auto batch = stream.GetRecords(0, 1000);
  ASSERT_TRUE(batch.ok());
  EXPECT_LE(batch->size(), 5u);
  EXPECT_GE(batch->size(), 4u);
  // Immediately reading again returns little (bytes exhausted) though
  // the call quota still has tokens.
  auto second = stream.GetRecords(0, 1000);
  ASSERT_TRUE(second.ok());
  EXPECT_LE(second->size(), 1u);
}

TEST(StreamTest, SplitShardAddsCapacityAfterDelay) {
  sim::Simulation sim;
  Stream stream(&sim, nullptr, TestConfig(2));
  ASSERT_TRUE(stream.SplitShard(0).ok());
  EXPECT_TRUE(stream.resharding());
  EXPECT_EQ(stream.shard_count(), 2);
  sim.RunUntil(61.0);
  EXPECT_EQ(stream.shard_count(), 3);
  EXPECT_FALSE(stream.resharding());
}

TEST(StreamTest, SplitShardValidation) {
  sim::Simulation sim;
  StreamConfig cfg = TestConfig(2);
  cfg.max_shards = 2;
  Stream stream(&sim, nullptr, cfg);
  EXPECT_EQ(stream.SplitShard(5).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(stream.SplitShard(0).code(), StatusCode::kFailedPrecondition);
}

TEST(StreamTest, MergeShardsCombinesBuffers) {
  sim::Simulation sim;
  Stream stream(&sim, nullptr, TestConfig(3));
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(stream.PutRecord(Rec(static_cast<uint64_t>(i), 64)).ok());
  }
  size_t before = stream.BacklogRecords();
  ASSERT_TRUE(stream.MergeShards(0).ok());
  sim.RunUntil(61.0);
  EXPECT_EQ(stream.shard_count(), 2);
  EXPECT_EQ(stream.BacklogRecords(), before);  // Nothing lost.
}

TEST(StreamTest, MergeShardsValidation) {
  sim::Simulation sim;
  Stream stream(&sim, nullptr, TestConfig(1));
  EXPECT_EQ(stream.MergeShards(0).code(), StatusCode::kOutOfRange);
  Stream stream2(&sim, nullptr, TestConfig(2));
  // min_shards = 1 allows one merge, but not during an in-flight one.
  ASSERT_TRUE(stream2.MergeShards(0).ok());
  EXPECT_EQ(stream2.MergeShards(0).code(),
            StatusCode::kFailedPrecondition);
}

TEST(StreamTest, ConcurrentReshardRejected) {
  sim::Simulation sim;
  Stream stream(&sim, nullptr, TestConfig(2));
  ASSERT_TRUE(stream.SplitShard(0).ok());
  EXPECT_EQ(stream.SplitShard(0).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(stream.MergeShards(0).code(), StatusCode::kFailedPrecondition);
}

TEST(StreamTest, ScaleOutGrantsNoInstantTokenBurst) {
  sim::Simulation sim;
  Stream stream(&sim, nullptr, TestConfig(2));
  ASSERT_TRUE(stream.UpdateShardCount(8).ok());
  // Saturate the stream the instant the reshard lands (the reshard
  // event was scheduled first, so it fires first at t=60), then again
  // half a second later. Scale-out must conserve banked tokens: the
  // two full pre-reshard buckets (2 × 1000 records) are divided eight
  // ways, so exactly 2000 records can be accepted instantly. Were the
  // six new shards born with full buckets — or with a stale
  // last_refill minting a catch-up refill — this probe would admit
  // ~8000.
  int at_reshard = 0, at_half_sec = 0;
  ASSERT_TRUE(sim.ScheduleAt(60.0, [&] {
    ASSERT_EQ(stream.shard_count(), 8);
    for (int i = 0; i < 12000; ++i) {
      if (stream.PutRecord(Rec(static_cast<uint64_t>(i), 64)).ok()) {
        ++at_reshard;
      }
    }
  }).ok());
  ASSERT_TRUE(sim.ScheduleAt(60.5, [&] {
    for (int i = 0; i < 12000; ++i) {
      if (stream.PutRecord(Rec(static_cast<uint64_t>(i), 64)).ok()) {
        ++at_half_sec;
      }
    }
  }).ok());
  sim.RunUntil(61.0);
  EXPECT_EQ(at_reshard, 2000);
  // Refill over the following half second is rate-bound: 8 shards ×
  // 1000 rec/s × 0.5 s.
  EXPECT_NEAR(at_half_sec, 4000, 8);
  // Whole first post-reshard second stays within the aggregate
  // per-shard limit (8 × 1000 rec/s) plus the conserved carry-over.
  EXPECT_LE(at_reshard + at_half_sec, 8000);
}

TEST(StreamTest, SplitSharesParentTokensWithChild) {
  sim::Simulation sim;
  Stream stream(&sim, nullptr, TestConfig(2));
  ASSERT_TRUE(stream.SplitShard(0).ok());
  // At the split instant the parent's full bucket (1000 records) is
  // halved with the child; the untouched sibling keeps its own 1000.
  // Keys 0/1/2 map to shards 0/1/2 after the split (3 shards).
  int per_shard[3] = {0, 0, 0};
  ASSERT_TRUE(sim.ScheduleAt(60.0, [&] {
    ASSERT_EQ(stream.shard_count(), 3);
    for (int i = 0; i < 6000; ++i) {
      uint64_t key = static_cast<uint64_t>(i) % 3;
      if (stream.PutRecord(Rec(key, 64)).ok()) {
        ++per_shard[key];
      }
    }
  }).ok());
  sim.RunUntil(60.0);
  EXPECT_EQ(per_shard[0], 500);  // Parent: half its bucket remains.
  EXPECT_EQ(per_shard[1], 500);  // Child: the inherited half.
  EXPECT_EQ(per_shard[2], 1000);  // Untouched sibling.
}

TEST(StreamTest, IteratorAgeTracksOldestRecord) {
  sim::Simulation sim;
  Stream stream(&sim, nullptr, TestConfig(1));
  EXPECT_DOUBLE_EQ(stream.OldestRecordAgeSec(), 0.0);
  ASSERT_TRUE(stream.PutRecord(Rec(0, 64)).ok());
  sim.RunUntil(45.0);
  EXPECT_DOUBLE_EQ(stream.OldestRecordAgeSec(), 45.0);
  auto recs = stream.GetRecords(0, 10);
  ASSERT_TRUE(recs.ok());
  EXPECT_DOUBLE_EQ(stream.OldestRecordAgeSec(), 0.0);
}

TEST(StreamTest, PublishesMetrics) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  StreamConfig cfg = TestConfig(2);
  cfg.metrics_period_sec = 60.0;
  Stream stream(&sim, &metrics, cfg);
  ASSERT_TRUE(sim.SchedulePeriodic(1.0, 1.0, [&] {
    for (int i = 0; i < 100; ++i) {
      (void)stream.PutRecord(Rec(static_cast<uint64_t>(i), 64));
    }
    return sim.Now() < 300.0;
  }).ok());
  sim.RunUntil(301.0);
  cloudwatch::MetricId in{"Flower/Kinesis", "IncomingRecords", "clicks"};
  auto avg = metrics.GetStatistic(in, 0, 301, cloudwatch::Statistic::kAverage);
  ASSERT_TRUE(avg.ok());
  EXPECT_NEAR(*avg, 6000.0, 200.0);  // 100 rec/s * 60 s periods.
  cloudwatch::MetricId util{"Flower/Kinesis", "WriteUtilization", "clicks"};
  auto u = metrics.GetStatistic(util, 0, 301, cloudwatch::Statistic::kAverage);
  ASSERT_TRUE(u.ok());
  EXPECT_NEAR(*u, 5.0, 0.5);  // 100 rec/s over 2000 rec/s capacity.
}

TEST(StreamTest, WriteUtilizationTracksRate) {
  sim::Simulation sim;
  Stream stream(&sim, nullptr, TestConfig(1));
  ASSERT_TRUE(sim.SchedulePeriodic(1.0, 1.0, [&] {
    for (int i = 0; i < 500; ++i) {
      (void)stream.PutRecord(Rec(static_cast<uint64_t>(i), 64));
    }
    return sim.Now() < 20.0;
  }).ok());
  sim.RunUntil(20.0);
  EXPECT_NEAR(stream.CurrentWriteUtilizationPct(), 50.0, 5.0);
}

}  // namespace
}  // namespace flower::kinesis
