// Flight recorder + deterministic replay: recorder semantics, bundle
// round-trips, alert-triggered capture, solo-tenant replay determinism
// across solver thread counts, and divergence detection on corrupted
// bundles.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/fleet_manager.h"
#include "fleet/partition_spec.h"
#include "fleet/replay_harness.h"
#include "obs/replay/bundle.h"
#include "obs/replay/divergence.h"
#include "obs/replay/flight_recorder.h"
#include "obs/span.h"

namespace flower {
namespace {

using obs::replay::CaptureBundle;
using obs::replay::FlightRecorder;
using obs::replay::RecordedFault;
using obs::replay::RecorderConfig;

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

obs::ControlDecisionRecord MakeDecision(double t, const char* loop, double y,
                                        double raw_u, double u) {
  obs::ControlDecisionRecord rec;
  rec.time = t;
  rec.loop = loop;
  rec.layer = loop;
  rec.sensed_y = y;
  rec.raw_u = raw_u;
  rec.clamped_u = u;
  return rec;
}

// --- FlightRecorder unit tests. ------------------------------------

TEST(FlightRecorderTest, ChainIsDeterministicAndOrderSensitive) {
  FlightRecorder a;
  FlightRecorder b;
  a.RecordDecision(MakeDecision(60.0, "analytics", 55.0, 4.0, 4.0));
  a.RecordDecision(MakeDecision(120.0, "storage", 70.0, 90.0, 80.0));
  b.RecordDecision(MakeDecision(60.0, "analytics", 55.0, 4.0, 4.0));
  b.RecordDecision(MakeDecision(120.0, "storage", 70.0, 90.0, 80.0));
  EXPECT_EQ(a.chain_hash(), b.chain_hash());
  EXPECT_EQ(a.total_decisions(), 2u);

  FlightRecorder c;  // Same decisions, swapped order: different chain.
  c.RecordDecision(MakeDecision(120.0, "storage", 70.0, 90.0, 80.0));
  c.RecordDecision(MakeDecision(60.0, "analytics", 55.0, 4.0, 4.0));
  EXPECT_NE(a.chain_hash(), c.chain_hash());
}

TEST(FlightRecorderTest, DecisionRingEvictsOldestAndKeepsCheckpoints) {
  RecorderConfig config;
  config.decision_capacity = 4;
  config.checkpoint_every = 2;
  config.checkpoint_capacity = 8;
  FlightRecorder rec(config);
  for (int i = 0; i < 10; ++i) {
    rec.RecordDecision(
        MakeDecision(60.0 * (i + 1), "analytics", 50.0 + i, 4.0, 4.0));
  }
  EXPECT_EQ(rec.total_decisions(), 10u);
  std::vector<obs::replay::DecisionEntry> kept = rec.Decisions();
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_EQ(kept.front().index, 6u);  // Oldest retained.
  EXPECT_EQ(kept.back().index, 9u);
  EXPECT_DOUBLE_EQ(rec.window_start(), 60.0 * 7);
  // Every 2nd decision checkpointed: indexes 1, 3, 5, 7, 9.
  std::vector<obs::replay::HashCheckpoint> cps = rec.Checkpoints();
  ASSERT_EQ(cps.size(), 5u);
  EXPECT_EQ(cps.front().index, 1u);
  EXPECT_EQ(cps.back().index, 9u);
  EXPECT_EQ(cps.back().chain, kept.back().chain);
}

TEST(FlightRecorderTest, TriggerLatchesFirstAlert) {
  FlightRecorder rec;
  EXPECT_FALSE(rec.trigger().fired);
  rec.Trigger(900.0, "analytics/utilization", 15.0, 14.5);
  rec.Trigger(1800.0, "storage/utilization", 99.0, 99.0);
  EXPECT_TRUE(rec.trigger().fired);
  EXPECT_DOUBLE_EQ(rec.trigger().time, 900.0);
  EXPECT_EQ(rec.trigger().reason, "analytics/utilization");
  EXPECT_DOUBLE_EQ(rec.trigger().burn_fast, 15.0);
}

TEST(FlightRecorderTest, FingerprintCoversIdentitySpecAndFaults) {
  FlightRecorder a;
  a.SetIdentity("t0", 0, 42, 0);
  a.SetSpec({{"tenant.seed", "42"}});
  uint64_t base = a.Fingerprint();

  FlightRecorder b;
  b.SetIdentity("t0", 0, 42, 0);
  b.SetSpec({{"tenant.seed", "42"}});
  EXPECT_EQ(b.Fingerprint(), base);

  b.SetIdentity("t0", 0, 43, 0);  // Seed change.
  EXPECT_NE(b.Fingerprint(), base);
  b.SetIdentity("t0", 0, 42, 0);
  EXPECT_EQ(b.Fingerprint(), base);

  RecordedFault fault;
  fault.kind = "sensor-spike";
  fault.target = "analytics";
  b.AddFault(fault);  // Fault schedule change.
  EXPECT_NE(b.Fingerprint(), base);
  b.ClearFaults();
  EXPECT_EQ(b.Fingerprint(), base);
}

// --- Bundle JSON round-trip. ---------------------------------------

TEST(BundleTest, JsonRoundTripPreservesEveryField) {
  RecorderConfig config;
  config.decision_capacity = 8;
  FlightRecorder rec(config);
  rec.SetIdentity("tenant-7", 7, 0xDEADBEEFCAFEF00Dull,
                  7 * obs::SpanCollector::kIdStride);
  rec.SetSpec({{"tenant.id", "tenant-7"}, {"tenant.seed", "16045690985373815821"}});
  RecordedFault fault;
  fault.kind = "sensor-spike";
  fault.target = "analytics";
  fault.start = 300.0;
  fault.end = std::numeric_limits<double>::infinity();
  fault.offset = 200.0;
  rec.AddFault(fault);
  for (int i = 0; i < 12; ++i) {
    rec.RecordDecision(
        MakeDecision(60.0 * (i + 1), "analytics", 50.0 + 0.125 * i,
                     1.0 / 3.0 + i, 4.0));
  }
  rec.RecordGrant(0.0, 1.25, 0.75);
  rec.RecordGrant(600.0, 2.5, 1.5);
  const double shares[3] = {8.0, 4.0, 120.0};
  rec.RecordReplan(601.0, 1.5, shares, 3, true);
  rec.Trigger(720.0, "analytics/utilization", 20.0, 14.44);

  CaptureBundle bundle = obs::replay::BundleFromRecorder(rec);
  std::string path = TempPath("roundtrip_bundle.json");
  ASSERT_TRUE(obs::replay::WriteBundleJson(bundle, path).ok());
  auto loaded = obs::replay::LoadBundleJson(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ(loaded->schema_version, obs::replay::kBundleSchemaVersion);
  EXPECT_EQ(loaded->tenant_id, "tenant-7");
  EXPECT_EQ(loaded->tenant_index, 7u);
  EXPECT_EQ(loaded->seed, 0xDEADBEEFCAFEF00Dull);  // > 2^53: exact u64.
  EXPECT_EQ(loaded->span_id_offset, 7 * obs::SpanCollector::kIdStride);
  EXPECT_EQ(loaded->fingerprint, bundle.fingerprint);
  EXPECT_EQ(loaded->chain_hash, bundle.chain_hash);
  EXPECT_EQ(loaded->total_decisions, 12u);
  EXPECT_EQ(loaded->spec, bundle.spec);

  ASSERT_EQ(loaded->faults.size(), 1u);
  EXPECT_EQ(loaded->faults[0].kind, "sensor-spike");
  EXPECT_TRUE(std::isinf(loaded->faults[0].end));  // Non-finite survives.
  EXPECT_DOUBLE_EQ(loaded->faults[0].offset, 200.0);

  EXPECT_TRUE(loaded->trigger.fired);
  EXPECT_DOUBLE_EQ(loaded->trigger.time, 720.0);
  EXPECT_EQ(loaded->trigger.reason, "analytics/utilization");

  ASSERT_EQ(loaded->grants.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded->grants[1].grant_usd, 1.5);
  ASSERT_EQ(loaded->replans.size(), 1u);
  EXPECT_EQ(loaded->replans[0].num_shares, 3);
  EXPECT_DOUBLE_EQ(loaded->replans[0].shares[2], 120.0);

  ASSERT_EQ(loaded->decisions.size(), bundle.decisions.size());
  for (size_t i = 0; i < bundle.decisions.size(); ++i) {
    EXPECT_EQ(loaded->decisions[i].index, bundle.decisions[i].index);
    EXPECT_EQ(loaded->decisions[i].chain, bundle.decisions[i].chain);
    EXPECT_EQ(loaded->decisions[i].line_hash, bundle.decisions[i].line_hash);
    // %.17g doubles round-trip bit-exactly.
    EXPECT_DOUBLE_EQ(loaded->decisions[i].sensed_y,
                     bundle.decisions[i].sensed_y);
    EXPECT_DOUBLE_EQ(loaded->decisions[i].raw_u, bundle.decisions[i].raw_u);
    EXPECT_STREQ(loaded->decisions[i].loop, bundle.decisions[i].loop);
  }
  EXPECT_EQ(loaded->checkpoints.size(), bundle.checkpoints.size());
  EXPECT_EQ(obs::replay::BundleFingerprint(*loaded), loaded->fingerprint);
}

// --- Partition spec round-trip. ------------------------------------

TEST(PartitionSpecTest, SerializeParseRoundTrip) {
  fleet::TenantConfig tenant = fleet::MakeTenantFleet(3, 77)[2];
  fleet::PartitionConfig config;
  config.arbitration_period_sec = 450.0;
  config.flow_solver.population_size = 24;
  config.flow_incremental.stall_generations = 5;
  config.capture.slo_slow_window_sec = 600.0;
  auto spec = fleet::SerializePartitionSpec(tenant, config);

  fleet::TenantConfig tenant2;
  fleet::PartitionConfig config2;
  ASSERT_TRUE(fleet::ParsePartitionSpec(spec, &tenant2, &config2).ok());
  EXPECT_EQ(tenant2.id, tenant.id);
  EXPECT_EQ(tenant2.seed, tenant.seed);
  EXPECT_EQ(tenant2.pattern, tenant.pattern);
  EXPECT_DOUBLE_EQ(tenant2.base_rate_per_sec, tenant.base_rate_per_sec);
  EXPECT_DOUBLE_EQ(config2.arbitration_period_sec, 450.0);
  EXPECT_EQ(config2.flow_solver.population_size, 24u);
  EXPECT_EQ(config2.flow_incremental.stall_generations, 5u);
  EXPECT_DOUBLE_EQ(config2.capture.slo_slow_window_sec, 600.0);
  // Round-trip is a fixed point.
  EXPECT_EQ(fleet::SerializePartitionSpec(tenant2, config2), spec);
}

// --- Capture -> replay end to end. ---------------------------------

// One small fleet with a deterministic sensor-spike fault on tenant 0;
// capture armed with burn-rate health triggers. Returns the manager
// after running long enough for the alert edge to latch the trigger.
std::unique_ptr<fleet::FleetManager> RunCapturedFleet(size_t num_threads) {
  fleet::FleetConfig config;
  config.num_threads = num_threads;
  config.partition.capture.enabled = true;
  config.partition.capture.health_trigger = true;
  auto manager = std::make_unique<fleet::FleetManager>(config);
  std::vector<fleet::TenantConfig> tenants = fleet::MakeTenantFleet(2, 99);
  fleet::TenantFault fault;
  fault.kind = "sensor-spike";
  fault.target = "analytics";
  fault.start = 300.0;
  fault.offset = 200.0;  // Sensed y pinned far above any threshold.
  tenants[0].faults.push_back(fault);
  for (fleet::TenantConfig& t : tenants) {
    EXPECT_TRUE(manager->AddTenant(std::move(t)).ok());
  }
  EXPECT_TRUE(manager->Start().ok());
  EXPECT_TRUE(manager->RunFor(1800.0).ok());
  return manager;
}

TEST(ReplayTest, AlertTriggeredCaptureReplaysIdenticallyAtAnyThreadCount) {
  std::unique_ptr<fleet::FleetManager> manager = RunCapturedFleet(2);
  const FlightRecorder* rec = manager->partition(0)->recorder();
  ASSERT_NE(rec, nullptr);
  ASSERT_TRUE(rec->trigger().fired) << "burn-rate alert never fired";
  EXPECT_EQ(rec->trigger().reason, "analytics/utilization");
  ASSERT_GT(rec->total_decisions(), 0u);

  // Dump through the real file path: replay consumes what ops would.
  std::string path = TempPath("captured_bundle.json");
  ASSERT_TRUE(manager->DumpBundle(0, path).ok());
  auto bundle = obs::replay::LoadBundleJson(path);
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  EXPECT_EQ(bundle->tenant_index, 0u);

  std::string digests[3];
  size_t thread_counts[3] = {1, 4, 16};
  for (int i = 0; i < 3; ++i) {
    fleet::ReplayOptions opts;
    opts.flow_solver_threads = thread_counts[i];
    auto harness = fleet::ReplayHarness::Create(*bundle, opts);
    ASSERT_TRUE(harness.ok()) << harness.status();
    ASSERT_TRUE((*harness)->Run().ok());
    obs::replay::DivergenceReport report = (*harness)->Check();
    EXPECT_FALSE(report.diverged) << report.ToString();
    EXPECT_TRUE(report.fingerprint_match);
    EXPECT_TRUE(report.chain_match);
    EXPECT_GE(report.replayed_total, report.recorded_total);
    (*harness)->partition().AppendDigest(&digests[i]);
    // Replay-rich telemetry is on even though the fleet run had it off.
    EXPECT_TRUE(
        (*harness)->partition().telemetry().spans().enabled());
    EXPECT_NE((*harness)->partition().health(), nullptr);
  }
  EXPECT_FALSE(digests[0].empty());
  EXPECT_EQ(digests[0], digests[1]);  // Byte-identical at 1 vs 4 threads.
  EXPECT_EQ(digests[0], digests[2]);  // ... and at 16.
}

TEST(ReplayTest, CaptureIsIdenticalAcrossFleetThreadCounts) {
  std::unique_ptr<fleet::FleetManager> one = RunCapturedFleet(1);
  std::unique_ptr<fleet::FleetManager> four = RunCapturedFleet(4);
  auto a = one->partition(0)->MakeBundle();
  auto b = four->partition(0)->MakeBundle();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->fingerprint, b->fingerprint);
  EXPECT_EQ(a->chain_hash, b->chain_hash);
  EXPECT_EQ(a->total_decisions, b->total_decisions);
  EXPECT_DOUBLE_EQ(a->trigger.time, b->trigger.time);
}

TEST(ReplayTest, CorruptedSeedIsCaughtAtTheFirstDecision) {
  std::unique_ptr<fleet::FleetManager> manager = RunCapturedFleet(1);
  auto bundle = manager->partition(0)->MakeBundle();
  ASSERT_TRUE(bundle.ok());
  ASSERT_FALSE(bundle->decisions.empty());

  CaptureBundle corrupted = *bundle;
  corrupted.seed += 1;  // The recorded inputs no longer match the hash.
  EXPECT_NE(obs::replay::BundleFingerprint(corrupted),
            corrupted.fingerprint);

  auto harness = fleet::ReplayHarness::Create(corrupted, {});
  ASSERT_TRUE(harness.ok()) << harness.status();
  ASSERT_TRUE((*harness)->Run().ok());
  obs::replay::DivergenceReport report = (*harness)->Check();
  EXPECT_TRUE(report.diverged);
  EXPECT_FALSE(report.fingerprint_match);
  EXPECT_FALSE(report.chain_match);
  ASSERT_TRUE(report.has_first_mismatch);
  // A wrong seed perturbs the workload from t=0: the very first
  // retained decision must be the reported mismatch, at its recorded
  // timestamp.
  EXPECT_EQ(report.first_mismatch_index, bundle->decisions.front().index);
  EXPECT_DOUBLE_EQ(report.first_mismatch_time,
                   bundle->decisions.front().time);
}

TEST(ReplayTest, ExplicitDumpWithoutAlertIsReplayable) {
  fleet::FleetConfig config;
  config.partition.capture.enabled = true;  // No health trigger.
  fleet::FleetManager manager(config);
  for (fleet::TenantConfig& t : fleet::MakeTenantFleet(2, 7)) {
    ASSERT_TRUE(manager.AddTenant(std::move(t)).ok());
  }
  ASSERT_TRUE(manager.Start().ok());
  ASSERT_TRUE(manager.RunFor(1200.0).ok());
  std::string path = TempPath("explicit_bundle.json");
  ASSERT_TRUE(manager.DumpBundle(1, path).ok());
  auto bundle = obs::replay::LoadBundleJson(path);
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  EXPECT_TRUE(bundle->trigger.fired);
  EXPECT_EQ(bundle->trigger.reason, "explicit");
  EXPECT_EQ(bundle->tenant_index, 1u);

  auto harness = fleet::ReplayHarness::Create(*bundle, {});
  ASSERT_TRUE(harness.ok()) << harness.status();
  ASSERT_TRUE((*harness)->Run().ok());
  obs::replay::DivergenceReport report = (*harness)->Check();
  EXPECT_FALSE(report.diverged) << report.ToString();
}

// A fleet whose tenants arbitrate on different horizons (450 s vs the
// fleet-wide 900 s): the work-stealing sweep interleaves their boundary
// events, and the captured bundle must still replay bit-for-bit.
std::unique_ptr<fleet::FleetManager> RunHeterogeneousCapturedFleet(
    size_t num_threads) {
  fleet::FleetConfig config;
  config.num_threads = num_threads;
  config.partition.capture.enabled = true;
  config.partition.capture.health_trigger = true;
  auto manager = std::make_unique<fleet::FleetManager>(config);
  std::vector<fleet::TenantConfig> tenants = fleet::MakeTenantFleet(2, 99);
  tenants[0].arbitration_period_sec = 450.0;  // Faster than the fleet.
  fleet::TenantFault fault;
  fault.kind = "sensor-spike";
  fault.target = "analytics";
  fault.start = 300.0;
  fault.offset = 200.0;
  tenants[0].faults.push_back(fault);
  for (fleet::TenantConfig& t : tenants) {
    EXPECT_TRUE(manager->AddTenant(std::move(t)).ok());
  }
  EXPECT_TRUE(manager->Start().ok());
  EXPECT_TRUE(manager->RunFor(1800.0).ok());
  return manager;
}

TEST(ReplayTest, HeterogeneousHorizonCaptureReplaysWithoutDivergence) {
  std::unique_ptr<fleet::FleetManager> one = RunHeterogeneousCapturedFleet(1);
  std::unique_ptr<fleet::FleetManager> four = RunHeterogeneousCapturedFleet(4);
  // The capture itself is thread-count-invariant even when boundary
  // events interleave across tenants.
  auto a = one->partition(0)->MakeBundle();
  auto b = four->partition(0)->MakeBundle();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->fingerprint, b->fingerprint);
  EXPECT_EQ(a->chain_hash, b->chain_hash);

  const FlightRecorder* rec = four->partition(0)->recorder();
  ASSERT_NE(rec, nullptr);
  ASSERT_TRUE(rec->trigger().fired) << "burn-rate alert never fired";

  // The faster tenant recorded a grant at its own 450 s boundary — a
  // time the lock-step sweep could never arbitrate at.
  std::string path = TempPath("hetero_bundle.json");
  ASSERT_TRUE(four->DumpBundle(0, path).ok());
  auto bundle = obs::replay::LoadBundleJson(path);
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  bool has_midperiod_grant = false;
  for (const auto& g : bundle->grants) {
    if (g.time == 450.0 || g.time == 1350.0) has_midperiod_grant = true;
  }
  EXPECT_TRUE(has_midperiod_grant);
  bool spec_has_period = false;
  for (const auto& [key, value] : bundle->spec) {
    if (key == "tenant.arbitration_period_sec" && value == "450") {
      spec_has_period = true;
    }
  }
  EXPECT_TRUE(spec_has_period);

  fleet::ReplayOptions opts;
  opts.flow_solver_threads = 4;
  auto harness = fleet::ReplayHarness::Create(*bundle, opts);
  ASSERT_TRUE(harness.ok()) << harness.status();
  ASSERT_TRUE((*harness)->Run().ok());
  obs::replay::DivergenceReport report = (*harness)->Check();
  EXPECT_FALSE(report.diverged) << report.ToString();
  EXPECT_TRUE(report.fingerprint_match);
  EXPECT_TRUE(report.chain_match);
}

// --- Satellite: span-id namespace exhaustion guard. ----------------

TEST(SpanOverflowTest, ExhaustedCollectorStopsAllocatingIds) {
  obs::SpanCollector spans(/*capacity=*/16);
  spans.set_enabled(true);
  ASSERT_TRUE(spans.set_id_offset(0).ok());
  obs::SpanId first = spans.Begin(obs::SpanKind::kSense, "s", 0.0, 1, 0);
  EXPECT_EQ(first, 1u);
  // Burn the namespace down to its last id, then take it.
  spans.AdvanceIdsForTest(obs::SpanCollector::kIdStride - 2);
  obs::SpanId last = spans.Begin(obs::SpanKind::kSense, "s", 1.0, 1, 0);
  EXPECT_EQ(last, obs::SpanCollector::kIdStride);
  EXPECT_EQ(spans.id_overflows(), 0u);
  EXPECT_EQ(spans.total_started(), obs::SpanCollector::kIdStride);

  // The namespace is exhausted: every further Begin drops the span,
  // counts the overflow, and never bleeds into the next sibling's
  // (offset + kIdStride, ...] namespace.
  obs::SpanId overflowed = spans.Begin(obs::SpanKind::kSense, "s", 2.0, 1, 0);
  EXPECT_EQ(overflowed, 0u);
  EXPECT_EQ(spans.id_overflows(), 1u);
  obs::SpanId again = spans.Begin(obs::SpanKind::kDecide, "d", 3.0, 1, 0);
  EXPECT_EQ(again, 0u);
  EXPECT_EQ(spans.id_overflows(), 2u);
  // total_started stays clamped at the stride; end_id stays in range.
  EXPECT_EQ(spans.total_started(), obs::SpanCollector::kIdStride);
  EXPECT_LE(spans.end_id(), obs::SpanCollector::kIdStride + 1);
}

// --- Satellite: fleet period report JSONL export. ------------------

TEST(FleetReportExportTest, JsonlHasOneRowPerTenantPeriod) {
  fleet::FleetConfig config;
  fleet::FleetManager manager(config);
  for (fleet::TenantConfig& t : fleet::MakeTenantFleet(3, 5)) {
    ASSERT_TRUE(manager.AddTenant(std::move(t)).ok());
  }
  ASSERT_TRUE(manager.Start().ok());
  ASSERT_TRUE(manager.RunFor(2700.0).ok());  // 3 periods.
  std::string path = TempPath("fleet_report.jsonl");
  ASSERT_TRUE(manager.ExportReportsJsonl(path).ok());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  size_t rows = 0;
  while (std::getline(in, line)) {
    EXPECT_NE(line.find("\"tenant\":"), std::string::npos);
    EXPECT_NE(line.find("\"demand_usd\":"), std::string::npos);
    EXPECT_NE(line.find("\"grant_usd\":"), std::string::npos);
    EXPECT_NE(line.find("\"spend_usd\":"), std::string::npos);
    EXPECT_NE(line.find("\"steps\":"), std::string::npos);
    EXPECT_NE(line.find("\"conservation_ok\":true"), std::string::npos);
    ++rows;
  }
  EXPECT_EQ(rows, 3u * 3u);  // periods x tenants.
}

}  // namespace
}  // namespace flower
