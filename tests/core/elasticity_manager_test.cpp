#include "core/elasticity_manager.h"

#include <gtest/gtest.h>

#include "control/adaptive_gain.h"

namespace flower::core {
namespace {

const cloudwatch::MetricId kCpu{"Flower/Storm", "CpuUtilization", "c"};

std::unique_ptr<control::Controller> TestController(double reference = 60.0) {
  control::AdaptiveGainConfig cfg;
  cfg.reference = reference;
  cfg.initial_gain = 0.05;
  cfg.gain_min = 0.01;
  cfg.gain_max = 0.5;
  cfg.gamma = 0.01;
  cfg.limits.min = 1.0;
  cfg.limits.max = 100.0;
  return std::make_unique<control::AdaptiveGainController>(cfg);
}

LayerControlConfig TestConfig(std::function<Status(double)> actuator,
                              double initial_u = 5.0) {
  LayerControlConfig cfg;
  cfg.layer = Layer::kAnalytics;
  cfg.sensor_metric = kCpu;
  cfg.monitoring_period_sec = 60.0;
  cfg.monitoring_window_sec = 120.0;
  cfg.start_delay_sec = 60.0;
  cfg.controller = TestController();
  cfg.actuator = std::move(actuator);
  cfg.initial_u = initial_u;
  return cfg;
}

TEST(ElasticityManagerTest, AttachValidation) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  ElasticityManager mgr(&sim, &metrics);
  {
    LayerControlConfig cfg = TestConfig([](double) { return Status::OK(); });
    cfg.controller = nullptr;
    EXPECT_FALSE(mgr.Attach(std::move(cfg)).ok());
  }
  {
    LayerControlConfig cfg = TestConfig(nullptr);
    EXPECT_FALSE(mgr.Attach(std::move(cfg)).ok());
  }
  {
    LayerControlConfig cfg = TestConfig([](double) { return Status::OK(); });
    cfg.monitoring_period_sec = 0.0;
    EXPECT_FALSE(mgr.Attach(std::move(cfg)).ok());
  }
  ASSERT_TRUE(
      mgr.Attach(TestConfig([](double) { return Status::OK(); })).ok());
  EXPECT_TRUE(mgr.IsAttached(Layer::kAnalytics));
  EXPECT_EQ(
      mgr.Attach(TestConfig([](double) { return Status::OK(); })).code(),
      StatusCode::kAlreadyExists);
}

TEST(ElasticityManagerTest, ControlLoopSensesAndActuates) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  ElasticityManager mgr(&sim, &metrics);
  std::vector<double> actuations;
  ASSERT_TRUE(mgr.Attach(TestConfig([&](double u) {
    actuations.push_back(u);
    return Status::OK();
  })).ok());
  // Publish a constant overloaded CPU metric every 30 s.
  ASSERT_TRUE(sim.SchedulePeriodic(30.0, 30.0, [&] {
    EXPECT_TRUE(metrics.Put(kCpu, sim.Now(), 90.0).ok());
    return true;
  }).ok());
  sim.RunUntil(600.0);
  ASSERT_FALSE(actuations.empty());
  // Persistent +30 error with growing gain must raise the resource.
  EXPECT_GT(actuations.back(), 5.0);
  auto state = mgr.GetState(Layer::kAnalytics);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ((*state)->sensed.size(), actuations.size());
  EXPECT_EQ((*state)->sensor_misses(), 0u);
}

TEST(ElasticityManagerTest, MissingMetricCountsAsSensorMiss) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  ElasticityManager mgr(&sim, &metrics);
  ASSERT_TRUE(
      mgr.Attach(TestConfig([](double) { return Status::OK(); })).ok());
  sim.RunUntil(300.0);  // No data ever published.
  auto state = mgr.GetState(Layer::kAnalytics);
  ASSERT_TRUE(state.ok());
  EXPECT_GE((*state)->sensor_misses(), 4u);
  EXPECT_TRUE((*state)->sensed.empty());
}

TEST(ElasticityManagerTest, ShareUpperBoundCapsActuation) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  ElasticityManager mgr(&sim, &metrics);
  std::vector<double> actuations;
  ASSERT_TRUE(mgr.Attach(TestConfig([&](double u) {
    actuations.push_back(u);
    return Status::OK();
  })).ok());
  ASSERT_TRUE(mgr.SetShareUpperBound(Layer::kAnalytics, 8.0).ok());
  ASSERT_TRUE(sim.SchedulePeriodic(30.0, 30.0, [&] {
    EXPECT_TRUE(metrics.Put(kCpu, sim.Now(), 100.0).ok());
    return true;
  }).ok());
  sim.RunUntil(3600.0);
  for (double u : actuations) EXPECT_LE(u, 8.0);
  EXPECT_DOUBLE_EQ(actuations.back(), 8.0);
}

TEST(ElasticityManagerTest, ShareUpperBoundValidation) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  ElasticityManager mgr(&sim, &metrics);
  EXPECT_EQ(mgr.SetShareUpperBound(Layer::kStorage, 5.0).code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(
      mgr.Attach(TestConfig([](double) { return Status::OK(); })).ok());
  EXPECT_FALSE(mgr.SetShareUpperBound(Layer::kAnalytics, -1.0).ok());
  EXPECT_TRUE(mgr.SetShareUpperBound(Layer::kAnalytics, 0.0).ok());
}

TEST(ElasticityManagerTest, ActuatorFailureCountedAndLoopContinues) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  ElasticityManager mgr(&sim, &metrics);
  int calls = 0;
  ASSERT_TRUE(mgr.Attach(TestConfig([&](double) {
    ++calls;
    return calls <= 2 ? Status::Internal("boom") : Status::OK();
  })).ok());
  ASSERT_TRUE(sim.SchedulePeriodic(30.0, 30.0, [&] {
    EXPECT_TRUE(metrics.Put(kCpu, sim.Now(), 90.0).ok());
    return true;
  }).ok());
  sim.RunUntil(600.0);
  auto state = mgr.GetState(Layer::kAnalytics);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ((*state)->actuation_failures(), 2u);
  EXPECT_GT(calls, 2);
}

TEST(ElasticityManagerTest, PauseStopsActuation) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  ElasticityManager mgr(&sim, &metrics);
  int calls = 0;
  ASSERT_TRUE(mgr.Attach(TestConfig([&](double) {
    ++calls;
    return Status::OK();
  })).ok());
  ASSERT_TRUE(sim.SchedulePeriodic(30.0, 30.0, [&] {
    EXPECT_TRUE(metrics.Put(kCpu, sim.Now(), 90.0).ok());
    return true;
  }).ok());
  sim.RunUntil(300.0);
  int calls_at_pause = calls;
  EXPECT_GT(calls_at_pause, 0);
  ASSERT_TRUE(mgr.SetPaused(Layer::kAnalytics, true).ok());
  sim.RunUntil(600.0);
  EXPECT_EQ(calls, calls_at_pause);
  ASSERT_TRUE(mgr.SetPaused(Layer::kAnalytics, false).ok());
  sim.RunUntil(900.0);
  EXPECT_GT(calls, calls_at_pause);
  EXPECT_FALSE(mgr.SetPaused(Layer::kIngestion, true).ok());
}

TEST(ElasticityManagerTest, NamedLoopsAllowSeveralPerLayer) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  ElasticityManager mgr(&sim, &metrics);
  int calls_a = 0, calls_b = 0;
  {
    LayerControlConfig cfg = TestConfig([&](double) {
      ++calls_a;
      return Status::OK();
    });
    cfg.layer = Layer::kIngestion;
    cfg.name = "ingestion-impressions";
    ASSERT_TRUE(mgr.Attach(std::move(cfg)).ok());
  }
  {
    LayerControlConfig cfg = TestConfig([&](double) {
      ++calls_b;
      return Status::OK();
    });
    cfg.layer = Layer::kIngestion;
    cfg.name = "ingestion-clicks";
    ASSERT_TRUE(mgr.Attach(std::move(cfg)).ok());
  }
  EXPECT_TRUE(mgr.IsAttached("ingestion-impressions"));
  EXPECT_TRUE(mgr.IsAttached("ingestion-clicks"));
  EXPECT_FALSE(mgr.IsAttached(Layer::kIngestion));  // Default name unused.
  ASSERT_TRUE(sim.SchedulePeriodic(30.0, 30.0, [&] {
    EXPECT_TRUE(metrics.Put(kCpu, sim.Now(), 90.0).ok());
    return true;
  }).ok());
  sim.RunUntil(600.0);
  EXPECT_GT(calls_a, 0);
  EXPECT_GT(calls_b, 0);
  auto names = mgr.LoopNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "ingestion-clicks");
  EXPECT_EQ(names[1], "ingestion-impressions");
  // Per-loop bounds and pause work independently.
  ASSERT_TRUE(mgr.SetShareUpperBound("ingestion-clicks", 3.0).ok());
  ASSERT_TRUE(mgr.SetPaused("ingestion-impressions", true).ok());
  EXPECT_FALSE(mgr.SetPaused("nope", true).ok());
}

TEST(ElasticityManagerTest, DuplicateLoopNameRejected) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  ElasticityManager mgr(&sim, &metrics);
  LayerControlConfig a = TestConfig([](double) { return Status::OK(); });
  a.name = "x";
  ASSERT_TRUE(mgr.Attach(std::move(a)).ok());
  LayerControlConfig b = TestConfig([](double) { return Status::OK(); });
  b.name = "x";
  EXPECT_EQ(mgr.Attach(std::move(b)).code(), StatusCode::kAlreadyExists);
}

TEST(ElasticityManagerTest, GetControllerExposesAttachedController) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  ElasticityManager mgr(&sim, &metrics);
  EXPECT_FALSE(mgr.GetController(Layer::kAnalytics).ok());
  ASSERT_TRUE(
      mgr.Attach(TestConfig([](double) { return Status::OK(); })).ok());
  auto controller = mgr.GetController(Layer::kAnalytics);
  ASSERT_TRUE(controller.ok());
  EXPECT_EQ((*controller)->name(), "adaptive-gain");
}

ReplanConfig TestReplanConfig() {
  ReplanConfig cfg;
  cfg.request.hourly_budget_usd = 2.0;
  cfg.request.unit_price[0] = 0.015;
  cfg.request.unit_price[1] = 0.10;
  cfg.request.unit_price[2] = 0.00065;
  cfg.request.bounds[0] = {1.0, 40.0};
  cfg.request.bounds[1] = {1.0, 20.0};
  cfg.request.bounds[2] = {1.0, 400.0};
  cfg.solver.population_size = 40;
  cfg.solver.generations = 30;
  cfg.period_sec = 3600.0;
  cfg.start_delay_sec = 60.0;
  return cfg;
}

TEST(ElasticityManagerTest, ReplanningValidation) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  ElasticityManager mgr(&sim, &metrics);
  EXPECT_EQ(mgr.ReplanCounters().status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(mgr.replanning_enabled());
  {
    ReplanConfig cfg = TestReplanConfig();
    cfg.period_sec = 0.0;
    EXPECT_EQ(mgr.EnableReplanning(std::move(cfg)).code(),
              StatusCode::kInvalidArgument);
  }
  {
    ReplanConfig cfg = TestReplanConfig();
    cfg.start_delay_sec = -1.0;
    EXPECT_FALSE(mgr.EnableReplanning(std::move(cfg)).ok());
  }
  ASSERT_TRUE(mgr.EnableReplanning(TestReplanConfig()).ok());
  EXPECT_TRUE(mgr.replanning_enabled());
  EXPECT_EQ(mgr.EnableReplanning(TestReplanConfig()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ElasticityManagerTest, PeriodicReplanUpdatesShareBounds) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  ElasticityManager mgr(&sim, &metrics);
  ASSERT_TRUE(
      mgr.Attach(TestConfig([](double) { return Status::OK(); })).ok());
  std::vector<SimTime> plan_times;
  ReplanConfig cfg = TestReplanConfig();
  cfg.on_plan = [&](SimTime t, const ResourceShareResult& res) {
    plan_times.push_back(t);
    EXPECT_FALSE(res.pareto_plans.empty());
  };
  ASSERT_TRUE(mgr.EnableReplanning(std::move(cfg)).ok());
  sim.RunUntil(2.5 * 3600.0);  // Covers the replans at 60 s, 1 h, 2 h.
  ASSERT_EQ(plan_times.size(), 3u);
  // The analytics loop's cap now follows the front's max share.
  auto state = mgr.GetState(Layer::kAnalytics);
  ASSERT_TRUE(state.ok());
  EXPECT_GT((*state)->share_upper_bound, 0.0);
  auto counters = mgr.ReplanCounters();
  ASSERT_TRUE(counters.ok());
  EXPECT_GT(counters->evaluations, 0u);
}

TEST(ElasticityManagerTest, ReplanWithCacheServesRepeatsFromCache) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  ElasticityManager mgr(&sim, &metrics);
  ASSERT_TRUE(
      mgr.Attach(TestConfig([](double) { return Status::OK(); })).ok());
  size_t cached_plans = 0;
  ReplanConfig cfg = TestReplanConfig();
  cfg.incremental.cache = true;
  cfg.on_plan = [&](SimTime, const ResourceShareResult& res) {
    if (res.cache_hit) ++cached_plans;
  };
  ASSERT_TRUE(mgr.EnableReplanning(std::move(cfg)).ok());
  sim.RunUntil(3.5 * 3600.0);  // Four periods with an unchanged request.
  auto counters = mgr.ReplanCounters();
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->cache_misses, 1u);
  EXPECT_EQ(counters->cache_hits, 3u);
  EXPECT_EQ(cached_plans, 3u);
  // The cap is applied from cached results too.
  auto state = mgr.GetState(Layer::kAnalytics);
  ASSERT_TRUE(state.ok());
  EXPECT_GT((*state)->share_upper_bound, 0.0);
}

TEST(ElasticityManagerTest, ReplanRequestDriftForcesFreshSolves) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  ElasticityManager mgr(&sim, &metrics);
  ReplanConfig cfg = TestReplanConfig();
  cfg.incremental.cache = true;
  cfg.incremental.warm_start = true;
  // The budget drifts every period, so every period misses the cache
  // but warm-starts from the previous front's population.
  cfg.update_request = [](SimTime now, ResourceShareRequest* req) {
    req->hourly_budget_usd = 2.0 + now / 3600.0 * 0.1;
  };
  ASSERT_TRUE(mgr.EnableReplanning(std::move(cfg)).ok());
  sim.RunUntil(2.5 * 3600.0);
  auto counters = mgr.ReplanCounters();
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->cache_hits, 0u);
  EXPECT_EQ(counters->cache_misses, 3u);
  EXPECT_EQ(counters->warm_starts, 2u);  // All but the first solve.
}

}  // namespace
}  // namespace flower::core
