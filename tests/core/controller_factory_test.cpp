#include "core/controller_factory.h"

#include <gtest/gtest.h>

namespace flower::core {
namespace {

control::ActuatorLimits Limits() {
  control::ActuatorLimits l;
  l.min = 1.0;
  l.max = 50.0;
  return l;
}

TEST(ControllerFactoryTest, BuildsEveryKind) {
  for (ControllerKind kind :
       {ControllerKind::kAdaptiveGain, ControllerKind::kAdaptiveGainNoMemory,
        ControllerKind::kFixedGain, ControllerKind::kQuasiAdaptive,
        ControllerKind::kRuleBased, ControllerKind::kTargetTracking,
        ControllerKind::kFeedforward}) {
    auto c = MakeController(kind, 60.0, Limits());
    ASSERT_TRUE(c.ok()) << ControllerKindToString(kind);
    EXPECT_NE((*c).get(), nullptr);
  }
}

TEST(ControllerFactoryTest, NamesMatchKinds) {
  auto adaptive = MakeController(ControllerKind::kAdaptiveGain, 60.0, Limits());
  EXPECT_EQ((*adaptive)->name(), "adaptive-gain");
  auto fixed = MakeController(ControllerKind::kFixedGain, 60.0, Limits());
  EXPECT_EQ((*fixed)->name(), "fixed-gain");
  auto quasi = MakeController(ControllerKind::kQuasiAdaptive, 60.0, Limits());
  EXPECT_EQ((*quasi)->name(), "quasi-adaptive");
  auto rules = MakeController(ControllerKind::kRuleBased, 60.0, Limits());
  EXPECT_EQ((*rules)->name(), "rule-based");
  auto tt = MakeController(ControllerKind::kTargetTracking, 60.0, Limits());
  EXPECT_EQ((*tt)->name(), "target-tracking");
  auto ff = MakeController(ControllerKind::kFeedforward, 60.0, Limits());
  EXPECT_EQ((*ff)->name(), "feedforward");
}

TEST(ControllerFactoryTest, FeedforwardFactoryWiresDriver) {
  auto ff = MakeFeedforwardController(
      60.0, Limits(), [](SimTime) -> Result<double> { return 1234.0; });
  ASSERT_TRUE(ff.ok());
  EXPECT_EQ((*ff)->name(), "feedforward");
  EXPECT_FALSE(
      MakeFeedforwardController(0.0, Limits(), nullptr).ok());
  EXPECT_FALSE(
      MakeFeedforwardController(60.0, Limits(), nullptr, -1.0).ok());
}

TEST(ControllerFactoryTest, ValidatesArguments) {
  EXPECT_FALSE(MakeController(ControllerKind::kAdaptiveGain, 0.0, Limits()).ok());
  EXPECT_FALSE(
      MakeController(ControllerKind::kAdaptiveGain, 100.0, Limits()).ok());
  EXPECT_FALSE(
      MakeController(ControllerKind::kAdaptiveGain, 60.0, Limits(), 0.0).ok());
  control::ActuatorLimits inverted;
  inverted.min = 10.0;
  inverted.max = 1.0;
  EXPECT_FALSE(
      MakeController(ControllerKind::kAdaptiveGain, 60.0, inverted).ok());
}

TEST(ControllerFactoryTest, ReferencePropagated) {
  auto c = MakeController(ControllerKind::kAdaptiveGain, 42.0, Limits());
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ((*c)->reference(), 42.0);
}

TEST(ControllerFactoryTest, GainScaleScalesActuationMagnitude) {
  auto small = MakeController(ControllerKind::kAdaptiveGain, 60.0, Limits(),
                              1.0);
  control::ActuatorLimits big_limits;
  big_limits.min = 1.0;
  big_limits.max = 5000.0;
  auto big = MakeController(ControllerKind::kAdaptiveGain, 60.0, big_limits,
                            10.0);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(big.ok());
  (*small)->Reset(10.0);
  (*big)->Reset(10.0);
  double u_small = *(*small)->Update(0.0, 90.0);
  double u_big = *(*big)->Update(0.0, 90.0);
  EXPECT_GT(u_big - 10.0, 5.0 * (u_small - 10.0));
}

TEST(ControllerKindStringsTest, RoundTrip) {
  for (ControllerKind kind :
       {ControllerKind::kAdaptiveGain, ControllerKind::kAdaptiveGainNoMemory,
        ControllerKind::kFixedGain, ControllerKind::kQuasiAdaptive,
        ControllerKind::kRuleBased, ControllerKind::kTargetTracking,
        ControllerKind::kFeedforward}) {
    auto parsed = ControllerKindFromString(ControllerKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ControllerKindFromString("bogus").ok());
}

}  // namespace
}  // namespace flower::core
