#include "core/dependency_analyzer.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace flower::core {
namespace {

const cloudwatch::MetricId kIn{"Flower/Kinesis", "IncomingRecords", "s"};
const cloudwatch::MetricId kCpu{"Flower/Storm", "CpuUtilization", "c"};
const cloudwatch::MetricId kWcu{"Flower/DynamoDB",
                                "ConsumedWriteCapacityUnits", "t"};

LayerMetric Ingest() { return {Layer::kIngestion, kIn}; }
LayerMetric Cpu() { return {Layer::kAnalytics, kCpu}; }
LayerMetric Storage() { return {Layer::kStorage, kWcu}; }

// Seeds the store with a planted linear dependency
// cpu = 4.8 + 0.0002 * records + noise (the paper's Eq. 2 shape).
void PlantEq2(cloudwatch::MetricStore* store, int minutes, double noise_sd,
              uint64_t seed = 11) {
  Rng rng(seed);
  for (int i = 0; i < minutes; ++i) {
    double t = 60.0 * i;
    double records = 10000.0 + 40000.0 * std::fabs(std::sin(i * 0.05));
    double cpu = 4.8 + 0.0002 * records + rng.Normal(0.0, noise_sd);
    ASSERT_TRUE(store->Put(kIn, t, records).ok());
    ASSERT_TRUE(store->Put(kCpu, t, cpu).ok());
  }
}

TEST(DependencyAnalyzerTest, RecoversPlantedEq2) {
  cloudwatch::MetricStore store;
  PlantEq2(&store, 550, 0.3);
  DependencyAnalyzer analyzer;
  auto dep = analyzer.Analyze(store, Ingest(), Cpu(), 0.0, 550 * 60.0);
  ASSERT_TRUE(dep.ok());
  EXPECT_NEAR(dep->fit.slope, 0.0002, 2e-5);
  EXPECT_NEAR(dep->fit.intercept, 4.8, 0.5);
  EXPECT_GT(dep->fit.correlation, 0.9);
  EXPECT_TRUE(dep->significant);
}

TEST(DependencyAnalyzerTest, NoiseOnlyPairIsNotSignificant) {
  cloudwatch::MetricStore store;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    double t = 60.0 * i;
    ASSERT_TRUE(store.Put(kIn, t, rng.Uniform(0, 1000)).ok());
    ASSERT_TRUE(store.Put(kWcu, t, rng.Uniform(0, 100)).ok());
  }
  DependencyAnalyzer analyzer;
  auto dep = analyzer.Analyze(store, Ingest(), Storage(), 0.0, 200 * 60.0);
  ASSERT_TRUE(dep.ok());
  EXPECT_FALSE(dep->significant);
  EXPECT_LT(std::fabs(dep->fit.correlation), 0.3);
}

TEST(DependencyAnalyzerTest, SameLayerPairRejected) {
  cloudwatch::MetricStore store;
  DependencyAnalyzer analyzer;
  LayerMetric a{Layer::kIngestion, kIn};
  LayerMetric b{Layer::kIngestion, kCpu};
  EXPECT_EQ(analyzer.Analyze(store, a, b, 0, 100).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DependencyAnalyzerTest, UnknownMetricIsNotFound) {
  cloudwatch::MetricStore store;
  DependencyAnalyzer analyzer;
  EXPECT_EQ(
      analyzer.Analyze(store, Ingest(), Cpu(), 0, 100).status().code(),
      StatusCode::kNotFound);
}

TEST(DependencyAnalyzerTest, TooFewSamplesRejected) {
  cloudwatch::MetricStore store;
  PlantEq2(&store, 5, 0.1);
  DependencyAnalyzerConfig cfg;
  cfg.min_samples = 10;
  DependencyAnalyzer analyzer(cfg);
  EXPECT_EQ(
      analyzer.Analyze(store, Ingest(), Cpu(), 0.0, 300.0).status().code(),
      StatusCode::kFailedPrecondition);
}

TEST(DependencyAnalyzerTest, MisalignedSeriesAreJoinedOnBuckets) {
  cloudwatch::MetricStore store;
  // Predictor samples at :00, response at :30 within each minute —
  // bucketing at 60 s must still align them.
  for (int i = 0; i < 50; ++i) {
    double records = 1000.0 * i;
    ASSERT_TRUE(store.Put(kIn, 60.0 * i, records).ok());
    ASSERT_TRUE(store.Put(kCpu, 60.0 * i + 30.0, 2.0 + 0.001 * records).ok());
  }
  DependencyAnalyzer analyzer;
  auto dep = analyzer.Analyze(store, Ingest(), Cpu(), 0.0, 3000.0 + 60.0);
  ASSERT_TRUE(dep.ok());
  EXPECT_NEAR(dep->fit.slope, 0.001, 1e-6);
  EXPECT_NEAR(dep->fit.r_squared, 1.0, 1e-9);
}

TEST(DependencyAnalyzerTest, AnalyzeAllSkipsSameLayerAndKeepsCrossLayer) {
  cloudwatch::MetricStore store;
  PlantEq2(&store, 100, 0.3);
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.Put(kWcu, 60.0 * i, rng.Uniform(0, 100)).ok());
  }
  DependencyAnalyzer analyzer;
  auto deps = analyzer.AnalyzeAll(store, {Ingest(), Cpu(), Storage()}, 0.0,
                                  6000.0);
  // 3 metrics in 3 distinct layers → 6 ordered cross-layer pairs.
  EXPECT_EQ(deps.size(), 6u);
  int significant = 0;
  for (const auto& d : deps) {
    EXPECT_NE(d.predictor.layer, d.response.layer);
    if (d.significant) ++significant;
  }
  // records↔cpu both directions; wcu pairs are noise.
  EXPECT_EQ(significant, 2);
}

TEST(DependencyAnalyzerTest, RobustModeSurvivesCorruptedSamples) {
  cloudwatch::MetricStore store;
  Rng rng(21);
  for (int i = 0; i < 300; ++i) {
    double t = 60.0 * i;
    double records = 10000.0 + 40000.0 * std::fabs(std::sin(i * 0.05));
    double cpu = 4.8 + 0.0002 * records + rng.Normal(0.0, 0.3);
    // Every 20th CPU sample is a monitoring glitch (reads as 0 or a
    // wild spike).
    if (i % 20 == 0) cpu = (i % 40 == 0) ? 0.0 : 500.0;
    ASSERT_TRUE(store.Put(kIn, t, records).ok());
    ASSERT_TRUE(store.Put(kCpu, t, cpu).ok());
  }
  DependencyAnalyzerConfig robust_cfg;
  robust_cfg.robust = true;
  DependencyAnalyzer robust(robust_cfg);
  DependencyAnalyzer ols;
  auto r = robust.Analyze(store, Ingest(), Cpu(), 0.0, 300 * 60.0);
  auto o = ols.Analyze(store, Ingest(), Cpu(), 0.0, 300 * 60.0);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(o.ok());
  // Robust recovers the planted slope; OLS is dragged off by glitches.
  EXPECT_NEAR(r->fit.slope, 0.0002, 4e-5);
  EXPECT_TRUE(r->significant);
  EXPECT_GT(std::fabs(o->fit.slope - 0.0002) /
                0.0002,
            std::fabs(r->fit.slope - 0.0002) / 0.0002);
}

TEST(DependencyAnalyzerTest, MultipleRegressionRecoversTwoDrivers) {
  cloudwatch::MetricStore store;
  const cloudwatch::MetricId kBytes{"Flower/Kinesis", "IncomingBytes", "s"};
  Rng rng(13);
  // Plant cpu = 1.0 + 3e-4*records + 2e-6*bytes + noise, with records
  // and bytes varying independently.
  for (int i = 0; i < 300; ++i) {
    double t = 60.0 * i;
    double records = 10000.0 + 30000.0 * std::fabs(std::sin(i * 0.07));
    double bytes = 2e6 + 6e6 * std::fabs(std::cos(i * 0.11));
    double cpu = 1.0 + 3e-4 * records + 2e-6 * bytes + rng.Normal(0, 0.3);
    ASSERT_TRUE(store.Put(kIn, t, records).ok());
    ASSERT_TRUE(store.Put(kBytes, t, bytes).ok());
    ASSERT_TRUE(store.Put(kCpu, t, cpu).ok());
  }
  DependencyAnalyzer analyzer;
  LayerMetric bytes_metric{Layer::kIngestion, kBytes};
  auto dep = analyzer.AnalyzeMultiple(store, {Ingest(), bytes_metric},
                                      Cpu(), 0.0, 300 * 60.0);
  ASSERT_TRUE(dep.ok());
  ASSERT_EQ(dep->fit.coefficients.size(), 3u);
  EXPECT_NEAR(dep->fit.coefficients[1], 3e-4, 3e-5);
  EXPECT_NEAR(dep->fit.coefficients[2], 2e-6, 3e-7);
  EXPECT_TRUE(dep->significant);
  EXPECT_GT(dep->fit.r_squared, 0.9);
}

TEST(DependencyAnalyzerTest, AnalyzeMultipleValidation) {
  cloudwatch::MetricStore store;
  DependencyAnalyzer analyzer;
  // Empty predictors.
  EXPECT_EQ(analyzer.AnalyzeMultiple(store, {}, Cpu(), 0, 100)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Predictor in the response's layer.
  LayerMetric same{Layer::kAnalytics, kIn};
  EXPECT_EQ(analyzer.AnalyzeMultiple(store, {same}, Cpu(), 0, 100)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Unknown metric.
  EXPECT_EQ(analyzer.AnalyzeMultiple(store, {Ingest()}, Cpu(), 0, 100)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(DependencyAnalyzerTest, AnalyzeMultipleRejectsCollinearPredictors) {
  cloudwatch::MetricStore store;
  const cloudwatch::MetricId kDup{"Flower/Kinesis", "Dup", "s"};
  for (int i = 0; i < 100; ++i) {
    double t = 60.0 * i;
    double v = 100.0 * i;
    ASSERT_TRUE(store.Put(kIn, t, v).ok());
    ASSERT_TRUE(store.Put(kDup, t, 2.0 * v).ok());  // Perfectly collinear.
    ASSERT_TRUE(store.Put(kCpu, t, v * 0.001).ok());
  }
  DependencyAnalyzer analyzer;
  LayerMetric dup{Layer::kIngestion, kDup};
  EXPECT_EQ(analyzer.AnalyzeMultiple(store, {Ingest(), dup}, Cpu(), 0.0,
                                     6000.0)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(DependencyAnalyzerTest, ToStringRendersEquation) {
  cloudwatch::MetricStore store;
  PlantEq2(&store, 100, 0.01);
  DependencyAnalyzer analyzer;
  auto dep = analyzer.Analyze(store, Ingest(), Cpu(), 0.0, 6000.0);
  ASSERT_TRUE(dep.ok());
  std::string s = dep->ToString();
  EXPECT_NE(s.find("CpuUtilization(analytics) ="), std::string::npos);
  EXPECT_NE(s.find("IncomingRecords(ingestion)"), std::string::npos);
  EXPECT_NE(s.find("significant"), std::string::npos);
}

}  // namespace
}  // namespace flower::core
