#include "core/windowed_share.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.h"

namespace flower::core {
namespace {

ResourceShareRequest BaseRequest(double budget = 3.0) {
  ResourceShareRequest req;
  req.hourly_budget_usd = budget;
  req.unit_price[0] = 0.015;
  req.unit_price[1] = 0.10;
  req.unit_price[2] = 0.00065;
  req.bounds[0] = {1.0, 64.0};
  req.bounds[1] = {1.0, 40.0};
  req.bounds[2] = {1.0, 4000.0};
  return req;
}

DemandModel Model() {
  DemandModel m;
  m.target_utilization = 0.6;
  m.records_per_shard = 1000.0;
  m.work_units_per_record = 4800.0;
  m.work_units_per_vm = 0.9e6;
  m.wcu_base = 50.0;
  m.wcu_per_record = 0.0;
  return m;
}

opt::Nsga2Config FastSolver() {
  opt::Nsga2Config cfg;
  cfg.population_size = 60;
  cfg.generations = 60;
  return cfg;
}

TEST(DemandModelTest, MinimumScalesWithRate) {
  DemandModel m = Model();
  ProvisioningPlan lo = m.MinimumFor(600.0);
  // Shards: 600/(1000*0.6) = 1; VMs: 600*4800/(0.9e6*0.6) = 5.33 -> 6;
  // WCU: 50/0.6 = 83.3 -> 84.
  EXPECT_DOUBLE_EQ(lo.ingestion(), 1.0);
  EXPECT_DOUBLE_EQ(lo.analytics(), 6.0);
  EXPECT_DOUBLE_EQ(lo.storage(), 84.0);
  ProvisioningPlan hi = m.MinimumFor(3000.0);
  EXPECT_DOUBLE_EQ(hi.ingestion(), 5.0);
  EXPECT_DOUBLE_EQ(hi.analytics(), 27.0);
  EXPECT_GE(hi.storage(), lo.storage());
}

TEST(DemandModelTest, ZeroRateStillNeedsOneUnitPerLayer) {
  ProvisioningPlan p = Model().MinimumFor(0.0);
  EXPECT_GE(p.ingestion(), 1.0);
  EXPECT_GE(p.analytics(), 1.0);
  EXPECT_GE(p.storage(), 1.0);
}

TEST(WindowedShareTest, PlanWindowMeetsDemandWithinBudget) {
  WindowedShareAnalyzer analyzer(BaseRequest(3.0), Model(), FastSolver());
  auto plan = analyzer.PlanWindow(0.0, kHour, 1500.0);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->within_budget);
  ProvisioningPlan min = Model().MinimumFor(1500.0);
  EXPECT_GE(plan->plan.ingestion(), min.ingestion());
  EXPECT_GE(plan->plan.analytics(), min.analytics());
  EXPECT_GE(plan->plan.storage(), min.storage());
  EXPECT_LE(plan->plan.hourly_cost_usd, 3.0 + 1e-9);
}

TEST(WindowedShareTest, OverBudgetWindowFlagged) {
  // Demand for 3000 rec/s needs ~27 VMs = $2.7/h alone; budget $1.
  WindowedShareAnalyzer analyzer(BaseRequest(1.0), Model(), FastSolver());
  auto plan = analyzer.PlanWindow(0.0, kHour, 3000.0);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->within_budget);
  // The reported plan is the bare demand minimum with its true cost.
  ProvisioningPlan min = Model().MinimumFor(3000.0);
  EXPECT_DOUBLE_EQ(plan->plan.analytics(), min.analytics());
  EXPECT_GT(plan->plan.hourly_cost_usd, 1.0);
}

TEST(WindowedShareTest, PlanWindowValidatesTimes) {
  WindowedShareAnalyzer analyzer(BaseRequest(), Model(), FastSolver());
  EXPECT_FALSE(analyzer.PlanWindow(100.0, 100.0, 500.0).ok());
  EXPECT_FALSE(analyzer.PlanWindow(100.0, 50.0, 500.0).ok());
}

TEST(WindowedShareTest, HorizonPlansFollowDiurnalForecast) {
  TimeSeries forecast("rate");
  for (double t = 0.0; t < kDay; t += 10.0 * kMinute) {
    double rate =
        1000.0 + 800.0 * std::sin(2.0 * M_PI * t / kDay);
    forecast.AppendUnchecked(t, std::max(100.0, rate));
  }
  WindowedShareAnalyzer analyzer(BaseRequest(4.0), Model(), FastSolver());
  auto plans = analyzer.PlanHorizon(forecast, 4.0 * kHour);
  ASSERT_TRUE(plans.ok());
  ASSERT_GE(plans->size(), 6u);
  // The demand profile follows the forecast: peak windows need clearly
  // more analytics VMs than trough windows, and every budget-feasible
  // plan covers its window's demand.
  double max_vms = 0.0, min_vms = 1e18;
  for (const WindowPlan& wp : *plans) {
    max_vms = std::max(max_vms, wp.demand.analytics());
    min_vms = std::min(min_vms, wp.demand.analytics());
    EXPECT_TRUE(wp.within_budget);
    EXPECT_GT(wp.forecast_rate, 0.0);
    EXPECT_GE(wp.plan.analytics(), wp.demand.analytics());
    EXPECT_GE(wp.plan.ingestion(), wp.demand.ingestion());
    EXPECT_GE(wp.plan.storage(), wp.demand.storage());
  }
  EXPECT_GT(max_vms, 1.5 * min_vms);
}

TEST(WindowedShareTest, HorizonUsesWindowPeakNotMean) {
  // A flat forecast with one in-window spike: the window's plan must
  // cover the spike.
  TimeSeries forecast("rate");
  for (int i = 0; i < 12; ++i) {
    forecast.AppendUnchecked(i * 10.0 * kMinute, i == 5 ? 2500.0 : 400.0);
  }
  WindowedShareAnalyzer analyzer(BaseRequest(4.0), Model(), FastSolver());
  auto plans = analyzer.PlanHorizon(forecast, 2.0 * kHour);
  ASSERT_TRUE(plans.ok());
  ASSERT_FALSE(plans->empty());
  ProvisioningPlan spike_min = Model().MinimumFor(2500.0);
  EXPECT_GE((*plans)[0].plan.analytics(), spike_min.analytics());
}

TEST(WindowedShareTest, HorizonValidatesInput) {
  WindowedShareAnalyzer analyzer(BaseRequest(), Model(), FastSolver());
  TimeSeries empty;
  EXPECT_FALSE(analyzer.PlanHorizon(empty, kHour).ok());
  TimeSeries one("r");
  one.AppendUnchecked(0.0, 100.0);
  EXPECT_FALSE(analyzer.PlanHorizon(one, -1.0).ok());
}

TEST(WindowedShareTest, HorizonIsBitIdenticalAcrossThreadCounts) {
  // PlanHorizon fans each window out to its own solver run; the plans
  // must be bitwise-identical no matter how many threads execute them.
  TimeSeries forecast("rate");
  for (double t = 0.0; t < kDay; t += 10.0 * kMinute) {
    double rate = 1000.0 + 800.0 * std::sin(2.0 * M_PI * t / kDay);
    forecast.AppendUnchecked(t, std::max(100.0, rate));
  }
  WindowedShareAnalyzer serial(BaseRequest(4.0), Model(), FastSolver(),
                               /*num_threads=*/1);
  WindowedShareAnalyzer parallel(BaseRequest(4.0), Model(), FastSolver(),
                                 /*num_threads=*/4);
  auto a = serial.PlanHorizon(forecast, 2.0 * kHour);
  auto b = parallel.PlanHorizon(forecast, 2.0 * kHour);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  ASSERT_GE(a->size(), 10u);
  for (size_t i = 0; i < a->size(); ++i) {
    const WindowPlan& wa = (*a)[i];
    const WindowPlan& wb = (*b)[i];
    EXPECT_EQ(wa.start, wb.start);
    EXPECT_EQ(wa.end, wb.end);
    EXPECT_EQ(wa.forecast_rate, wb.forecast_rate);
    EXPECT_EQ(wa.within_budget, wb.within_budget);
    EXPECT_EQ(wa.plan.hourly_cost_usd, wb.plan.hourly_cost_usd);
    for (int l = 0; l < kNumLayers; ++l) {
      EXPECT_EQ(wa.plan.shares[l], wb.plan.shares[l]) << "window " << i;
      EXPECT_EQ(wa.demand.shares[l], wb.demand.shares[l]) << "window " << i;
    }
  }
}

TEST(WindowedShareTest, ParallelHorizonPropagatesWindowErrors) {
  // An invalid solver config makes every PlanWindow fail inside the
  // parallel sweep; the first error must surface as the call's status
  // rather than crash or hang.
  opt::Nsga2Config bad_solver = FastSolver();
  bad_solver.population_size = 5;  // Odd: NSGA-II rejects it.
  WindowedShareAnalyzer analyzer(BaseRequest(4.0), Model(), bad_solver,
                                 /*num_threads=*/4);
  TimeSeries forecast("rate");
  for (int i = 0; i < 24; ++i) {
    forecast.AppendUnchecked(i * kHour, 2000.0);
  }
  auto plans = analyzer.PlanHorizon(forecast, kHour);
  EXPECT_FALSE(plans.ok());
}

TEST(WindowedShareTest, DependencyConstraintsStillHold) {
  ResourceShareRequest req = BaseRequest(4.0);
  req.constraints.push_back(LinearConstraint::AtMost(
      Layer::kIngestion, 2.0, Layer::kStorage, -1.0, 0.0,
      "2*shards <= wcu"));
  WindowedShareAnalyzer analyzer(req, Model(), FastSolver());
  auto plan = analyzer.PlanWindow(0.0, kHour, 2000.0);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->within_budget);
  EXPECT_LE(2.0 * plan->plan.ingestion(), plan->plan.storage() + 1e-9);
}

TimeSeries DiurnalForecast() {
  TimeSeries forecast("rate");
  for (double t = 0.0; t < kDay; t += 10.0 * kMinute) {
    double rate = 1000.0 + 800.0 * std::sin(2.0 * M_PI * t / kDay);
    forecast.AppendUnchecked(t, std::max(100.0, rate));
  }
  return forecast;
}

TEST(WindowedShareWarmTest, WarmChainPlansStayValid) {
  // Warm-started horizon planning seeds, polishes, and merges fronts —
  // every surviving plan must still respect the bounds, the budget, and
  // the dependency constraints, and every window must still cover its
  // demand.
  ResourceShareRequest req = BaseRequest(4.0);
  req.constraints.push_back(LinearConstraint::AtMost(
      Layer::kIngestion, 2.0, Layer::kStorage, -1.0, 0.0,
      "2*shards <= wcu"));
  IncrementalPlanning inc;
  inc.warm_start = true;
  inc.stall_generations = 4;
  WindowedShareAnalyzer analyzer(req, Model(), FastSolver(),
                                 /*num_threads=*/1, inc);
  auto plans = analyzer.PlanHorizon(DiurnalForecast(), 2.0 * kHour);
  ASSERT_TRUE(plans.ok());
  ASSERT_GE(plans->size(), 10u);
  size_t early_exits = 0;
  for (size_t i = 0; i < plans->size(); ++i) {
    const WindowPlan& wp = (*plans)[i];
    EXPECT_TRUE(wp.within_budget) << "window " << i;
    EXPECT_GE(wp.plan.analytics(), wp.demand.analytics()) << "window " << i;
    EXPECT_GT(wp.evaluations, 0u) << "window " << i;
    if (wp.early_exit) ++early_exits;
    ASSERT_FALSE(wp.pareto_plans.empty()) << "window " << i;
    for (const ProvisioningPlan& p : wp.pareto_plans) {
      EXPECT_LE(p.hourly_cost_usd, 4.0 + 1e-9);
      EXPECT_LE(2.0 * p.ingestion(), p.storage() + 1e-9);
      for (int l = 0; l < kNumLayers; ++l) {
        EXPECT_GE(p.shares[l], wp.demand.shares[l] - 1e-9)
            << "window " << i << " layer " << l;
        EXPECT_LE(p.shares[l], req.bounds[l].max + 1e-9)
            << "window " << i << " layer " << l;
      }
    }
  }
  // The early-exit fires on seeded windows once the chain warms up.
  EXPECT_GE(early_exits, plans->size() / 2);
}

TEST(WindowedShareWarmTest, WarmChainIsDeterministic) {
  // Two identical warm runs produce byte-identical horizons, and the
  // chain's determinism must survive solver-level threading.
  IncrementalPlanning inc;
  inc.warm_start = true;
  inc.stall_generations = 4;
  auto run = [&](size_t solver_threads) {
    opt::Nsga2Config solver = FastSolver();
    solver.num_threads = solver_threads;
    WindowedShareAnalyzer analyzer(BaseRequest(4.0), Model(), solver,
                                   /*num_threads=*/1, inc);
    auto plans = analyzer.PlanHorizon(DiurnalForecast(), 2.0 * kHour);
    EXPECT_TRUE(plans.ok());
    return *plans;
  };
  std::vector<WindowPlan> base = run(1);
  for (size_t threads : {1u, 4u}) {
    std::vector<WindowPlan> other = run(threads);
    ASSERT_EQ(other.size(), base.size()) << threads << " solver threads";
    for (size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(other[i].early_exit, base[i].early_exit) << "window " << i;
      EXPECT_EQ(other[i].evaluations, base[i].evaluations) << "window " << i;
      ASSERT_EQ(other[i].pareto_plans.size(), base[i].pareto_plans.size())
          << "window " << i;
      for (size_t j = 0; j < base[i].pareto_plans.size(); ++j) {
        for (int l = 0; l < kNumLayers; ++l) {
          EXPECT_EQ(other[i].pareto_plans[j].shares[l],
                    base[i].pareto_plans[j].shares[l])
              << "window " << i << " plan " << j;
        }
      }
      for (int l = 0; l < kNumLayers; ++l) {
        EXPECT_EQ(other[i].plan.shares[l], base[i].plan.shares[l])
            << "window " << i;
      }
    }
  }
}

TEST(WindowedShareWarmTest, WarmChainSpendsFewerEvaluationsThanCold) {
  IncrementalPlanning cold_knobs;  // Everything off.
  IncrementalPlanning warm_knobs;
  warm_knobs.warm_start = true;
  warm_knobs.stall_generations = 4;
  WindowedShareAnalyzer cold(BaseRequest(4.0), Model(), FastSolver(),
                             /*num_threads=*/1, cold_knobs);
  WindowedShareAnalyzer warm(BaseRequest(4.0), Model(), FastSolver(),
                             /*num_threads=*/1, warm_knobs);
  TimeSeries forecast = DiurnalForecast();
  auto cold_plans = cold.PlanHorizon(forecast, 2.0 * kHour);
  auto warm_plans = warm.PlanHorizon(forecast, 2.0 * kHour);
  ASSERT_TRUE(cold_plans.ok());
  ASSERT_TRUE(warm_plans.ok());
  size_t cold_evals = 0, warm_evals = 0;
  for (const WindowPlan& wp : *cold_plans) cold_evals += wp.evaluations;
  for (const WindowPlan& wp : *warm_plans) warm_evals += wp.evaluations;
  EXPECT_LT(warm_evals, cold_evals);
}

TEST(WindowedShareWarmTest, FeaturesOffReproducesPlainHorizon) {
  // A default IncrementalPlanning must be byte-identical to the plain
  // analyzer (the PR's features-off contract at the windowed layer).
  WindowedShareAnalyzer plain(BaseRequest(4.0), Model(), FastSolver());
  WindowedShareAnalyzer off(BaseRequest(4.0), Model(), FastSolver(),
                            /*num_threads=*/1, IncrementalPlanning{});
  TimeSeries forecast = DiurnalForecast();
  auto a = plain.PlanHorizon(forecast, 2.0 * kHour);
  auto b = off.PlanHorizon(forecast, 2.0 * kHour);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].early_exit, false);
    EXPECT_EQ((*b)[i].early_exit, false);
    EXPECT_EQ((*a)[i].evaluations, (*b)[i].evaluations);
    for (int l = 0; l < kNumLayers; ++l) {
      EXPECT_EQ((*a)[i].plan.shares[l], (*b)[i].plan.shares[l])
          << "window " << i;
    }
  }
}

}  // namespace
}  // namespace flower::core
