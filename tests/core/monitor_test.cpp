#include "core/monitor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace flower::core {
namespace {

const cloudwatch::MetricId kCpu{"Flower/Storm", "CpuUtilization", "c"};
const cloudwatch::MetricId kUtil{"Flower/Kinesis", "WriteUtilization", "s"};

void Fill(cloudwatch::MetricStore* store) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store->Put(kCpu, 60.0 * i, 10.0 + i).ok());
    ASSERT_TRUE(store->Put(kUtil, 60.0 * i, 50.0).ok());
  }
}

TEST(CrossPlatformMonitorTest, SnapshotAggregates) {
  cloudwatch::MetricStore store;
  Fill(&store);
  CrossPlatformMonitor monitor(&store);
  monitor.Watch(kCpu);
  monitor.Watch(kUtil);
  auto snaps = monitor.Snapshot(0.0, 600.0);
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].samples, 10u);
  EXPECT_DOUBLE_EQ(snaps[0].last, 19.0);
  EXPECT_DOUBLE_EQ(snaps[0].minimum, 10.0);
  EXPECT_DOUBLE_EQ(snaps[0].maximum, 19.0);
  EXPECT_DOUBLE_EQ(snaps[0].average, 14.5);
  EXPECT_DOUBLE_EQ(snaps[1].average, 50.0);
}

TEST(CrossPlatformMonitorTest, WindowRestrictsSamples) {
  cloudwatch::MetricStore store;
  Fill(&store);
  CrossPlatformMonitor monitor(&store);
  monitor.Watch(kCpu);
  auto snaps = monitor.Snapshot(300.0, 420.0);
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].samples, 2u);  // t = 300, 360.
}

TEST(CrossPlatformMonitorTest, UnknownMetricHasZeroSamples) {
  cloudwatch::MetricStore store;
  CrossPlatformMonitor monitor(&store);
  monitor.Watch(kCpu);
  auto snaps = monitor.Snapshot(0.0, 100.0);
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].samples, 0u);
}

TEST(CrossPlatformMonitorTest, WatchNamespacePicksUpAllMetrics) {
  cloudwatch::MetricStore store;
  Fill(&store);
  CrossPlatformMonitor monitor(&store);
  monitor.WatchNamespace("Flower/Storm");
  EXPECT_EQ(monitor.watched_count(), 1u);
  monitor.WatchNamespace("");  // Everything.
  EXPECT_EQ(monitor.watched_count(), 3u);
}

TEST(CrossPlatformMonitorTest, RenderDashboardConsolidatesSystems) {
  cloudwatch::MetricStore store;
  Fill(&store);
  CrossPlatformMonitor monitor(&store);
  monitor.Watch(kCpu);
  monitor.Watch(kUtil);
  std::ostringstream os;
  monitor.RenderDashboard(os, 0.0, 600.0);
  std::string s = os.str();
  // One view shows metrics of both platforms — the §3.4 feature.
  EXPECT_NE(s.find("Flower/Storm/CpuUtilization{c}"), std::string::npos);
  EXPECT_NE(s.find("Flower/Kinesis/WriteUtilization{s}"), std::string::npos);
  EXPECT_NE(s.find("14.50"), std::string::npos);
}

TEST(CrossPlatformMonitorTest, DumpCsvEmitsAllDatapointsInWindow) {
  cloudwatch::MetricStore store;
  Fill(&store);
  CrossPlatformMonitor monitor(&store);
  monitor.Watch(kCpu);
  monitor.Watch(kUtil);
  std::ostringstream os;
  monitor.DumpCsv(os, 60.0, 240.0);  // 3 samples per metric.
  std::string s = os.str();
  EXPECT_NE(s.find("metric,time_sec,value"), std::string::npos);
  // 1 header + 2 metrics x 3 samples = 7 lines.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 7);
  EXPECT_NE(s.find("Flower/Storm/CpuUtilization{c},60,11"),
            std::string::npos);
}

TEST(CrossPlatformMonitorTest, DumpCsvSkipsUnknownMetrics) {
  cloudwatch::MetricStore store;
  CrossPlatformMonitor monitor(&store);
  monitor.Watch(kCpu);
  std::ostringstream os;
  monitor.DumpCsv(os, 0.0, 100.0);
  std::string s = os.str();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 1);  // Header only.
}

TEST(CrossPlatformMonitorTest, RenderWithChartsIncludesSparkline) {
  cloudwatch::MetricStore store;
  Fill(&store);
  CrossPlatformMonitor monitor(&store);
  monitor.Watch(kCpu);
  std::ostringstream os;
  monitor.RenderDashboard(os, 0.0, 600.0, /*with_charts=*/true);
  EXPECT_NE(os.str().find('*'), std::string::npos);
  EXPECT_NE(os.str().find("max"), std::string::npos);
}

}  // namespace
}  // namespace flower::core
