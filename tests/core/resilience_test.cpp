// Hardened control-loop behavior: retry with backoff, the per-loop
// circuit breaker, hold-last-value sensing, and robust statistics —
// exercised against the fault-injection subsystem where a full loop is
// involved.

#include <gtest/gtest.h>

#include "control/adaptive_gain.h"
#include "core/elasticity_manager.h"
#include "core/flow_builder.h"
#include "sim/fault_injector.h"
#include "workload/arrival.h"

namespace flower::core {
namespace {

const cloudwatch::MetricId kCpu{"Flower/Storm", "CpuUtilization", "c"};

std::unique_ptr<control::Controller> TestController() {
  control::AdaptiveGainConfig cfg;
  cfg.reference = 60.0;
  cfg.initial_gain = 0.05;
  cfg.gain_min = 0.01;
  cfg.gain_max = 0.5;
  cfg.gamma = 0.01;
  cfg.limits.min = 1.0;
  cfg.limits.max = 100.0;
  return std::make_unique<control::AdaptiveGainController>(cfg);
}

LayerControlConfig TestConfig(std::function<Status(double)> actuator) {
  LayerControlConfig cfg;
  cfg.layer = Layer::kAnalytics;
  cfg.sensor_metric = kCpu;
  cfg.monitoring_period_sec = 60.0;
  cfg.monitoring_window_sec = 120.0;
  cfg.start_delay_sec = 60.0;
  cfg.controller = TestController();
  cfg.actuator = std::move(actuator);
  cfg.initial_u = 5.0;
  return cfg;
}

void PublishCpuForever(sim::Simulation* sim, cloudwatch::MetricStore* metrics,
                       double value = 90.0) {
  ASSERT_TRUE(sim->SchedulePeriodic(30.0, 30.0, [sim, metrics, value] {
    EXPECT_TRUE(metrics->Put(kCpu, sim->Now(), value).ok());
    return true;
  }).ok());
}

TEST(ResilienceTest, AttachRejectsInvalidPolicies) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  ElasticityManager mgr(&sim, &metrics);
  auto with = [&](auto mutate) {
    LayerControlConfig cfg = TestConfig([](double) { return Status::OK(); });
    mutate(cfg.resilience);
    return mgr.Attach(std::move(cfg)).ok();
  };
  EXPECT_FALSE(with([](ResiliencePolicy& p) { p.retry.max_retries = -1; }));
  EXPECT_FALSE(
      with([](ResiliencePolicy& p) { p.retry.backoff_multiplier = 0.5; }));
  EXPECT_FALSE(
      with([](ResiliencePolicy& p) { p.retry.jitter_fraction = 1.5; }));
  EXPECT_FALSE(with([](ResiliencePolicy& p) {
    p.breaker.failure_threshold = 3;
    p.breaker.cooldown_sec = 0.0;
  }));
  EXPECT_FALSE(
      with([](ResiliencePolicy& p) { p.sensor.max_hold_sec = -1.0; }));
  EXPECT_FALSE(
      with([](ResiliencePolicy& p) { p.sensor.winsorize_fraction = 0.5; }));
  EXPECT_TRUE(with([](ResiliencePolicy&) {}));
}

TEST(ResilienceTest, RetryRecoversTransientActuatorFailure) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  ElasticityManager mgr(&sim, &metrics);
  int calls = 0;
  LayerControlConfig cfg = TestConfig([&](double) {
    // Only the very first attempt fails (a transient resize error).
    ++calls;
    return calls == 1 ? Status::Internal("transient") : Status::OK();
  });
  cfg.resilience.retry.max_retries = 3;
  cfg.resilience.retry.initial_backoff_sec = 2.0;
  cfg.resilience.retry.jitter_fraction = 0.0;
  ASSERT_TRUE(mgr.Attach(std::move(cfg)).ok());
  PublishCpuForever(&sim, &metrics);
  sim.RunUntil(300.0);
  auto state = mgr.GetState(Layer::kAnalytics);
  ASSERT_TRUE(state.ok());
  // Step at t=60: attempt fails, the 2 s-backoff retry lands it.
  EXPECT_EQ((*state)->actuation_failures(), 1u);
  EXPECT_EQ((*state)->actuation_retries(), 1u);
  EXPECT_EQ((*state)->retry_successes(), 1u);
  // Steps kept coming afterwards with no further retries.
  EXPECT_GE((*state)->actuations.size(), 4u);
}

TEST(ResilienceTest, RetriesAreBoundedPerStep) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  ElasticityManager mgr(&sim, &metrics);
  LayerControlConfig cfg =
      TestConfig([](double) { return Status::Internal("down"); });
  cfg.resilience.retry.max_retries = 2;
  cfg.resilience.retry.initial_backoff_sec = 2.0;
  cfg.resilience.retry.backoff_multiplier = 2.0;
  cfg.resilience.retry.jitter_fraction = 0.0;
  ASSERT_TRUE(mgr.Attach(std::move(cfg)).ok());
  PublishCpuForever(&sim, &metrics);
  sim.RunUntil(150.0);  // Two control steps (t=60, t=120).
  auto state = mgr.GetState(Layer::kAnalytics);
  ASSERT_TRUE(state.ok());
  // Each step: the initial attempt plus exactly max_retries retries.
  EXPECT_EQ((*state)->actuation_retries(), 4u);
  EXPECT_EQ((*state)->actuation_failures(), 6u);
  EXPECT_EQ((*state)->retry_successes(), 0u);
}

TEST(ResilienceTest, NewControlStepSupersedesOutstandingRetry) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  ElasticityManager mgr(&sim, &metrics);
  LayerControlConfig cfg =
      TestConfig([](double) { return Status::Internal("down"); });
  cfg.resilience.retry.max_retries = 5;
  // Backoff longer than the control period: the retry would land after
  // the next step, whose fresher actuation supersedes it.
  cfg.resilience.retry.initial_backoff_sec = 90.0;
  cfg.resilience.retry.max_backoff_sec = 90.0;
  cfg.resilience.retry.jitter_fraction = 0.0;
  ASSERT_TRUE(mgr.Attach(std::move(cfg)).ok());
  PublishCpuForever(&sim, &metrics);
  sim.RunUntil(400.0);
  auto state = mgr.GetState(Layer::kAnalytics);
  ASSERT_TRUE(state.ok());
  // Every step failed once; no stale retry ever fired.
  EXPECT_EQ((*state)->actuation_retries(), 0u);
  EXPECT_EQ((*state)->actuation_failures(), (*state)->actuations.size());
}

TEST(ResilienceTest, BreakerTripsThenRecoversViaHalfOpenProbe) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  ElasticityManager mgr(&sim, &metrics);
  int failures_left = 3;
  int calls = 0;
  LayerControlConfig cfg = TestConfig([&](double) {
    ++calls;
    if (failures_left > 0) {
      --failures_left;
      return Status::Internal("outage");
    }
    return Status::OK();
  });
  cfg.resilience.breaker.failure_threshold = 3;
  cfg.resilience.breaker.cooldown_sec = 250.0;
  ASSERT_TRUE(mgr.Attach(std::move(cfg)).ok());
  PublishCpuForever(&sim, &metrics);
  sim.RunUntil(700.0);
  auto state = mgr.GetState(Layer::kAnalytics);
  ASSERT_TRUE(state.ok());
  // Steps at 60/120/180 fail and trip the breaker; steps at 240..420
  // are skipped (cooldown ends at 430); the t=480 half-open probe
  // succeeds and closes it; t=540/600/660 actuate normally.
  EXPECT_EQ((*state)->breaker_trips(), 1u);
  EXPECT_EQ((*state)->breaker_skipped_steps(), 4u);
  EXPECT_EQ((*state)->actuation_failures(), 3u);
  EXPECT_FALSE((*state)->breaker_open);
  EXPECT_EQ(calls, 7);  // 3 failures + probe + 3 healthy actuations.
  // The loop kept sensing throughout — the breaker only guards the
  // actuator, it does not blind the controller.
  EXPECT_EQ((*state)->sensed.size(), (*state)->actuations.size());
}

TEST(ResilienceTest, FailedHalfOpenProbeReopensBreaker) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  ElasticityManager mgr(&sim, &metrics);
  LayerControlConfig cfg =
      TestConfig([](double) { return Status::Internal("dead"); });
  cfg.resilience.breaker.failure_threshold = 2;
  cfg.resilience.breaker.cooldown_sec = 150.0;
  ASSERT_TRUE(mgr.Attach(std::move(cfg)).ok());
  PublishCpuForever(&sim, &metrics);
  sim.RunUntil(500.0);
  auto state = mgr.GetState(Layer::kAnalytics);
  ASSERT_TRUE(state.ok());
  // Trip at t=120 (cooldown to 270), failed probe at t=300 re-trips
  // (cooldown to 450), failed probe at t=480 re-trips again.
  EXPECT_EQ((*state)->breaker_trips(), 3u);
  EXPECT_EQ((*state)->actuation_failures(), 4u);
  EXPECT_TRUE((*state)->breaker_open);
}

TEST(ResilienceTest, HoldLastValueBridgesSensorGapUntilMaxAge) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  ElasticityManager mgr(&sim, &metrics);
  LayerControlConfig cfg = TestConfig([](double) { return Status::OK(); });
  cfg.resilience.sensor.on_miss = SensorMissPolicy::kHoldLastValue;
  cfg.resilience.sensor.max_hold_sec = 150.0;
  ASSERT_TRUE(mgr.Attach(std::move(cfg)).ok());
  // Metrics flow until t=180, then the store goes silent.
  ASSERT_TRUE(sim.SchedulePeriodic(30.0, 30.0, [&] {
    EXPECT_TRUE(metrics.Put(kCpu, sim.Now(), 90.0).ok());
    return sim.Now() < 180.0;
  }).ok());
  sim.RunUntil(500.0);
  auto state = mgr.GetState(Layer::kAnalytics);
  ASSERT_TRUE(state.ok());
  // Steps 60..240 sense fresh data ((t-120, t] still has datapoints);
  // steps 300 and 360 run on the held value (ages 60 s and 120 s);
  // steps 420+ exceed max_hold_sec and skip.
  EXPECT_EQ((*state)->stale_sensor_reads(), 2u);
  EXPECT_EQ((*state)->sensor_misses(), 2u);
  EXPECT_EQ((*state)->sensed.size(), 6u);
  // The held steps replayed the last good measurement.
  auto samples = (*state)->sensed.samples();
  EXPECT_DOUBLE_EQ(samples[4].value, samples[3].value);
  EXPECT_DOUBLE_EQ(samples[5].value, samples[3].value);
}

TEST(ResilienceTest, MedianSensingShrugsOffOutlierDatapoints) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  ElasticityManager mgr(&sim, &metrics);
  LayerControlConfig plain = TestConfig([](double) { return Status::OK(); });
  plain.name = "plain";
  LayerControlConfig robust = TestConfig([](double) { return Status::OK(); });
  robust.name = "robust";
  robust.resilience.sensor.robust = RobustSensing::kMedian;
  ASSERT_TRUE(mgr.Attach(std::move(plain)).ok());
  ASSERT_TRUE(mgr.Attach(std::move(robust)).ok());
  // A broken monitoring agent: every 4th datapoint is a wild spike.
  int n = 0;
  ASSERT_TRUE(sim.SchedulePeriodic(30.0, 30.0, [&] {
    double v = (++n % 4 == 0) ? 5000.0 : 80.0;
    EXPECT_TRUE(metrics.Put(kCpu, sim.Now(), v).ok());
    return true;
  }).ok());
  sim.RunUntil(600.0);
  auto plain_state = mgr.GetState("plain");
  auto robust_state = mgr.GetState("robust");
  ASSERT_TRUE(plain_state.ok());
  ASSERT_TRUE(robust_state.ok());
  double worst_plain = 0.0, worst_robust = 0.0;
  for (const Sample& s : (*plain_state)->sensed.samples())
    worst_plain = std::max(worst_plain, s.value);
  for (const Sample& s : (*robust_state)->sensed.samples())
    worst_robust = std::max(worst_robust, s.value);
  // The averaging sensor is dragged into the thousands by the spikes;
  // the median never leaves the true neighborhood.
  EXPECT_GT(worst_plain, 500.0);
  EXPECT_LE(worst_robust, 100.0);
}

TEST(ResilienceTest, WinsorizedMeanSensingBoundsSpikeInfluence) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  ElasticityManager mgr(&sim, &metrics);
  LayerControlConfig cfg = TestConfig([](double) { return Status::OK(); });
  cfg.resilience.sensor.robust = RobustSensing::kWinsorizedMean;
  // The trailing window holds ~3 datapoints, so trim at least one from
  // each tail (floor(0.34 * 3) == 1).
  cfg.resilience.sensor.winsorize_fraction = 0.34;
  ASSERT_TRUE(mgr.Attach(std::move(cfg)).ok());
  int n = 0;
  ASSERT_TRUE(sim.SchedulePeriodic(30.0, 30.0, [&] {
    double v = (++n % 4 == 0) ? 5000.0 : 80.0;
    EXPECT_TRUE(metrics.Put(kCpu, sim.Now(), v).ok());
    return true;
  }).ok());
  sim.RunUntil(600.0);
  auto state = mgr.GetState(Layer::kAnalytics);
  ASSERT_TRUE(state.ok());
  ASSERT_FALSE((*state)->sensed.empty());
  for (const Sample& s : (*state)->sensed.samples()) {
    EXPECT_LE(s.value, 100.0);  // Spikes clamped to the window's bulk.
  }
}

TEST(ResilienceTest, ManagedFlowRecoversFromInjectedOutage) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  sim::FaultInjector chaos(&sim, /*seed=*/5);
  // Analytics resizes fail 80% of the time for 20 minutes.
  chaos.FailActuator("analytics", 600.0, 1800.0, 0.8);
  flow::FlowConfig fc;
  fc.stream.initial_shards = 2;
  fc.stream.max_shards = 64;
  fc.initial_workers = 1;
  fc.instance_type = {"test.vm", 2, 1.0e6, 0.10};
  fc.table.initial_wcu = 100.0;
  fc.table.max_wcu = 5000.0;
  ResiliencePolicy hardened;
  hardened.retry.max_retries = 3;
  hardened.retry.initial_backoff_sec = 5.0;
  auto mf = FlowBuilder()
                .WithFlowConfig(fc)
                .WithWorkload(std::make_shared<workload::ConstantArrival>(1500.0))
                .WithResilience(hardened)
                .WithFaultInjector(&chaos)
                .WithSeed(9)
                .Build(&sim, &metrics);
  ASSERT_TRUE(mf.ok());
  sim.RunUntil(3600.0);
  auto state = mf->manager->GetState(Layer::kAnalytics);
  ASSERT_TRUE(state.ok());
  // The injector really did interfere, retries landed actuations
  // through the outage, and the loop still scaled the cluster out.
  EXPECT_GT(chaos.stats().actuator_failures, 0u);
  EXPECT_GT((*state)->retry_successes(), 0u);
  EXPECT_GT(mf->flow->cluster().worker_count(), 3);
}

}  // namespace
}  // namespace flower::core
