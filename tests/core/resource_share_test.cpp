#include "core/resource_share.h"

#include <gtest/gtest.h>

#include <set>

namespace flower::core {
namespace {

// The paper's Fig. 4 scenario: maximize (shards, VMs, WCU) subject to a
// budget and the dependency constraints 5·r_A >= r_I, 2·r_A <= r_I,
// 2·r_I <= r_S.
ResourceShareRequest Fig4Request(double budget = 2.0) {
  ResourceShareRequest req;
  req.hourly_budget_usd = budget;
  req.unit_price[0] = 0.015;    // Shard-hour.
  req.unit_price[1] = 0.10;     // VM-hour.
  req.unit_price[2] = 0.00065;  // WCU-hour.
  req.bounds[0] = {1.0, 40.0};
  req.bounds[1] = {1.0, 20.0};
  req.bounds[2] = {1.0, 400.0};
  req.constraints.push_back(LinearConstraint::AtLeast(
      Layer::kAnalytics, 5.0, Layer::kIngestion, 1.0, "5*vms >= shards"));
  req.constraints.push_back(LinearConstraint::AtMost(
      Layer::kAnalytics, 2.0, Layer::kIngestion, -1.0, 0.0,
      "2*vms <= shards"));
  req.constraints.push_back(LinearConstraint::AtMost(
      Layer::kIngestion, 2.0, Layer::kStorage, -1.0, 0.0,
      "2*shards <= wcu"));
  return req;
}

TEST(LinearConstraintTest, AtLeastEncodesCorrectly) {
  // 5·r_A >= r_I  ⇔  r_I − 5·r_A <= 0.
  auto c = LinearConstraint::AtLeast(Layer::kAnalytics, 5.0,
                                     Layer::kIngestion, 1.0);
  EXPECT_DOUBLE_EQ(c.coeff[0], 1.0);   // Ingestion.
  EXPECT_DOUBLE_EQ(c.coeff[1], -5.0);  // Analytics.
  EXPECT_DOUBLE_EQ(c.rhs, 0.0);
}

TEST(ShareProblemTest, EvaluateComputesViolations) {
  ShareProblem p(Fig4Request(2.0));
  std::vector<double> obj, viol;
  // Feasible point: 10 shards, 4 VMs, 100 WCU.
  // Cost = 0.15 + 0.40 + 0.065 = 0.615 <= 2. Constraints:
  // 10 - 20 <= 0 ok; 8 - 10 <= 0 ok; 20 - 100 <= 0 ok.
  p.Evaluate({10, 4, 100}, &obj, &viol);
  EXPECT_EQ(obj, (std::vector<double>{10, 4, 100}));
  ASSERT_EQ(viol.size(), 4u);
  for (double v : viol) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_NEAR(p.HourlyCost({10, 4, 100}), 0.615, 1e-12);

  // Violating 2*vms <= shards: 2 shards, 4 VMs.
  p.Evaluate({2, 4, 100}, &obj, &viol);
  EXPECT_GT(viol[2], 0.0);  // 8 - 2 = 6.

  // Violating the budget.
  p.Evaluate({40, 20, 400}, &obj, &viol);
  EXPECT_GT(viol[0], 0.0);
}

TEST(ResourceShareAnalyzerTest, ExhaustiveFrontRespectsAllConstraints) {
  ResourceShareAnalyzer analyzer;
  auto res = analyzer.AnalyzeExhaustive(Fig4Request(2.0));
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res->pareto_plans.empty());
  for (const ProvisioningPlan& p : res->pareto_plans) {
    EXPECT_LE(p.hourly_cost_usd, 2.0 + 1e-9);
    EXPECT_LE(p.ingestion(), 5.0 * p.analytics() + 1e-9);
    EXPECT_LE(2.0 * p.analytics(), p.ingestion() + 1e-9);
    EXPECT_LE(2.0 * p.ingestion(), p.storage() + 1e-9);
  }
}

TEST(ResourceShareAnalyzerTest, Nsga2FrontIsSubsetOfOracle) {
  ResourceShareAnalyzer oracle_analyzer;
  auto oracle = oracle_analyzer.AnalyzeExhaustive(Fig4Request(2.0));
  ASSERT_TRUE(oracle.ok());
  std::set<std::tuple<double, double, double>> oracle_set;
  for (const auto& p : oracle->pareto_plans) {
    oracle_set.insert({p.ingestion(), p.analytics(), p.storage()});
  }

  // Solver quality is a distribution over seeds, so gate on a
  // multi-seed aggregate (plus a per-seed floor) instead of a single
  // seed's draw: a single fixed seed turns any legitimate change to the
  // RNG stream layout into a coin-flip test failure.
  size_t total_plans = 0;
  size_t total_on_front = 0;
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    opt::Nsga2Config solver;
    solver.population_size = 100;
    solver.generations = 150;
    solver.seed = seed;
    ResourceShareAnalyzer analyzer(solver);
    auto res = analyzer.Analyze(Fig4Request(2.0));
    ASSERT_TRUE(res.ok());
    ASSERT_FALSE(res->pareto_plans.empty());
    size_t on_front = 0;
    for (const auto& p : res->pareto_plans) {
      if (oracle_set.count({p.ingestion(), p.analytics(), p.storage()})) {
        ++on_front;
      }
    }
    // Per seed: most returned plans are truly Pareto-optimal, and the
    // solver discovers a sizeable fraction of the 28-point front.
    EXPECT_GE(static_cast<double>(on_front),
              0.7 * static_cast<double>(res->pareto_plans.size()))
        << "seed " << seed;
    EXPECT_GE(res->pareto_plans.size(), oracle->pareto_plans.size() / 3)
        << "seed " << seed;
    total_plans += res->pareto_plans.size();
    total_on_front += on_front;
  }
  // In aggregate, the final fronts are near-exact.
  EXPECT_GE(static_cast<double>(total_on_front),
            0.85 * static_cast<double>(total_plans));
}

TEST(ResourceShareAnalyzerTest, PenaltyHandlingAlsoFindsFeasiblePlans) {
  ResourceShareRequest req = Fig4Request(2.0);
  req.handling = ConstraintHandling::kPenalty;
  opt::Nsga2Config solver;
  solver.population_size = 100;
  solver.generations = 150;
  ResourceShareAnalyzer analyzer(solver);
  auto res = analyzer.Analyze(req);
  ASSERT_TRUE(res.ok());
  for (const ProvisioningPlan& p : res->pareto_plans) {
    EXPECT_LE(p.hourly_cost_usd, 2.0 + 1e-9);
    EXPECT_LE(p.ingestion(), 5.0 * p.analytics() + 1e-9);
  }
}

TEST(ResourceShareAnalyzerTest, TightBudgetShrinksTheFront) {
  ResourceShareAnalyzer analyzer;
  auto rich = analyzer.AnalyzeExhaustive(Fig4Request(2.0));
  auto poor = analyzer.AnalyzeExhaustive(Fig4Request(0.5));
  ASSERT_TRUE(rich.ok());
  ASSERT_TRUE(poor.ok());
  double rich_max = 0.0, poor_max = 0.0;
  for (const auto& p : rich->pareto_plans) {
    rich_max = std::max(rich_max, p.analytics());
  }
  for (const auto& p : poor->pareto_plans) {
    poor_max = std::max(poor_max, p.analytics());
  }
  EXPECT_GT(rich_max, poor_max);
}

TEST(ResourceShareAnalyzerTest, PickBalancedPlanPrefersEvenShares) {
  ResourceShareAnalyzer analyzer;
  auto res = analyzer.AnalyzeExhaustive(Fig4Request(2.0));
  ASSERT_TRUE(res.ok());
  auto plan = ResourceShareAnalyzer::PickBalancedPlan(*res, Fig4Request(2.0));
  ASSERT_TRUE(plan.ok());
  // The balanced plan is a member of the front.
  bool found = false;
  for (const auto& p : res->pareto_plans) {
    if (p.ingestion() == plan->ingestion() &&
        p.analytics() == plan->analytics() &&
        p.storage() == plan->storage()) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ResourceShareAnalyzerTest, MaxSharesDominatesEveryPlan) {
  ResourceShareAnalyzer analyzer;
  auto res = analyzer.AnalyzeExhaustive(Fig4Request(2.0));
  ASSERT_TRUE(res.ok());
  auto max_shares = ResourceShareAnalyzer::MaxShares(*res);
  ASSERT_TRUE(max_shares.ok());
  for (const auto& p : res->pareto_plans) {
    EXPECT_LE(p.ingestion(), max_shares->ingestion());
    EXPECT_LE(p.analytics(), max_shares->analytics());
    EXPECT_LE(p.storage(), max_shares->storage());
  }
}

TEST(ResourceShareAnalyzerTest, EmptyFrontHandling) {
  ResourceShareResult empty;
  EXPECT_FALSE(
      ResourceShareAnalyzer::PickBalancedPlan(empty, Fig4Request()).ok());
  EXPECT_FALSE(ResourceShareAnalyzer::MaxShares(empty).ok());
}

TEST(ResourceShareRequestTest, SetPricesFromBook) {
  pricing::PriceBook book;
  book.SetHourlyPrice(pricing::ResourceKind::kKinesisShard, 0.02);
  ResourceShareRequest req;
  req.SetPricesFrom(book);
  EXPECT_DOUBLE_EQ(req.unit_price[0], 0.02);
  EXPECT_DOUBLE_EQ(req.unit_price[1],
                   book.HourlyPrice(pricing::ResourceKind::kEc2Instance));
}

}  // namespace
}  // namespace flower::core
