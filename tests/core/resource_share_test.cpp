#include "core/resource_share.h"

#include <gtest/gtest.h>

#include <set>

namespace flower::core {
namespace {

// The paper's Fig. 4 scenario: maximize (shards, VMs, WCU) subject to a
// budget and the dependency constraints 5·r_A >= r_I, 2·r_A <= r_I,
// 2·r_I <= r_S.
ResourceShareRequest Fig4Request(double budget = 2.0) {
  ResourceShareRequest req;
  req.hourly_budget_usd = budget;
  req.unit_price[0] = 0.015;    // Shard-hour.
  req.unit_price[1] = 0.10;     // VM-hour.
  req.unit_price[2] = 0.00065;  // WCU-hour.
  req.bounds[0] = {1.0, 40.0};
  req.bounds[1] = {1.0, 20.0};
  req.bounds[2] = {1.0, 400.0};
  req.constraints.push_back(LinearConstraint::AtLeast(
      Layer::kAnalytics, 5.0, Layer::kIngestion, 1.0, "5*vms >= shards"));
  req.constraints.push_back(LinearConstraint::AtMost(
      Layer::kAnalytics, 2.0, Layer::kIngestion, -1.0, 0.0,
      "2*vms <= shards"));
  req.constraints.push_back(LinearConstraint::AtMost(
      Layer::kIngestion, 2.0, Layer::kStorage, -1.0, 0.0,
      "2*shards <= wcu"));
  return req;
}

TEST(LinearConstraintTest, AtLeastEncodesCorrectly) {
  // 5·r_A >= r_I  ⇔  r_I − 5·r_A <= 0.
  auto c = LinearConstraint::AtLeast(Layer::kAnalytics, 5.0,
                                     Layer::kIngestion, 1.0);
  EXPECT_DOUBLE_EQ(c.coeff[0], 1.0);   // Ingestion.
  EXPECT_DOUBLE_EQ(c.coeff[1], -5.0);  // Analytics.
  EXPECT_DOUBLE_EQ(c.rhs, 0.0);
}

TEST(ShareProblemTest, EvaluateComputesViolations) {
  ShareProblem p(Fig4Request(2.0));
  std::vector<double> obj, viol;
  // Feasible point: 10 shards, 4 VMs, 100 WCU.
  // Cost = 0.15 + 0.40 + 0.065 = 0.615 <= 2. Constraints:
  // 10 - 20 <= 0 ok; 8 - 10 <= 0 ok; 20 - 100 <= 0 ok.
  p.Evaluate({10, 4, 100}, &obj, &viol);
  EXPECT_EQ(obj, (std::vector<double>{10, 4, 100}));
  ASSERT_EQ(viol.size(), 4u);
  for (double v : viol) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_NEAR(p.HourlyCost({10, 4, 100}), 0.615, 1e-12);

  // Violating 2*vms <= shards: 2 shards, 4 VMs.
  p.Evaluate({2, 4, 100}, &obj, &viol);
  EXPECT_GT(viol[2], 0.0);  // 8 - 2 = 6.

  // Violating the budget.
  p.Evaluate({40, 20, 400}, &obj, &viol);
  EXPECT_GT(viol[0], 0.0);
}

TEST(ResourceShareAnalyzerTest, ExhaustiveFrontRespectsAllConstraints) {
  ResourceShareAnalyzer analyzer;
  auto res = analyzer.AnalyzeExhaustive(Fig4Request(2.0));
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res->pareto_plans.empty());
  for (const ProvisioningPlan& p : res->pareto_plans) {
    EXPECT_LE(p.hourly_cost_usd, 2.0 + 1e-9);
    EXPECT_LE(p.ingestion(), 5.0 * p.analytics() + 1e-9);
    EXPECT_LE(2.0 * p.analytics(), p.ingestion() + 1e-9);
    EXPECT_LE(2.0 * p.ingestion(), p.storage() + 1e-9);
  }
}

TEST(ResourceShareAnalyzerTest, Nsga2FrontIsSubsetOfOracle) {
  ResourceShareAnalyzer oracle_analyzer;
  auto oracle = oracle_analyzer.AnalyzeExhaustive(Fig4Request(2.0));
  ASSERT_TRUE(oracle.ok());
  std::set<std::tuple<double, double, double>> oracle_set;
  for (const auto& p : oracle->pareto_plans) {
    oracle_set.insert({p.ingestion(), p.analytics(), p.storage()});
  }

  // Solver quality is a distribution over seeds, so gate on a
  // multi-seed aggregate (plus a per-seed floor) instead of a single
  // seed's draw: a single fixed seed turns any legitimate change to the
  // RNG stream layout into a coin-flip test failure.
  size_t total_plans = 0;
  size_t total_on_front = 0;
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    opt::Nsga2Config solver;
    solver.population_size = 100;
    solver.generations = 150;
    solver.seed = seed;
    ResourceShareAnalyzer analyzer(solver);
    auto res = analyzer.Analyze(Fig4Request(2.0));
    ASSERT_TRUE(res.ok());
    ASSERT_FALSE(res->pareto_plans.empty());
    size_t on_front = 0;
    for (const auto& p : res->pareto_plans) {
      if (oracle_set.count({p.ingestion(), p.analytics(), p.storage()})) {
        ++on_front;
      }
    }
    // Per seed: most returned plans are truly Pareto-optimal, and the
    // solver discovers a sizeable fraction of the 28-point front.
    EXPECT_GE(static_cast<double>(on_front),
              0.7 * static_cast<double>(res->pareto_plans.size()))
        << "seed " << seed;
    EXPECT_GE(res->pareto_plans.size(), oracle->pareto_plans.size() / 3)
        << "seed " << seed;
    total_plans += res->pareto_plans.size();
    total_on_front += on_front;
  }
  // In aggregate, the final fronts are near-exact.
  EXPECT_GE(static_cast<double>(total_on_front),
            0.85 * static_cast<double>(total_plans));
}

TEST(ResourceShareAnalyzerTest, PenaltyHandlingAlsoFindsFeasiblePlans) {
  ResourceShareRequest req = Fig4Request(2.0);
  req.handling = ConstraintHandling::kPenalty;
  opt::Nsga2Config solver;
  solver.population_size = 100;
  solver.generations = 150;
  ResourceShareAnalyzer analyzer(solver);
  auto res = analyzer.Analyze(req);
  ASSERT_TRUE(res.ok());
  for (const ProvisioningPlan& p : res->pareto_plans) {
    EXPECT_LE(p.hourly_cost_usd, 2.0 + 1e-9);
    EXPECT_LE(p.ingestion(), 5.0 * p.analytics() + 1e-9);
  }
}

TEST(ResourceShareAnalyzerTest, TightBudgetShrinksTheFront) {
  ResourceShareAnalyzer analyzer;
  auto rich = analyzer.AnalyzeExhaustive(Fig4Request(2.0));
  auto poor = analyzer.AnalyzeExhaustive(Fig4Request(0.5));
  ASSERT_TRUE(rich.ok());
  ASSERT_TRUE(poor.ok());
  double rich_max = 0.0, poor_max = 0.0;
  for (const auto& p : rich->pareto_plans) {
    rich_max = std::max(rich_max, p.analytics());
  }
  for (const auto& p : poor->pareto_plans) {
    poor_max = std::max(poor_max, p.analytics());
  }
  EXPECT_GT(rich_max, poor_max);
}

TEST(ResourceShareAnalyzerTest, PickBalancedPlanPrefersEvenShares) {
  ResourceShareAnalyzer analyzer;
  auto res = analyzer.AnalyzeExhaustive(Fig4Request(2.0));
  ASSERT_TRUE(res.ok());
  auto plan = ResourceShareAnalyzer::PickBalancedPlan(*res, Fig4Request(2.0));
  ASSERT_TRUE(plan.ok());
  // The balanced plan is a member of the front.
  bool found = false;
  for (const auto& p : res->pareto_plans) {
    if (p.ingestion() == plan->ingestion() &&
        p.analytics() == plan->analytics() &&
        p.storage() == plan->storage()) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ResourceShareAnalyzerTest, MaxSharesDominatesEveryPlan) {
  ResourceShareAnalyzer analyzer;
  auto res = analyzer.AnalyzeExhaustive(Fig4Request(2.0));
  ASSERT_TRUE(res.ok());
  auto max_shares = ResourceShareAnalyzer::MaxShares(*res);
  ASSERT_TRUE(max_shares.ok());
  for (const auto& p : res->pareto_plans) {
    EXPECT_LE(p.ingestion(), max_shares->ingestion());
    EXPECT_LE(p.analytics(), max_shares->analytics());
    EXPECT_LE(p.storage(), max_shares->storage());
  }
}

TEST(ResourceShareAnalyzerTest, EmptyFrontHandling) {
  ResourceShareResult empty;
  EXPECT_FALSE(
      ResourceShareAnalyzer::PickBalancedPlan(empty, Fig4Request()).ok());
  EXPECT_FALSE(ResourceShareAnalyzer::MaxShares(empty).ok());
}

TEST(ResourceShareRequestTest, SetPricesFromBook) {
  pricing::PriceBook book;
  book.SetHourlyPrice(pricing::ResourceKind::kKinesisShard, 0.02);
  ResourceShareRequest req;
  req.SetPricesFrom(book);
  EXPECT_DOUBLE_EQ(req.unit_price[0], 0.02);
  EXPECT_DOUBLE_EQ(req.unit_price[1],
                   book.HourlyPrice(pricing::ResourceKind::kEc2Instance));
}

opt::Nsga2Config SmallSolver(uint64_t seed = 42) {
  opt::Nsga2Config solver;
  solver.population_size = 40;
  solver.generations = 40;
  solver.seed = seed;
  return solver;
}

TEST(IncrementalPlanningTest, DefaultKnobsMatchColdAnalyze) {
  // With every incremental knob off, AnalyzeIncremental is Analyze plus
  // counter upkeep — byte-identical plans.
  ResourceShareAnalyzer cold(SmallSolver());
  ResourceShareAnalyzer inc(SmallSolver(), IncrementalPlanning{});
  auto a = cold.Analyze(Fig4Request(2.0));
  auto b = inc.AnalyzeIncremental(Fig4Request(2.0));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->pareto_plans.size(), b->pareto_plans.size());
  for (size_t i = 0; i < a->pareto_plans.size(); ++i) {
    for (int l = 0; l < kNumLayers; ++l) {
      EXPECT_EQ(a->pareto_plans[i].shares[l], b->pareto_plans[i].shares[l]);
    }
  }
  EXPECT_EQ(a->evaluations, b->evaluations);
  EXPECT_FALSE(b->cache_hit);
  EXPECT_EQ(inc.counters().cache_hits, 0u);
  EXPECT_EQ(inc.counters().warm_starts, 0u);
}

TEST(IncrementalPlanningTest, CacheHitSkipsTheSolver) {
  IncrementalPlanning knobs;
  knobs.cache = true;
  ResourceShareAnalyzer analyzer(SmallSolver(), knobs);

  auto first = analyzer.AnalyzeIncremental(Fig4Request(2.0));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);
  EXPECT_GT(first->evaluations, 0u);
  EXPECT_EQ(analyzer.counters().cache_misses, 1u);
  EXPECT_EQ(analyzer.counters().cache_hits, 0u);
  uint64_t evals_after_first = analyzer.counters().evaluations;

  auto second = analyzer.AnalyzeIncremental(Fig4Request(2.0));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->evaluations, 0u);  // No solver run at all.
  EXPECT_EQ(analyzer.counters().cache_hits, 1u);
  EXPECT_EQ(analyzer.counters().cache_misses, 1u);
  // A hit spends no objective evaluations.
  EXPECT_EQ(analyzer.counters().evaluations, evals_after_first);
  // And serves the identical front.
  ASSERT_EQ(first->pareto_plans.size(), second->pareto_plans.size());
  for (size_t i = 0; i < first->pareto_plans.size(); ++i) {
    for (int l = 0; l < kNumLayers; ++l) {
      EXPECT_EQ(first->pareto_plans[i].shares[l],
                second->pareto_plans[i].shares[l]);
    }
  }
}

TEST(IncrementalPlanningTest, AnyFingerprintFieldChangeForcesAMiss) {
  // Every result-affecting field of (request, solver) must alter the
  // canonical fingerprint; each mutator below flips exactly one field.
  const ResourceShareRequest base_req = Fig4Request(2.0);
  const opt::Nsga2Config base_solver = SmallSolver();
  const std::string base = ResourceShareAnalyzer::Fingerprint(
      base_req, base_solver);

  struct Mutation {
    const char* what;
    std::function<void(ResourceShareRequest*, opt::Nsga2Config*)> apply;
  };
  std::vector<Mutation> mutations = {
      {"budget", [](ResourceShareRequest* r, opt::Nsga2Config*) {
         r->hourly_budget_usd += 0.5;
       }},
      {"handling", [](ResourceShareRequest* r, opt::Nsga2Config*) {
         r->handling = ConstraintHandling::kPenalty;
       }},
      {"penalty_weight", [](ResourceShareRequest* r, opt::Nsga2Config*) {
         r->penalty_weight *= 2.0;
       }},
      {"constraint added", [](ResourceShareRequest* r, opt::Nsga2Config*) {
         r->constraints.push_back(LinearConstraint::AtMost(
             Layer::kIngestion, 1.0, Layer::kAnalytics, 0.0, 30.0));
       }},
      {"constraint coeff", [](ResourceShareRequest* r, opt::Nsga2Config*) {
         r->constraints[0].coeff[0] += 1.0;
       }},
      {"constraint rhs", [](ResourceShareRequest* r, opt::Nsga2Config*) {
         r->constraints[0].rhs += 1.0;
       }},
      {"solver seed", [](ResourceShareRequest*, opt::Nsga2Config* s) {
         s->seed += 1;
       }},
      {"population", [](ResourceShareRequest*, opt::Nsga2Config* s) {
         s->population_size += 2;
       }},
      {"generations", [](ResourceShareRequest*, opt::Nsga2Config* s) {
         s->generations += 1;
       }},
      {"crossover_prob", [](ResourceShareRequest*, opt::Nsga2Config* s) {
         s->crossover_prob *= 0.5;
       }},
      {"mutation_prob", [](ResourceShareRequest*, opt::Nsga2Config* s) {
         s->mutation_prob = 0.25;
       }},
      {"eta_crossover", [](ResourceShareRequest*, opt::Nsga2Config* s) {
         s->eta_crossover += 1.0;
       }},
      {"eta_mutation", [](ResourceShareRequest*, opt::Nsga2Config* s) {
         s->eta_mutation += 1.0;
       }},
      {"stall_generations", [](ResourceShareRequest*, opt::Nsga2Config* s) {
         s->stall_generations = 7;
       }},
      {"stall_tolerance", [](ResourceShareRequest*, opt::Nsga2Config* s) {
         s->stall_tolerance *= 10.0;
       }},
  };
  for (int layer = 0; layer < kNumLayers; ++layer) {
    mutations.push_back({"unit price", [layer](ResourceShareRequest* r,
                                               opt::Nsga2Config*) {
                           r->unit_price[layer] *= 1.5;
                         }});
    mutations.push_back({"bound min", [layer](ResourceShareRequest* r,
                                              opt::Nsga2Config*) {
                           r->bounds[layer].min += 1.0;
                         }});
    mutations.push_back({"bound max", [layer](ResourceShareRequest* r,
                                              opt::Nsga2Config*) {
                           r->bounds[layer].max -= 1.0;
                         }});
  }
  for (const Mutation& m : mutations) {
    ResourceShareRequest req = base_req;
    opt::Nsga2Config solver = base_solver;
    m.apply(&req, &solver);
    EXPECT_NE(ResourceShareAnalyzer::Fingerprint(req, solver), base)
        << m.what << " must change the fingerprint";
  }
}

TEST(IncrementalPlanningTest, FingerprintIgnoresNonResultFields) {
  // num_threads (thread-count-invariant results), the observer, and the
  // seed population deliberately do not key the cache.
  const ResourceShareRequest req = Fig4Request(2.0);
  opt::Nsga2Config solver = SmallSolver();
  const std::string base = ResourceShareAnalyzer::Fingerprint(req, solver);
  solver.num_threads = 8;
  solver.on_generation = [](const opt::Nsga2GenerationStats&) {};
  solver.seed_population.push_back({1.0, 1.0, 1.0});
  EXPECT_EQ(ResourceShareAnalyzer::Fingerprint(req, solver), base);
}

TEST(IncrementalPlanningTest, ChangedRequestInvalidatesTheCache) {
  IncrementalPlanning knobs;
  knobs.cache = true;
  ResourceShareAnalyzer analyzer(SmallSolver(), knobs);
  ASSERT_TRUE(analyzer.AnalyzeIncremental(Fig4Request(2.0)).ok());
  // A different budget must miss...
  auto res = analyzer.AnalyzeIncremental(Fig4Request(2.5));
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->cache_hit);
  EXPECT_EQ(analyzer.counters().cache_misses, 2u);
  // ...and re-prime the cache for the new request.
  auto again = analyzer.AnalyzeIncremental(Fig4Request(2.5));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->cache_hit);
  // The original request now misses again (single-entry cache).
  auto back = analyzer.AnalyzeIncremental(Fig4Request(2.0));
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back->cache_hit);
}

TEST(IncrementalPlanningTest, WarmStartCountsAndStaysFeasible) {
  IncrementalPlanning knobs;
  knobs.warm_start = true;
  knobs.stall_generations = 4;
  ResourceShareAnalyzer analyzer(SmallSolver(), knobs);

  auto first = analyzer.AnalyzeIncremental(Fig4Request(2.0));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(analyzer.counters().warm_starts, 0u);  // Nothing to seed yet.
  ASSERT_FALSE(first->final_population.empty());

  // Second period: seeded from the first's final population. The front
  // must still satisfy every constraint.
  auto second = analyzer.AnalyzeIncremental(Fig4Request(2.0));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(analyzer.counters().warm_starts, 1u);
  ASSERT_FALSE(second->pareto_plans.empty());
  for (const ProvisioningPlan& p : second->pareto_plans) {
    EXPECT_LE(p.hourly_cost_usd, 2.0 + 1e-9);
    EXPECT_LE(p.ingestion(), 5.0 * p.analytics() + 1e-9);
    EXPECT_LE(2.0 * p.analytics(), p.ingestion() + 1e-9);
    EXPECT_LE(2.0 * p.ingestion(), p.storage() + 1e-9);
  }
  if (second->early_exit) {
    EXPECT_GE(analyzer.counters().early_exits, 1u);
  }
}

TEST(IncrementalPlanningTest, PerScopeCacheSurvivesTenantInterleaving) {
  // Two tenants with different budgets share one analyzer. Before the
  // cache was keyed per scope their alternating requests thrashed the
  // single memo entry — every call missed — and each tenant's warm
  // start was seeded with the *other* tenant's front.
  IncrementalPlanning knobs;
  knobs.cache = true;
  knobs.warm_start = true;
  ResourceShareAnalyzer analyzer(SmallSolver(), knobs);

  auto a1 = analyzer.AnalyzeIncremental(Fig4Request(2.0), "tenant-a");
  auto b1 = analyzer.AnalyzeIncremental(Fig4Request(2.5), "tenant-b");
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(b1.ok());
  EXPECT_FALSE(a1->cache_hit);
  EXPECT_FALSE(b1->cache_hit);

  // Second round of the interleave: both tenants hit their own memo.
  auto a2 = analyzer.AnalyzeIncremental(Fig4Request(2.0), "tenant-a");
  auto b2 = analyzer.AnalyzeIncremental(Fig4Request(2.5), "tenant-b");
  ASSERT_TRUE(a2.ok());
  ASSERT_TRUE(b2.ok());
  EXPECT_TRUE(a2->cache_hit);
  EXPECT_TRUE(b2->cache_hit);
  EXPECT_EQ(analyzer.counters().cache_hits, 2u);
  EXPECT_EQ(analyzer.counters().cache_misses, 2u);

  // Each hit serves its own tenant's front, not the other's.
  ASSERT_EQ(a2->pareto_plans.size(), a1->pareto_plans.size());
  for (size_t i = 0; i < a1->pareto_plans.size(); ++i) {
    for (int l = 0; l < kNumLayers; ++l) {
      EXPECT_EQ(a2->pareto_plans[i].shares[l], a1->pareto_plans[i].shares[l]);
    }
  }
  for (const ProvisioningPlan& p : a2->pareto_plans) {
    EXPECT_LE(p.hourly_cost_usd, 2.0 + 1e-9);  // Tenant a's budget.
  }
}

TEST(IncrementalPlanningTest, ScopedWarmStartMatchesDedicatedAnalyzer) {
  // A shared analyzer interleaving two scopes must produce, per scope,
  // exactly what a dedicated analyzer run in isolation produces: the
  // warm-start population never leaks across tenants.
  IncrementalPlanning knobs;
  knobs.warm_start = true;
  ResourceShareAnalyzer shared(SmallSolver(), knobs);
  ResourceShareAnalyzer dedicated(SmallSolver(), knobs);

  ASSERT_TRUE(shared.AnalyzeIncremental(Fig4Request(2.0), "a").ok());
  ASSERT_TRUE(shared.AnalyzeIncremental(Fig4Request(2.5), "b").ok());
  auto shared_second = shared.AnalyzeIncremental(Fig4Request(2.0), "a");
  ASSERT_TRUE(shared_second.ok());

  ASSERT_TRUE(dedicated.AnalyzeIncremental(Fig4Request(2.0)).ok());
  auto dedicated_second = dedicated.AnalyzeIncremental(Fig4Request(2.0));
  ASSERT_TRUE(dedicated_second.ok());

  ASSERT_EQ(shared_second->pareto_plans.size(),
            dedicated_second->pareto_plans.size());
  for (size_t i = 0; i < shared_second->pareto_plans.size(); ++i) {
    for (int l = 0; l < kNumLayers; ++l) {
      EXPECT_EQ(shared_second->pareto_plans[i].shares[l],
                dedicated_second->pareto_plans[i].shares[l]);
    }
  }
}

TEST(IncrementalPlanningTest, MetricsRegistryMirrorsCounters) {
  obs::MetricsRegistry registry;
  IncrementalPlanning knobs;
  knobs.cache = true;
  knobs.warm_start = true;
  ResourceShareAnalyzer analyzer(SmallSolver(), knobs);
  analyzer.SetMetricsRegistry(&registry);
  ASSERT_TRUE(analyzer.AnalyzeIncremental(Fig4Request(2.0)).ok());
  ASSERT_TRUE(analyzer.AnalyzeIncremental(Fig4Request(2.0)).ok());
  EXPECT_EQ(registry.GetCounter("planner.cache_misses")->Value(),
            analyzer.counters().cache_misses);
  EXPECT_EQ(registry.GetCounter("planner.cache_hits")->Value(),
            analyzer.counters().cache_hits);
  EXPECT_EQ(registry.GetCounter("planner.evaluations")->Value(),
            analyzer.counters().evaluations);
  EXPECT_EQ(registry.GetCounter("planner.cache_hits")->Value(), 1u);
}

}  // namespace
}  // namespace flower::core
