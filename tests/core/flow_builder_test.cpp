#include "core/flow_builder.h"

#include <gtest/gtest.h>

namespace flower::core {
namespace {

flow::FlowConfig SmallFlow() {
  flow::FlowConfig cfg;
  cfg.stream.initial_shards = 2;
  cfg.stream.max_shards = 64;
  cfg.initial_workers = 2;
  cfg.instance_type = {"test.vm", 2, 1.0e6, 0.10};
  cfg.table.initial_wcu = 100.0;
  cfg.table.max_wcu = 5000.0;
  return cfg;
}

TEST(FlowBuilderTest, RequiresMetricStore) {
  sim::Simulation sim;
  EXPECT_FALSE(FlowBuilder().Build(&sim, nullptr).ok());
}

TEST(FlowBuilderTest, BuildsManagedFlowWithAllLayers) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  auto mf = FlowBuilder()
                .WithFlowConfig(SmallFlow())
                .WithWorkload(std::make_shared<workload::ConstantArrival>(500.0))
                .Build(&sim, &metrics);
  ASSERT_TRUE(mf.ok());
  EXPECT_TRUE(mf->manager->IsAttached(Layer::kIngestion));
  EXPECT_TRUE(mf->manager->IsAttached(Layer::kAnalytics));
  EXPECT_TRUE(mf->manager->IsAttached(Layer::kStorage));
  EXPECT_NE(mf->flow->generator(), nullptr);
}

TEST(FlowBuilderTest, DisabledLayerNotAttached) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  LayerElasticityConfig storage;
  storage.enabled = false;
  auto mf = FlowBuilder()
                .WithFlowConfig(SmallFlow())
                .WithStorage(storage)
                .Build(&sim, &metrics);
  ASSERT_TRUE(mf.ok());
  EXPECT_TRUE(mf->manager->IsAttached(Layer::kIngestion));
  EXPECT_FALSE(mf->manager->IsAttached(Layer::kStorage));
}

TEST(FlowBuilderTest, InvalidReferenceRejected) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  LayerElasticityConfig bad;
  bad.reference_utilization_pct = 150.0;
  EXPECT_FALSE(FlowBuilder()
                   .WithFlowConfig(SmallFlow())
                   .WithAnalytics(bad)
                   .Build(&sim, &metrics)
                   .ok());
}

TEST(FlowBuilderTest, ControllerKindAppliedToAllLayers) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  auto mf = FlowBuilder()
                .WithFlowConfig(SmallFlow())
                .WithControllerKind(ControllerKind::kRuleBased)
                .Build(&sim, &metrics);
  ASSERT_TRUE(mf.ok());
  for (Layer layer :
       {Layer::kIngestion, Layer::kAnalytics, Layer::kStorage}) {
    auto c = mf->manager->GetController(layer);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ((*c)->name(), "rule-based");
  }
}

TEST(FlowBuilderTest, FeedforwardKindWiresArrivalDriver) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  auto mf = FlowBuilder()
                .WithFlowConfig(SmallFlow())
                .WithControllerKind(ControllerKind::kFeedforward)
                .WithWorkload(
                    std::make_shared<workload::ConstantArrival>(800.0))
                .WithSeed(11)
                .Build(&sim, &metrics);
  ASSERT_TRUE(mf.ok());
  // Analytics and ingestion run the feedforward controller; storage
  // falls back to adaptive-gain (the §3.1 negative finding: arrivals do
  // not predict storage writes for this flow).
  EXPECT_EQ((*mf->manager->GetController(Layer::kAnalytics))->name(),
            "feedforward");
  EXPECT_EQ((*mf->manager->GetController(Layer::kIngestion))->name(),
            "feedforward");
  EXPECT_EQ((*mf->manager->GetController(Layer::kStorage))->name(),
            "adaptive-gain");
  sim.RunUntil(2.0 * kHour);
  // The driver (Kinesis IncomingRecords) is live, so the controller
  // should track without driver misses after warmup, and utilization
  // should settle near the 60% reference.
  auto state = mf->manager->GetState(Layer::kAnalytics);
  ASSERT_TRUE(state.ok());
  auto tail = (*state)->sensed.Window(kHour, 2.0 * kHour);
  ASSERT_GT(tail.size(), 10u);
  double sum = 0.0;
  for (const Sample& s : tail.samples()) sum += s.value;
  EXPECT_NEAR(sum / static_cast<double>(tail.size()), 60.0, 15.0);
}

TEST(FlowBuilderTest, ManagedFlowActuallyScalesUnderLoad) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  flow::FlowConfig cfg = SmallFlow();
  cfg.initial_workers = 1;
  LayerElasticityConfig analytics;
  analytics.max_resource = 20.0;
  auto mf = FlowBuilder()
                .WithFlowConfig(cfg)
                .WithAnalytics(analytics)
                .WithWorkload(
                    std::make_shared<workload::ConstantArrival>(1500.0))
                .WithSeed(9)
                .Build(&sim, &metrics);
  ASSERT_TRUE(mf.ok());
  // 1500 rec/s * ~4800 wu/record ≈ 7.2M wu/s demand vs 0.9M per
  // worker: the analytics controller must scale out well beyond one VM.
  sim.RunUntil(3600.0);
  EXPECT_GT(mf->flow->cluster().worker_count(), 3);
  auto state = mf->manager->GetState(Layer::kAnalytics);
  ASSERT_TRUE(state.ok());
  EXPECT_GT((*state)->actuations.size(), 10u);
}

}  // namespace
}  // namespace flower::core
