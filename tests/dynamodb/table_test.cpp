#include "dynamodb/table.h"

#include <gtest/gtest.h>

namespace flower::dynamodb {
namespace {

TableConfig TestConfig(double wcu = 10.0, double rcu = 10.0) {
  TableConfig cfg;
  cfg.name = "aggregates";
  cfg.initial_wcu = wcu;
  cfg.initial_rcu = rcu;
  cfg.min_wcu = 1.0;
  cfg.max_wcu = 1000.0;
  cfg.min_rcu = 1.0;
  cfg.max_rcu = 1000.0;
  cfg.provisioning_delay_sec = 30.0;
  cfg.burst_window_sec = 1.0;  // Tight burst for predictable tests.
  return cfg;
}

TEST(TableTest, PutAndGetItemRoundTrip) {
  sim::Simulation sim;
  Table table(&sim, nullptr, TestConfig());
  ASSERT_TRUE(table.PutItem(42, "hello", 100).ok());
  auto v = table.GetItem(42, 100);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "hello");
  EXPECT_EQ(table.ItemCount(), 1u);
}

TEST(TableTest, OverwriteKeepsSingleItem) {
  sim::Simulation sim;
  Table table(&sim, nullptr, TestConfig());
  ASSERT_TRUE(table.PutItem(1, "a", 100).ok());
  ASSERT_TRUE(table.PutItem(1, "b", 100).ok());
  EXPECT_EQ(table.ItemCount(), 1u);
  EXPECT_EQ(*table.GetItem(1, 100), "b");
}

TEST(TableTest, MissingKeyIsNotFound) {
  sim::Simulation sim;
  Table table(&sim, nullptr, TestConfig());
  EXPECT_EQ(table.GetItem(9, 100).status().code(), StatusCode::kNotFound);
}

TEST(TableTest, InvalidSizesRejected) {
  sim::Simulation sim;
  Table table(&sim, nullptr, TestConfig());
  EXPECT_FALSE(table.PutItem(1, "x", 0).ok());
  EXPECT_FALSE(table.GetItem(1, -5).ok());
}

TEST(TableTest, WritesThrottleBeyondProvisionedCapacity) {
  sim::Simulation sim;
  Table table(&sim, nullptr, TestConfig(10.0));
  // Burst window 1 s → 10 banked WCU; small items cost 1 WCU each.
  int ok = 0, throttled = 0;
  for (int i = 0; i < 30; ++i) {
    Status st = table.PutItem(i, "v", 100);
    if (st.ok()) ++ok;
    else if (st.IsThrottled()) ++throttled;
  }
  EXPECT_EQ(ok, 10);
  EXPECT_EQ(throttled, 20);
  EXPECT_EQ(table.total_throttled_writes(), 20u);
}

TEST(TableTest, LargeItemsConsumeMoreCapacity) {
  sim::Simulation sim;
  Table table(&sim, nullptr, TestConfig(10.0));
  // A 3.5 KiB item costs ceil(3.5) = 4 WCU.
  ASSERT_TRUE(table.PutItem(1, "big", 3584).ok());
  ASSERT_TRUE(table.PutItem(2, "big", 3584).ok());
  // 8 consumed; a third 4-WCU write exceeds the 10 banked.
  EXPECT_TRUE(table.PutItem(3, "big", 3584).IsThrottled());
}

TEST(TableTest, ReadsUse4KiBUnits) {
  sim::Simulation sim;
  Table table(&sim, nullptr, TestConfig(10.0, 2.0));
  ASSERT_TRUE(table.PutItem(1, "v", 100).ok());
  // 2 banked RCU; an 8 KiB read costs 2 RCU.
  ASSERT_TRUE(table.GetItem(1, 8192).ok());
  EXPECT_TRUE(table.GetItem(1, 100).status().IsThrottled());
}

TEST(TableTest, TokensRefillAtProvisionedRate) {
  sim::Simulation sim;
  Table table(&sim, nullptr, TestConfig(10.0));
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(table.PutItem(i, "v", 100).ok());
  EXPECT_TRUE(table.PutItem(99, "v", 100).IsThrottled());
  sim.RunUntil(0.5);  // Refills 5 WCU.
  int ok = 0;
  for (int i = 0; i < 10; ++i) {
    if (table.PutItem(100 + i, "v", 100).ok()) ++ok;
  }
  EXPECT_EQ(ok, 5);
}

TEST(TableTest, UpdateItemAddImplementsAtomicCounter) {
  sim::Simulation sim;
  Table table(&sim, nullptr, TestConfig(100.0));
  auto v1 = table.UpdateItemAdd(7, 3.0, 100);
  ASSERT_TRUE(v1.ok());
  EXPECT_DOUBLE_EQ(*v1, 3.0);  // Missing item starts from 0.
  auto v2 = table.UpdateItemAdd(7, 2.5, 100);
  ASSERT_TRUE(v2.ok());
  EXPECT_DOUBLE_EQ(*v2, 5.5);
  auto stored = table.GetItem(7, 100);
  ASSERT_TRUE(stored.ok());
  EXPECT_DOUBLE_EQ(std::stod(*stored), 5.5);
}

TEST(TableTest, UpdateItemAddConsumesWriteCapacity) {
  sim::Simulation sim;
  Table table(&sim, nullptr, TestConfig(5.0));
  int ok = 0;
  for (int i = 0; i < 10; ++i) {
    if (table.UpdateItemAdd(1, 1.0, 100).ok()) ++ok;
  }
  EXPECT_EQ(ok, 5);  // 5 banked WCU (1 s burst window).
}

TEST(TableTest, UpdateItemAddRejectsNonNumericExisting) {
  sim::Simulation sim;
  Table table(&sim, nullptr, TestConfig(100.0));
  ASSERT_TRUE(table.PutItem(9, "not-a-number", 100).ok());
  EXPECT_EQ(table.UpdateItemAdd(9, 1.0, 100).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(TableTest, DeleteItemIsIdempotentAndBilled) {
  sim::Simulation sim;
  Table table(&sim, nullptr, TestConfig(100.0));
  ASSERT_TRUE(table.PutItem(1, "v", 100).ok());
  EXPECT_EQ(table.ItemCount(), 1u);
  ASSERT_TRUE(table.DeleteItem(1, 100).ok());
  EXPECT_EQ(table.ItemCount(), 0u);
  ASSERT_TRUE(table.DeleteItem(1, 100).ok());  // Missing key: still OK.
  EXPECT_EQ(table.GetItem(1, 100).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(table.total_writes(), 3u);  // All three consumed capacity.
}

TEST(TableTest, DeleteItemThrottlesWithoutCapacity) {
  sim::Simulation sim;
  Table table(&sim, nullptr, TestConfig(2.0));
  ASSERT_TRUE(table.PutItem(1, "v", 100).ok());
  ASSERT_TRUE(table.PutItem(2, "v", 100).ok());
  EXPECT_TRUE(table.DeleteItem(1, 100).IsThrottled());
}

TEST(TableTest, ProvisioningChangeAppliesAfterDelay) {
  sim::Simulation sim;
  Table table(&sim, nullptr, TestConfig(10.0));
  ASSERT_TRUE(table.SetProvisionedThroughput(100.0, 10.0).ok());
  EXPECT_TRUE(table.provisioning_in_flight());
  EXPECT_DOUBLE_EQ(table.provisioned_wcu(), 10.0);
  sim.RunUntil(31.0);
  EXPECT_DOUBLE_EQ(table.provisioned_wcu(), 100.0);
  EXPECT_FALSE(table.provisioning_in_flight());
}

TEST(TableTest, ProvisioningBoundsEnforced) {
  sim::Simulation sim;
  Table table(&sim, nullptr, TestConfig());
  EXPECT_FALSE(table.SetProvisionedThroughput(0.5, 10.0).ok());
  EXPECT_FALSE(table.SetProvisionedThroughput(10.0, 2000.0).ok());
}

TEST(TableTest, DailyDecreaseLimit) {
  sim::Simulation sim;
  TableConfig cfg = TestConfig(100.0);
  cfg.max_decreases_per_day = 2;
  Table table(&sim, nullptr, cfg);
  ASSERT_TRUE(table.SetProvisionedThroughput(90.0, 10.0).ok());
  sim.RunUntil(40.0);
  ASSERT_TRUE(table.SetProvisionedThroughput(80.0, 10.0).ok());
  sim.RunUntil(80.0);
  // Third decrease within the same simulated day: rejected.
  Status st = table.SetProvisionedThroughput(70.0, 10.0);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  // Increases are always allowed.
  EXPECT_TRUE(table.SetProvisionedThroughput(200.0, 10.0).ok());
}

TEST(TableTest, DecreaseLimitResetsNextDay) {
  sim::Simulation sim;
  TableConfig cfg = TestConfig(100.0);
  cfg.max_decreases_per_day = 1;
  Table table(&sim, nullptr, cfg);
  ASSERT_TRUE(table.SetProvisionedThroughput(90.0, 10.0).ok());
  sim.RunUntil(40.0);
  EXPECT_FALSE(table.SetProvisionedThroughput(80.0, 10.0).ok());
  sim.RunUntil(86401.0);  // Next simulated day.
  EXPECT_TRUE(table.SetProvisionedThroughput(80.0, 10.0).ok());
}

TEST(TableTest, SupersedingProvisioningChangeWins) {
  sim::Simulation sim;
  Table table(&sim, nullptr, TestConfig(10.0));
  ASSERT_TRUE(table.SetProvisionedThroughput(100.0, 10.0).ok());
  sim.RunUntil(10.0);
  ASSERT_TRUE(table.SetProvisionedThroughput(50.0, 10.0).ok());
  sim.RunUntil(100.0);
  EXPECT_DOUBLE_EQ(table.provisioned_wcu(), 50.0);
}

TEST(TableTest, PublishesMetrics) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  TableConfig cfg = TestConfig(20.0);
  cfg.metrics_period_sec = 60.0;
  Table table(&sim, &metrics, cfg);
  ASSERT_TRUE(sim.SchedulePeriodic(1.0, 1.0, [&] {
    for (int i = 0; i < 10; ++i) {
      (void)table.PutItem(i, "v", 100);
    }
    return sim.Now() < 300.0;
  }).ok());
  sim.RunUntil(301.0);
  cloudwatch::MetricId util{"Flower/DynamoDB", "WriteUtilization",
                            "aggregates"};
  auto u = metrics.GetStatistic(util, 0, 301,
                                cloudwatch::Statistic::kAverage);
  ASSERT_TRUE(u.ok());
  EXPECT_NEAR(*u, 50.0, 5.0);  // 10 WCU/s consumed of 20 provisioned.
  cloudwatch::MetricId items{"Flower/DynamoDB", "ItemCount", "aggregates"};
  EXPECT_GT(*metrics.GetStatistic(items, 0, 301,
                                  cloudwatch::Statistic::kMaximum),
            5.0);
}

}  // namespace
}  // namespace flower::dynamodb
