#include "obs/rollup.h"

#include <gtest/gtest.h>

#include <cmath>

#include "obs/metrics_registry.h"

namespace flower::obs {
namespace {

RollupConfig SmallConfig() {
  RollupConfig cfg;
  cfg.base_period_sec = 1.0;
  cfg.slots_per_tier = 10;
  cfg.tier_multiples = {1, 10, 60};
  return cfg;
}

TEST(RollupStoreTest, GaugeWindowAggregates) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("util");
  RollupStore store(&registry, SmallConfig());
  store.TrackGauge("util");
  for (int i = 1; i <= 8; ++i) {
    g->Set(10.0 * i);
    store.Tick(static_cast<double>(i));
  }
  auto last = store.Query("util", {}, 4.0, RollupAgg::kLast);
  ASSERT_TRUE(last.ok()) << last.status();
  EXPECT_DOUBLE_EQ(*last, 80.0);
  // Window (4, 8]: samples 50, 60, 70, 80.
  EXPECT_DOUBLE_EQ(*store.Query("util", {}, 4.0, RollupAgg::kMean), 65.0);
  EXPECT_DOUBLE_EQ(*store.Query("util", {}, 4.0, RollupAgg::kMin), 50.0);
  EXPECT_DOUBLE_EQ(*store.Query("util", {}, 4.0, RollupAgg::kMax), 80.0);
  EXPECT_DOUBLE_EQ(*store.Query("util", {}, 4.0, RollupAgg::kSum), 260.0);
}

TEST(RollupStoreTest, CounterDeltaAndRate) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("events");
  RollupStore store(&registry, SmallConfig());
  size_t id = store.TrackCounter("events");
  for (int i = 1; i <= 10; ++i) {
    c->Increment(5);  // 5 events per second.
    store.Tick(static_cast<double>(i));
  }
  auto delta = store.Query(id, 4.0, RollupAgg::kDelta);
  ASSERT_TRUE(delta.ok()) << delta.status();
  EXPECT_DOUBLE_EQ(*delta, 20.0);
  EXPECT_DOUBLE_EQ(*store.Query(id, 4.0, RollupAgg::kRate), 5.0);
  // kLast for counters is the cumulative total.
  EXPECT_DOUBLE_EQ(*store.Query(id, 4.0, RollupAgg::kLast), 50.0);
}

TEST(RollupStoreTest, TierSelectionCoversLongWindows) {
  // 10 slots/tier: tier0 covers 10 s, tier1 100 s, tier2 600 s. A 60 s
  // window must be served (from tier1), not NotFound, even though tier0
  // history has long since wrapped.
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("events");
  RollupStore store(&registry, SmallConfig());
  size_t id = store.TrackCounter("events");
  for (int i = 1; i <= 200; ++i) {
    c->Increment(2);
    store.Tick(static_cast<double>(i));
  }
  auto delta = store.Query(id, 60.0, RollupAgg::kDelta);
  ASSERT_TRUE(delta.ok()) << delta.status();
  EXPECT_DOUBLE_EQ(*delta, 120.0);
  auto rate = store.Query(id, 60.0, RollupAgg::kRate);
  ASSERT_TRUE(rate.ok());
  EXPECT_DOUBLE_EQ(*rate, 2.0);
}

TEST(RollupStoreTest, HistogramMeanOverWindow) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat");
  RollupStore store(&registry, SmallConfig());
  size_t id = store.TrackHistogram("lat");
  // Seconds 1-5 record value 10, seconds 6-10 record value 30: the mean
  // over the trailing 5 s window is 30, over 10 s it is 20.
  for (int i = 1; i <= 10; ++i) {
    h->Record(i <= 5 ? 10.0 : 30.0);
    store.Tick(static_cast<double>(i));
  }
  auto recent = store.Query(id, 5.0, RollupAgg::kMean);
  ASSERT_TRUE(recent.ok()) << recent.status();
  EXPECT_DOUBLE_EQ(*recent, 30.0);
  EXPECT_DOUBLE_EQ(*store.Query(id, 10.0, RollupAgg::kMean), 20.0);
  // kDelta for histograms is the recorded-event count in the window.
  EXPECT_DOUBLE_EQ(*store.Query(id, 5.0, RollupAgg::kDelta), 5.0);
}

TEST(RollupStoreTest, LazyResolutionPicksUpLateInstruments) {
  MetricsRegistry registry;
  RollupStore store(&registry, SmallConfig());
  size_t id = store.TrackGauge("late");
  store.Tick(1.0);
  EXPECT_EQ(store.Query(id, 5.0, RollupAgg::kLast).status().code(),
            StatusCode::kNotFound);
  // Instrument appears after tracking: the next tick resolves it.
  registry.GetGauge("late")->Set(7.0);
  store.Tick(2.0);
  auto v = store.Query(id, 5.0, RollupAgg::kLast);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_DOUBLE_EQ(*v, 7.0);
  // Tracking never creates instruments.
  EXPECT_EQ(registry.FindGauge("never_registered"), nullptr);
}

TEST(RollupStoreTest, ReTrackReturnsSameId) {
  MetricsRegistry registry;
  RollupStore store(&registry, SmallConfig());
  size_t a = store.TrackGauge("g", {{"x", "1"}});
  size_t b = store.TrackGauge("g", {{"x", "1"}});
  size_t c = store.TrackGauge("g", {{"x", "2"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(store.NumTracked(), 2u);
}

TEST(RollupStoreTest, TrackedSnapshotIsSparseAndCurrent) {
  MetricsRegistry registry;
  registry.GetGauge("tracked")->Set(1.0);
  registry.GetGauge("untracked")->Set(2.0);
  registry.GetCounter("hits")->Increment(3);
  Histogram* h = registry.GetHistogram("lat");
  h->Record(5.0);

  RollupStore store(&registry, SmallConfig());
  store.TrackGauge("tracked");
  store.TrackCounter("hits");
  store.TrackHistogram("lat");
  store.Tick(1.0);

  const MetricsSnapshot& snap = store.TrackedSnapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);  // "untracked" absent.
  EXPECT_EQ(snap.gauges[0].name, "tracked");
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 1.0);
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 3u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_FALSE(snap.histograms[0].bounds.empty());
  EXPECT_EQ(snap.histograms[0].buckets.size(),
            snap.histograms[0].bounds.size());

  // The buffer is updated in place on the next tick.
  registry.GetGauge("tracked")->Set(9.0);
  h->Record(6.0);
  store.Tick(2.0);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 9.0);
  EXPECT_EQ(snap.histograms[0].count, 2u);
}

TEST(RollupStoreTest, QueryErrors) {
  MetricsRegistry registry;
  registry.GetGauge("g")->Set(1.0);
  RollupStore store(&registry, SmallConfig());
  size_t id = store.TrackGauge("g");
  EXPECT_EQ(store.Query("nope", {}, 5.0, RollupAgg::kLast).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store.Query(id, -1.0, RollupAgg::kLast).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.Query(99, 5.0, RollupAgg::kLast).status().code(),
            StatusCode::kInvalidArgument);
  // No ticks yet: nothing closed.
  EXPECT_EQ(store.Query(id, 5.0, RollupAgg::kLast).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace flower::obs
