#include "obs/exporters.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace flower::obs {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) out.push_back(line);
  return out;
}

ControlDecisionRecord SampleRecord() {
  ControlDecisionRecord r;
  r.time = 120.0;
  r.loop = "analytics";
  r.layer = "analytics";
  r.law = "adaptive-gain";
  r.sensed_y = 78.5;
  r.reference = 60.0;
  r.error = 18.5;
  r.gain = 0.115;
  r.raw_u = 5.13;
  r.clamped_u = 5.0;
  r.stale_sensor = true;
  r.outcome = StepOutcome::kActuated;
  r.fault_mask = 4;
  r.health_mask = 3;
  r.span_id = 42;
  return r;
}

TEST(DecisionCsvTest, HeaderAndRow) {
  std::ostringstream os;
  WriteDecisionCsv(os, {SampleRecord()});
  auto lines = Lines(os.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0],
            "time,loop,layer,law,sensed_y,reference,error,gain,raw_u,"
            "clamped_u,stale,outcome,fault_mask,health_mask,span_id");
  EXPECT_EQ(lines[1],
            "120,analytics,analytics,adaptive-gain,78.5,60,18.5,0.115,"
            "5.13,5,1,actuated,4,3,42");
}

TEST(DecisionJsonlTest, OneObjectPerLine) {
  std::ostringstream os;
  WriteDecisionJsonl(os, {SampleRecord(), SampleRecord()});
  auto lines = Lines(os.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"type\":\"decision\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"loop\":\"analytics\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"gain\":0.115"), std::string::npos);
  EXPECT_NE(lines[0].find("\"stale\":true"), std::string::npos);
  EXPECT_NE(lines[0].find("\"outcome\":\"actuated\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"fault_mask\":4"), std::string::npos);
  EXPECT_NE(lines[0].find("\"health_mask\":3"), std::string::npos);
  EXPECT_NE(lines[0].find("\"span_id\":42"), std::string::npos);
}

TEST(DecisionJsonlTest, NanBecomesNull) {
  ControlDecisionRecord r = SampleRecord();
  r.gain = std::numeric_limits<double>::quiet_NaN();
  std::ostringstream os;
  WriteDecisionJsonl(os, {r});
  EXPECT_NE(os.str().find("\"gain\":null"), std::string::npos);
}

TEST(SnapshotSinksTest, CoverAllKinds) {
  MetricsRegistry registry;
  registry.GetCounter("steps", {{"loop", "analytics"}})->Increment(3);
  registry.GetGauge("gain")->Set(0.25);
  registry.GetHistogram("lat")->Record(2.0);
  MetricsSnapshot snap = registry.Snapshot();

  std::ostringstream csv;
  WriteSnapshotCsv(csv, snap);
  auto csv_lines = Lines(csv.str());
  ASSERT_EQ(csv_lines.size(), 4u);  // Header + one per instrument.
  EXPECT_EQ(csv_lines[0], "kind,name,labels,value,count,sum,min,max,p50,p99");
  EXPECT_EQ(csv_lines[1].rfind("counter,steps,loop=analytics,3", 0), 0u);

  std::ostringstream jsonl;
  WriteSnapshotJsonl(jsonl, snap, 3600.0);
  auto json_lines = Lines(jsonl.str());
  ASSERT_EQ(json_lines.size(), 3u);
  EXPECT_NE(json_lines[0].find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(json_lines[0].find("\"time\":3600"), std::string::npos);
  EXPECT_NE(json_lines[0].find("\"labels\":{\"loop\":\"analytics\"}"),
            std::string::npos);
  EXPECT_NE(json_lines[1].find("\"type\":\"gauge\""), std::string::npos);
  EXPECT_NE(json_lines[2].find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(json_lines[2].find("\"count\":1"), std::string::npos);
}

TEST(OpenMetricsTest, FamiliesSuffixesAndEof) {
  MetricsRegistry registry;
  registry.GetCounter("loop.steps", {{"loop", "analytics"}})->Increment(3);
  registry.GetCounter("loop.steps", {{"loop", "ingestion"}})->Increment(1);
  registry.GetGauge("slo.burn_fast", {{"slo", "flow/latency"}})->Set(2.5);
  Histogram* h = registry.GetHistogram("lat");
  h->Record(2.0);
  h->Record(4.0);

  std::ostringstream os;
  WriteSnapshotOpenMetrics(os, registry.Snapshot());
  const std::string text = os.str();
  auto lines = Lines(text);

  // Dots sanitize to underscores; counters get _total; one TYPE line per
  // family even with several label sets.
  EXPECT_NE(text.find("# TYPE loop_steps counter"), std::string::npos);
  EXPECT_EQ(text.find("# TYPE loop_steps counter"),
            text.rfind("# TYPE loop_steps counter"));
  EXPECT_NE(text.find("loop_steps_total{loop=\"analytics\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("loop_steps_total{loop=\"ingestion\"} 1"),
            std::string::npos);
  // Label values keep their raw characters (only name chars sanitize).
  EXPECT_NE(text.find("slo_burn_fast{slo=\"flow/latency\"} 2.5"),
            std::string::npos);
  // Histogram: cumulative buckets ending at le="+Inf" == _count.
  EXPECT_NE(text.find("# TYPE lat histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_sum 6"), std::string::npos);
  EXPECT_NE(text.find("lat_count 2"), std::string::npos);
  size_t inf_bucket = text.find("lat_bucket{le=\"+Inf\"}");
  size_t first_bucket = text.find("lat_bucket{");
  EXPECT_LT(first_bucket, inf_bucket);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back(), "# EOF");
}

TEST(OpenMetricsTest, EscapesLabelValuesAndHelpText) {
  MetricsRegistry registry;
  registry
      .GetCounter("reqs", {{"path", "c:\\tmp\n\"quoted\""}})
      ->Increment();
  registry.SetHelp("reqs", "requests per\npath (under c:\\)");

  std::ostringstream os;
  WriteSnapshotOpenMetrics(os, registry.Snapshot());
  const std::string text = os.str();

  // Label values: backslash, double quote, and newline are escaped, in
  // that raw byte order.
  EXPECT_NE(text.find("path=\"c:\\\\tmp\\n\\\"quoted\\\"\""),
            std::string::npos)
      << text;
  // HELP text: only backslash and newline (HELP is not quoted).
  EXPECT_NE(text.find("# HELP reqs requests per\\npath (under c:\\\\)"),
            std::string::npos)
      << text;
  // No raw newline leaked mid-line: every line is a comment, a sample,
  // or EOF.
  for (const std::string& line : Lines(text)) {
    EXPECT_TRUE(!line.empty());
    EXPECT_EQ(line.find('\r'), std::string::npos);
  }
}

TEST(ChromeTraceTest, WrapperMetadataAndPhases) {
  TraceCollector trace;
  trace.SetTrackName(1, "loop:analytics");
  TraceEvent span_args;
  span_args.num_args.emplace_back("y", 78.5);
  span_args.str_args.emplace_back("outcome", "actuated");
  trace.AddSpan("step", "control", 120.0, 2.4, 1, std::move(span_args));
  trace.AddInstant("sensor-miss", "control", 240.0, 1);
  trace.AddCounter("analytics.y", 120.0, 1, 78.5);

  std::ostringstream os;
  WriteChromeTrace(os, trace);
  const std::string text = os.str();

  EXPECT_EQ(text.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  // Metadata first: process name, then the named track.
  size_t proc = text.find("\"process_name\"");
  size_t thread = text.find("\"thread_name\"");
  size_t span = text.find("\"name\":\"step\"");
  ASSERT_NE(proc, std::string::npos);
  ASSERT_NE(thread, std::string::npos);
  ASSERT_NE(span, std::string::npos);
  EXPECT_LT(proc, thread);
  EXPECT_LT(thread, span);
  EXPECT_NE(text.find("\"args\":{\"name\":\"loop:analytics\"}"),
            std::string::npos);
  // Sim seconds → microseconds; 'X' carries dur, 'i' carries scope.
  EXPECT_NE(text.find("\"ts\":120000000"), std::string::npos);
  EXPECT_NE(text.find("\"dur\":2400000"), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(text.find("\"y\":78.5"), std::string::npos);
  EXPECT_NE(text.find("\"outcome\":\"actuated\""), std::string::npos);
}

TEST(ChromeTraceTest, EscapesStrings) {
  TraceCollector trace;
  TraceEvent args;
  args.str_args.emplace_back("msg", "a\"b\\c\nd");
  trace.AddInstant("weird", "test", 0.0, 1, std::move(args));
  std::ostringstream os;
  WriteChromeTrace(os, trace);
  EXPECT_NE(os.str().find("a\\\"b\\\\c\\nd"), std::string::npos);
}

TEST(TraceCollectorTest, DropsNewestPastCapacity) {
  TraceCollector trace(2);
  trace.AddInstant("a", "t", 0.0, 1);
  trace.AddInstant("b", "t", 1.0, 1);
  trace.AddInstant("c", "t", 2.0, 1);
  EXPECT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.dropped(), 1u);
  EXPECT_EQ(trace.events()[0].name, "a");
  EXPECT_EQ(trace.events()[1].name, "b");
}

TEST(ExportToFileTest, WritesAndReportsErrors) {
  const std::string path = ::testing::TempDir() + "/obs_export_test.txt";
  Status ok = ExportToFile(path, [](std::ostream& os) { os << "hello"; });
  ASSERT_TRUE(ok.ok()) << ok;
  std::ifstream in(path);
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "hello");
  std::remove(path.c_str());

  Status bad = ExportToFile("/nonexistent-dir/x/y.json",
                            [](std::ostream& os) { os << "x"; });
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace flower::obs
