#include "obs/scoped_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"

namespace flower::obs {
namespace {

const HistogramSample* FindHist(const MetricsSnapshot& snap,
                                const std::string& name) {
  for (const HistogramSample& h : snap.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

TEST(ScopedRegistryTest, ChildCreationIsStableAndPathed) {
  ScopedRegistry root;
  EXPECT_EQ(root.path(), "");
  ScopedRegistry* flow = root.Child("flow-a");
  ASSERT_NE(flow, nullptr);
  EXPECT_EQ(flow->path(), "flow-a");
  ScopedRegistry* layer = flow->Child("analytics");
  EXPECT_EQ(layer->path(), "flow-a/analytics");
  // Same name returns the same child, not a new one.
  EXPECT_EQ(root.Child("flow-a"), flow);
  EXPECT_EQ(root.NumScopes(), 3u);
  EXPECT_EQ(root.FindChild("flow-a"), flow);
  EXPECT_EQ(root.FindChild("missing"), nullptr);
}

TEST(ScopedRegistryTest, CountersSumAcrossScopes) {
  ScopedRegistry root;
  root.metrics().GetCounter("steps")->Increment(1);
  root.Child("a")->metrics().GetCounter("steps")->Increment(10);
  root.Child("b")->metrics().GetCounter("steps")->Increment(100);
  // A differently-labeled series must not merge into the unlabeled one.
  root.Child("b")->metrics()
      .GetCounter("steps", {{"loop", "x"}})
      ->Increment(7);

  MetricsSnapshot snap = root.AggregateSnapshot();
  uint64_t unlabeled = 0;
  uint64_t labeled = 0;
  for (const CounterSample& c : snap.counters) {
    if (c.name != "steps") continue;
    if (c.labels.empty()) {
      unlabeled = c.value;
    } else {
      labeled = c.value;
    }
  }
  EXPECT_EQ(unlabeled, 111u);
  EXPECT_EQ(labeled, 7u);
}

TEST(ScopedRegistryTest, GaugesFanOutWithScopeLabel) {
  ScopedRegistry root;
  root.Child("flow-a")->metrics().GetGauge("util")->Set(40.0);
  root.Child("flow-b")->metrics().GetGauge("util")->Set(90.0);

  MetricsSnapshot snap = root.AggregateSnapshot();
  std::vector<std::pair<std::string, double>> seen;
  for (const GaugeSample& g : snap.gauges) {
    if (g.name != "util") continue;
    ASSERT_EQ(g.labels.size(), 1u);
    EXPECT_EQ(g.labels[0].first, "scope");
    seen.emplace_back(g.labels[0].second, g.value);
  }
  ASSERT_EQ(seen.size(), 2u);
  // AggregateSnapshot sorts by (name, labels), so scope order is stable.
  EXPECT_EQ(seen[0].first, "flow-a");
  EXPECT_DOUBLE_EQ(seen[0].second, 40.0);
  EXPECT_EQ(seen[1].first, "flow-b");
  EXPECT_DOUBLE_EQ(seen[1].second, 90.0);
}

TEST(ScopedRegistryTest, AggregateIsSortedByNameThenLabels) {
  ScopedRegistry root;
  root.Child("z")->metrics().GetCounter("b.count")->Increment();
  root.Child("a")->metrics().GetCounter("a.count")->Increment();
  MetricsSnapshot snap = root.AggregateSnapshot();
  ASSERT_GE(snap.counters.size(), 2u);
  EXPECT_TRUE(std::is_sorted(snap.counters.begin(), snap.counters.end(),
                             [](const CounterSample& x,
                                const CounterSample& y) {
                               return x.name < y.name ||
                                      (x.name == y.name &&
                                       x.labels < y.labels);
                             }));
}

// ---------------------------------------------------------------------
// Histogram-merge property test: recording a sample stream split across
// N scoped histograms and merging the aggregate must be bucket-exact
// versus recording every sample into one histogram — including the
// underflow/overflow buckets and the quantile clamp at min/max.

void ExpectBucketExact(const HistogramSample& merged,
                       const HistogramSample& reference) {
  EXPECT_EQ(merged.count, reference.count);
  // Counts are exact; the sum is re-associated (per-scope partials vs
  // stream order), so compare to relative double precision.
  EXPECT_NEAR(merged.sum, reference.sum, 1e-12 * std::abs(reference.sum));
  EXPECT_DOUBLE_EQ(merged.min, reference.min);
  EXPECT_DOUBLE_EQ(merged.max, reference.max);
  ASSERT_EQ(merged.bounds.size(), reference.bounds.size());
  for (size_t i = 0; i < merged.bounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(merged.bounds[i], reference.bounds[i]) << "bound " << i;
    EXPECT_EQ(merged.buckets[i], reference.buckets[i]) << "bucket " << i;
  }
  EXPECT_DOUBLE_EQ(merged.p50, reference.p50);
  EXPECT_DOUBLE_EQ(merged.p99, reference.p99);
}

TEST(HistogramMergeProperty, ScopedMergeIsBucketExact) {
  // 20 randomized trials across scope counts and value regimes. The
  // value stream deliberately includes underflow (< options.min) and
  // overflow (>= options.max) samples.
  HistogramOptions options;
  options.min = 1e-3;
  options.max = 1e3;
  options.sub_buckets = 4;
  Rng rng(20240809);
  for (int trial = 0; trial < 20; ++trial) {
    size_t num_scopes = 1 + static_cast<size_t>(rng.Uniform(0.0, 6.0));
    ScopedRegistry root;
    MetricsRegistry reference;
    Histogram* ref = reference.GetHistogram("lat", {}, options);
    std::vector<Histogram*> scoped;
    for (size_t s = 0; s < num_scopes; ++s) {
      scoped.push_back(root.Child("flow-" + std::to_string(s))
                           ->metrics()
                           .GetHistogram("lat", {}, options));
    }
    size_t samples = 50 + static_cast<size_t>(rng.Uniform(0.0, 450.0));
    for (size_t i = 0; i < samples; ++i) {
      // Log-uniform across ~8 decades so every octave, the underflow
      // bucket, and the overflow bucket all get traffic.
      double v = std::pow(10.0, rng.Uniform(-5.0, 4.0));
      ref->Record(v);
      scoped[i % num_scopes]->Record(v);
    }
    MetricsSnapshot merged_snap = root.AggregateSnapshot();
    MetricsSnapshot ref_snap = reference.Snapshot();
    const HistogramSample* merged = FindHist(merged_snap, "lat");
    const HistogramSample* expect = FindHist(ref_snap, "lat");
    ASSERT_NE(merged, nullptr);
    ASSERT_NE(expect, nullptr);
    ExpectBucketExact(*merged, *expect);

    // Quantile interpolation + clamp parity at several probes: the
    // sample-level helper must agree with Histogram::Quantile exactly,
    // and extremes must clamp into [min, max].
    for (double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0}) {
      auto merged_q = HistogramSampleQuantile(*merged, q);
      auto live_q = ref->Quantile(q);
      ASSERT_TRUE(merged_q.ok());
      ASSERT_TRUE(live_q.ok());
      EXPECT_DOUBLE_EQ(*merged_q, *live_q) << "q=" << q;
      EXPECT_GE(*merged_q, expect->min);
      EXPECT_LE(*merged_q, expect->max);
    }
  }
}

TEST(HistogramMergeProperty, LayoutMismatchRefusesToMerge) {
  MetricsRegistry a;
  MetricsRegistry b;
  HistogramOptions narrow;
  narrow.min = 1e-3;
  narrow.max = 1e2;
  a.GetHistogram("lat")->Record(1.0);
  b.GetHistogram("lat", {}, narrow)->Record(1.0);
  HistogramSample dst = a.Snapshot().histograms[0];
  HistogramSample src = b.Snapshot().histograms[0];
  HistogramSample before = dst;
  EXPECT_FALSE(MergeHistogramSample(src, &dst));
  EXPECT_EQ(dst.count, before.count);
  EXPECT_EQ(dst.buckets, before.buckets);
}

TEST(HistogramMergeProperty, MismatchedScopesFanOutWithScopeLabel) {
  ScopedRegistry root;
  HistogramOptions narrow;
  narrow.min = 1e-3;
  narrow.max = 1e2;
  root.Child("a")->metrics().GetHistogram("lat")->Record(1.0);
  root.Child("b")->metrics().GetHistogram("lat", {}, narrow)->Record(2.0);
  MetricsSnapshot snap = root.AggregateSnapshot();
  size_t lat_series = 0;
  for (const HistogramSample& h : snap.histograms) {
    if (h.name != "lat") continue;
    ++lat_series;
    ASSERT_EQ(h.labels.size(), 1u);
    EXPECT_EQ(h.labels[0].first, "scope");
  }
  EXPECT_EQ(lat_series, 2u);
}

// ---------------------------------------------------------------------
// Concurrency: one writer thread per scope hammering its own child
// registry while the aggregator repeatedly merges. Scoped recording is
// the lock-free MetricsRegistry path; only child *creation* locks. Run
// under TSan this is the scoped-registry data-race certificate.

TEST(ScopedRegistryConcurrencyTest, ParallelScopedWritersAndAggregator) {
  constexpr int kWriters = 4;
  constexpr uint64_t kIncrements = 20000;
  ScopedRegistry root;
  // Children created up front on the main thread (creation is the
  // mutex-guarded part; recording is what must be contention-free).
  std::vector<Counter*> counters;
  std::vector<Histogram*> hists;
  for (int w = 0; w < kWriters; ++w) {
    ScopedRegistry* child = root.Child("flow-" + std::to_string(w));
    counters.push_back(child->metrics().GetCounter("ticks"));
    hists.push_back(child->metrics().GetHistogram("lat"));
  }
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w, &counters, &hists] {
      for (uint64_t i = 0; i < kIncrements; ++i) {
        counters[w]->Increment();
        hists[w]->Record(0.001 * static_cast<double>((i % 1000) + 1));
      }
    });
  }
  // Aggregate concurrently with the writers: totals are racy-but-torn-
  // free snapshots, so each must be <= the final total.
  for (int i = 0; i < 50; ++i) {
    MetricsSnapshot snap = root.AggregateSnapshot();
    for (const CounterSample& c : snap.counters) {
      if (c.name == "ticks" && c.labels.empty()) {
        EXPECT_LE(c.value, kWriters * kIncrements);
      }
    }
  }
  for (std::thread& t : writers) t.join();
  MetricsSnapshot snap = root.AggregateSnapshot();
  uint64_t total = 0;
  uint64_t hist_count = 0;
  for (const CounterSample& c : snap.counters) {
    if (c.name == "ticks") total += c.value;
  }
  for (const HistogramSample& h : snap.histograms) {
    if (h.name == "lat") hist_count += h.count;
  }
  EXPECT_EQ(total, kWriters * kIncrements);
  EXPECT_EQ(hist_count, kWriters * kIncrements);
}

TEST(ScopedRegistryConcurrencyTest, ConcurrentChildCreation) {
  ScopedRegistry root;
  constexpr int kThreads = 8;
  std::vector<ScopedRegistry*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &root, &seen] {
      // All threads race to create the same child plus their own.
      seen[t] = root.Child("shared");
      root.Child("own-" + std::to_string(t))
          ->metrics()
          .GetCounter("c")
          ->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(root.NumScopes(), static_cast<size_t>(kThreads) + 2);
}

}  // namespace
}  // namespace flower::obs
