#include "obs/metrics_registry.h"

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace flower::obs {
namespace {

TEST(CounterTest, IncrementAndValue) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("steps");
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);
}

TEST(CounterTest, SameNameAndLabelsIsSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("steps", {{"layer", "analytics"}});
  Counter* b = registry.GetCounter("steps", {{"layer", "analytics"}});
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(b->Value(), 1u);
}

TEST(CounterTest, LabelOrderIsNormalized) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("steps", {{"a", "1"}, {"b", "2"}});
  Counter* b = registry.GetCounter("steps", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
}

TEST(CounterTest, DifferentLabelsAreDistinct) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("steps", {{"layer", "analytics"}});
  Counter* b = registry.GetCounter("steps", {{"layer", "storage"}});
  Counter* c = registry.GetCounter("steps");
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  a->Increment();
  EXPECT_EQ(b->Value(), 0u);
  EXPECT_EQ(c->Value(), 0u);
}

TEST(GaugeTest, LastValueWins) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("gain", {{"loop", "analytics"}});
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
  g->Set(0.04);
  g->Set(0.15);
  EXPECT_DOUBLE_EQ(g->Value(), 0.15);
}

TEST(HistogramTest, CountSumMinMaxMean) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat");
  EXPECT_EQ(h->TotalCount(), 0u);
  EXPECT_DOUBLE_EQ(h->Min(), 0.0);
  EXPECT_DOUBLE_EQ(h->Max(), 0.0);
  h->Record(2.0);
  h->Record(10.0);
  h->Record(6.0);
  EXPECT_EQ(h->TotalCount(), 3u);
  EXPECT_DOUBLE_EQ(h->Sum(), 18.0);
  EXPECT_DOUBLE_EQ(h->Min(), 2.0);
  EXPECT_DOUBLE_EQ(h->Max(), 10.0);
  EXPECT_DOUBLE_EQ(h->Mean(), 6.0);
}

TEST(HistogramTest, UnderflowAndOverflowBuckets) {
  MetricsRegistry registry;
  HistogramOptions opts;
  opts.min = 1.0;
  opts.max = 16.0;
  opts.sub_buckets = 1;
  Histogram* h = registry.GetHistogram("lat", {}, opts);
  h->Record(0.5);    // Underflow: below min.
  h->Record(1e9);    // Overflow: at/above max.
  h->Record(16.0);   // Exactly max → overflow bucket.
  EXPECT_EQ(h->BucketCount(0), 1u);
  EXPECT_EQ(h->BucketCount(h->NumBuckets() - 1), 2u);
  EXPECT_EQ(h->TotalCount(), 3u);
}

TEST(HistogramTest, BucketsPartitionTheRange) {
  MetricsRegistry registry;
  HistogramOptions opts;
  opts.min = 1.0;
  opts.max = 8.0;
  opts.sub_buckets = 2;
  Histogram* h = registry.GetHistogram("lat", {}, opts);
  // Upper bounds must be strictly increasing and end at +inf.
  double prev = 0.0;
  for (size_t i = 0; i + 1 < h->NumBuckets(); ++i) {
    EXPECT_GT(h->UpperBound(i), prev);
    prev = h->UpperBound(i);
  }
  EXPECT_TRUE(std::isinf(h->UpperBound(h->NumBuckets() - 1)));
  // A value lands in the bucket whose [lower, upper) range contains it.
  h->Record(1.1);
  uint64_t total = 0;
  for (size_t i = 0; i < h->NumBuckets(); ++i) total += h->BucketCount(i);
  EXPECT_EQ(total, 1u);
}

TEST(HistogramTest, IgnoresNanClampsNegatives) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat");
  h->Record(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h->TotalCount(), 0u);
  h->Record(-5.0);  // Clamped to 0 → underflow bucket.
  EXPECT_EQ(h->TotalCount(), 1u);
  EXPECT_EQ(h->BucketCount(0), 1u);
}

TEST(HistogramTest, QuantileInterpolatesAndErrorsWhenEmpty) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat");
  EXPECT_FALSE(h->Quantile(0.5).ok());
  for (int i = 1; i <= 100; ++i) h->Record(static_cast<double>(i));
  auto p50 = h->Quantile(0.5);
  ASSERT_TRUE(p50.ok());
  // Log-linear buckets bound the relative error; p50 of 1..100 is ~50.
  EXPECT_NEAR(*p50, 50.0, 15.0);
  auto p99 = h->Quantile(0.99);
  ASSERT_TRUE(p99.ok());
  EXPECT_GT(*p99, *p50);
}

TEST(HistogramTest, QuantileClampsIntoObservedRange) {
  MetricsRegistry registry;
  // A constant stream lands all mass in one wide log-linear bucket;
  // interpolation alone would smear the estimate across it, but the
  // recorded min == max pins every quantile exactly.
  Histogram* constant = registry.GetHistogram("const");
  for (int i = 0; i < 50; ++i) constant->Record(42.0);
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    auto est = constant->Quantile(q);
    ASSERT_TRUE(est.ok());
    EXPECT_DOUBLE_EQ(*est, 42.0) << "q=" << q;
  }

  // Two distinct values: estimates can never leave [min, max].
  Histogram* pair = registry.GetHistogram("pair");
  pair->Record(10.0);
  pair->Record(11.0);
  auto lo = pair->Quantile(0.01);
  auto hi = pair->Quantile(0.99);
  ASSERT_TRUE(lo.ok());
  ASSERT_TRUE(hi.ok());
  EXPECT_GE(*lo, 10.0);
  EXPECT_LE(*hi, 11.0);
}

TEST(HistogramTest, QuantileErrorBoundedByBucketWidth) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat");  // Octave buckets, 4 sub.
  for (int i = 1; i <= 1000; ++i) h->Record(static_cast<double>(i));
  // Log-linear layout: each bucket spans at most 1/4 octave, so the
  // interpolated estimate is within one bucket (≤ 25% relative) of the
  // true quantile everywhere in range.
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    auto est = h->Quantile(q);
    ASSERT_TRUE(est.ok());
    double truth = q * 1000.0;
    EXPECT_NEAR(*est, truth, 0.25 * truth + 1.0) << "q=" << q;
  }
}

TEST(RegistryTest, DuplicateLabelKeysCollapseLastWins) {
  MetricsRegistry registry;
  // {a=0,a=1} ≡ {a=1}: repeated assignment, last value wins, and both
  // spellings must address the same series for every instrument kind.
  Counter* c1 = registry.GetCounter("steps", {{"a", "0"}, {"a", "1"}});
  Counter* c2 = registry.GetCounter("steps", {{"a", "1"}});
  EXPECT_EQ(c1, c2);
  Gauge* g1 = registry.GetGauge("g", {{"k", "x"}, {"b", "2"}, {"k", "y"}});
  Gauge* g2 = registry.GetGauge("g", {{"b", "2"}, {"k", "y"}});
  EXPECT_EQ(g1, g2);
  Histogram* h1 = registry.GetHistogram("h", {{"z", "1"}, {"z", "2"}});
  Histogram* h2 = registry.GetHistogram("h", {{"z", "2"}});
  EXPECT_EQ(h1, h2);

  // The snapshot shows the collapsed form, not the raw duplicate.
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  ASSERT_EQ(snap.counters[0].labels.size(), 1u);
  EXPECT_EQ(snap.counters[0].labels[0].first, "a");
  EXPECT_EQ(snap.counters[0].labels[0].second, "1");
  ASSERT_EQ(snap.gauges.size(), 1u);
  ASSERT_EQ(snap.gauges[0].labels.size(), 2u);
}

TEST(RegistryTest, SnapshotIsDeepCopy) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("steps", {{"layer", "analytics"}});
  Gauge* g = registry.GetGauge("gain");
  Histogram* h = registry.GetHistogram("lat");
  c->Increment(7);
  g->Set(1.5);
  h->Record(3.0);

  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 7u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 1.5);
  EXPECT_EQ(snap.histograms[0].count, 1u);

  // Mutating the live registry must not change the snapshot.
  c->Increment(100);
  g->Set(9.9);
  h->Record(4.0);
  EXPECT_EQ(snap.counters[0].value, 7u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 1.5);
  EXPECT_EQ(snap.histograms[0].count, 1u);
}

TEST(RegistryTest, SnapshotSortedByNameThenLabels) {
  MetricsRegistry registry;
  registry.GetCounter("zeta");
  registry.GetCounter("alpha", {{"layer", "storage"}});
  registry.GetCounter("alpha", {{"layer", "analytics"}});
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "alpha");
  EXPECT_EQ(snap.counters[2].name, "zeta");
  EXPECT_EQ(snap.counters[0].labels[0].second, "analytics");
}

TEST(CardinalityGuardTest, DefaultCapIsGenerous) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.max_label_cardinality(), 1024u);
}

TEST(CardinalityGuardTest, OverflowCollapsesIntoSharedSeries) {
  MetricsRegistry registry;
  registry.set_max_label_cardinality(3);
  for (int i = 0; i < 3; ++i) {
    registry.GetCounter("reqs", {{"id", std::to_string(i)}})->Increment();
  }
  // The cap is reached: the next two distinct label-sets collapse into
  // the single {overflow="true"} series instead of minting new ones.
  Counter* spill_a = registry.GetCounter("reqs", {{"id", "3"}});
  Counter* spill_b = registry.GetCounter("reqs", {{"id", "4"}});
  EXPECT_EQ(spill_a, spill_b);
  EXPECT_EQ(spill_a, registry.GetCounter("reqs", {{"overflow", "true"}}));
  spill_a->Increment(5);

  // Already-admitted series keep resolving to their own instruments.
  EXPECT_EQ(registry.GetCounter("reqs", {{"id", "1"}})->Value(), 1u);

  // Two distinct rejected label-sets; resolving the collapsed series by
  // its own {overflow="true"} labels is exempt and never counts.
  EXPECT_EQ(registry.label_overflow_total(), 2u);
  Counter* guard =
      registry.GetCounter("registry.label_overflow", {{"metric", "reqs"}});
  EXPECT_EQ(guard->Value(), 2u);
}

TEST(CardinalityGuardTest, GuardIsPerMetricNameAndPerKind) {
  MetricsRegistry registry;
  registry.set_max_label_cardinality(2);
  registry.GetGauge("depth", {{"id", "0"}});
  registry.GetGauge("depth", {{"id", "1"}});
  Gauge* spill = registry.GetGauge("depth", {{"id", "2"}});
  EXPECT_EQ(spill, registry.GetGauge("depth", {{"overflow", "true"}}));
  // A different metric name is unaffected by "depth" hitting its cap.
  registry.GetGauge("util", {{"id", "0"}})->Set(1.0);
  registry.GetHistogram("lat", {{"id", "0"}})->Record(1.0);
  EXPECT_EQ(registry.label_overflow_total(), 1u);
}

TEST(CardinalityGuardTest, HistogramsCollapseToo) {
  MetricsRegistry registry;
  registry.set_max_label_cardinality(1);
  registry.GetHistogram("lat", {{"id", "0"}})->Record(1.0);
  Histogram* spill = registry.GetHistogram("lat", {{"id", "1"}});
  EXPECT_EQ(spill, registry.GetHistogram("lat", {{"overflow", "true"}}));
  spill->Record(2.0);
  EXPECT_EQ(spill->TotalCount(), 1u);
}

TEST(CardinalityGuardTest, OverflowSeriesIsExemptFromItsOwnGuard) {
  MetricsRegistry registry;
  registry.set_max_label_cardinality(1);
  registry.GetCounter("reqs", {{"id", "0"}});
  // Explicitly asking for the collapsed series is always admitted and
  // never counts as an overflow event itself.
  registry.GetCounter("reqs", {{"overflow", "true"}})->Increment();
  EXPECT_EQ(registry.label_overflow_total(), 0u);
}

TEST(CardinalityGuardTest, WarnsOncePerMetricName) {
  MetricsRegistry registry;
  registry.set_max_label_cardinality(1);
  registry.GetCounter("reqs", {{"id", "0"}});
  testing::internal::CaptureStderr();
  registry.GetCounter("reqs", {{"id", "1"}});
  registry.GetCounter("reqs", {{"id", "2"}});
  registry.GetCounter("reqs", {{"id", "3"}});
  std::string err = testing::internal::GetCapturedStderr();
  size_t first = err.find("label cardinality cap");
  EXPECT_NE(first, std::string::npos) << err;
  EXPECT_EQ(err.find("label cardinality cap", first + 1), std::string::npos)
      << err;
  EXPECT_EQ(registry.label_overflow_total(), 3u);
}

TEST(RegistryTest, NumInstrumentsCountsAllKinds) {
  MetricsRegistry registry;
  registry.GetCounter("a");
  registry.GetCounter("a");  // Re-registration: no new instrument.
  registry.GetGauge("b");
  registry.GetHistogram("c");
  EXPECT_EQ(registry.NumInstruments(), 3u);
}

}  // namespace
}  // namespace flower::obs
