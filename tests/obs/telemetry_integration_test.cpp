// Integration test of the telemetry pipeline (the ISSUE 2 acceptance
// criterion): run the canonical managed flow with a shared Telemetry
// hub and assert that (a) the decision log's gain column reproduces the
// Eq. 7 clamped gain trajectory recomputed from the same sensed inputs,
// and (b) the exported Chrome trace carries control-step spans for all
// three layers plus the NSGA-II planner track.

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/units.h"
#include "control/adaptive_gain.h"
#include "core/flow_builder.h"
#include "core/resource_share.h"
#include "obs/telemetry.h"
#include "sim/fault_injector.h"

namespace flower {
namespace {

struct RunOutput {
  obs::Telemetry telemetry;
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  std::unique_ptr<sim::FaultInjector> chaos;
  core::ManagedFlow managed;
};

// Runs the canonical three-layer click-stream flow for `hours` with the
// shared telemetry hub (member order above guarantees the hub outlives
// the manager).
void RunFlow(RunOutput* out, double hours, bool with_faults) {
  core::FlowBuilder builder;
  builder.WithSeed(7).WithTelemetry(&out->telemetry);
  if (with_faults) {
    out->chaos = std::make_unique<sim::FaultInjector>(&out->sim, 7);
    // A deterministic sensor spike squarely inside the run.
    out->chaos->SpikeSensor("analytics", 30.0 * kMinute, 50.0 * kMinute,
                            2.0, 0.0, /*probability=*/1.0);
    builder.WithFaultInjector(out->chaos.get());
  }
  auto managed = builder.Build(&out->sim, &out->metrics);
  ASSERT_TRUE(managed.ok()) << managed.status();
  out->managed = std::move(*managed);
  out->sim.RunUntil(hours * kHour);
}

TEST(TelemetryIntegrationTest, GainColumnReproducesEq7Trajectory) {
  RunOutput run;
  ASSERT_NO_FATAL_FAILURE(RunFlow(&run, 3.0, /*with_faults=*/false));

  // The exact Eq. 7 parameters of the attached analytics controller.
  auto controller = run.managed.manager->GetController(core::Layer::kAnalytics);
  ASSERT_TRUE(controller.ok());
  const auto* adaptive =
      dynamic_cast<const control::AdaptiveGainController*>(*controller);
  ASSERT_NE(adaptive, nullptr);
  const control::AdaptiveGainConfig& cfg = adaptive->config();

  std::vector<obs::ControlDecisionRecord> decisions =
      run.telemetry.decisions().Snapshot();
  ASSERT_FALSE(decisions.empty());

  // Replay Eq. 7 from the recorded sensed inputs:
  //   l_{k+1} = clamp(l_k + γ (y_k − y_r), l_min, l_max)
  // and require the decision log's gain column to match step for step.
  double gain = cfg.initial_gain;
  size_t steps = 0;
  for (const obs::ControlDecisionRecord& d : decisions) {
    if (d.loop != "analytics") continue;
    // A missed sensor read skips the step entirely: the controller never
    // ran, so the gain state is unchanged and there is nothing to check.
    if (d.outcome == obs::StepOutcome::kSensorMiss) continue;
    ASSERT_EQ(d.outcome, obs::StepOutcome::kActuated)
        << "fault-free run must actuate every stepped loop (t=" << d.time
        << ")";
    ASSERT_EQ(d.law, "adaptive-gain");
    gain = std::clamp(gain + cfg.gamma * (d.sensed_y - d.reference),
                      cfg.gain_min, cfg.gain_max);
    EXPECT_NEAR(d.gain, gain, 1e-9) << "at t=" << d.time;
    // The record's error column is the same y_k − y_r the law consumed.
    EXPECT_NEAR(d.error, d.sensed_y - d.reference, 1e-9);
    ++steps;
  }
  EXPECT_GE(steps, 20u);
  // The trajectory must actually adapt (not sit at l_0 forever).
  EXPECT_NE(gain, cfg.initial_gain);
}

TEST(TelemetryIntegrationTest, TraceHasStepSpansForAllThreeLayers) {
  RunOutput run;
  ASSERT_NO_FATAL_FAILURE(RunFlow(&run, 2.0, /*with_faults=*/false));

  const obs::TraceCollector& trace = run.telemetry.trace();
  std::set<int> step_tids;
  for (const obs::TraceEvent& e : trace.events()) {
    if (e.name == "step" && e.phase == 'X') step_tids.insert(e.tid);
  }
  EXPECT_EQ(step_tids.size(), 3u);

  std::set<std::string> names;
  for (const auto& [tid, name] : trace.track_names()) names.insert(name);
  EXPECT_TRUE(names.count("loop:ingestion"));
  EXPECT_TRUE(names.count("loop:analytics"));
  EXPECT_TRUE(names.count("loop:storage"));
  EXPECT_TRUE(names.count("simulator"));
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(TelemetryIntegrationTest, FaultInterferenceIsStampedOnDecisions) {
  RunOutput run;
  ASSERT_NO_FATAL_FAILURE(RunFlow(&run, 2.0, /*with_faults=*/true));

  const auto mask =
      static_cast<obs::FaultMask>(1u << static_cast<int>(
                                      sim::FaultKind::kSensorSpike));
  size_t stamped = 0;
  for (const obs::ControlDecisionRecord& d :
       run.telemetry.decisions().Snapshot()) {
    if (d.loop != "analytics") continue;
    // FaultSpec windows are [start, end).
    const bool in_window =
        d.time >= 30.0 * kMinute && d.time < 50.0 * kMinute;
    if ((d.fault_mask & mask) != 0) {
      ++stamped;
      EXPECT_TRUE(in_window) << "spurious fault stamp at t=" << d.time;
    }
  }
  EXPECT_GT(stamped, 0u);
  EXPECT_GT(run.chaos->stats().sensor_spikes, 0u);
}

TEST(TelemetryIntegrationTest, MetricsRegistryTracksTheLoops) {
  RunOutput run;
  ASSERT_NO_FATAL_FAILURE(RunFlow(&run, 2.0, /*with_faults=*/false));

  obs::MetricsSnapshot snap = run.telemetry.metrics().Snapshot();
  auto gauge = [&](const std::string& name, const std::string& loop) {
    for (const obs::GaugeSample& g : snap.gauges) {
      if (g.name != name) continue;
      for (const auto& [k, v] : g.labels) {
        if (k == "loop" && v == loop) return true;
      }
    }
    return false;
  };
  for (const char* loop : {"ingestion", "analytics", "storage"}) {
    EXPECT_TRUE(gauge("loop.sensed_y", loop)) << loop;
    EXPECT_TRUE(gauge("loop.actuation", loop)) << loop;
    EXPECT_TRUE(gauge("loop.gain", loop)) << loop;
  }
  // The simulator's event-execution histogram collected samples.
  bool found_exec = false;
  for (const obs::HistogramSample& h : snap.histograms) {
    if (h.name == "sim.event_exec_us") {
      found_exec = true;
      EXPECT_GT(h.count, 0u);
    }
  }
  EXPECT_TRUE(found_exec);
}

TEST(TelemetryIntegrationTest, Nsga2ObserverEmitsPlannerTelemetry) {
  obs::Telemetry telemetry;
  core::ResourceShareRequest request;
  opt::Nsga2Config solver;
  solver.population_size = 24;
  solver.generations = 12;
  solver.on_generation =
      obs::MakeNsga2Observer(&telemetry, "planner", /*anchor=*/0.0);
  core::ResourceShareAnalyzer analyzer(solver);
  auto result = analyzer.Analyze(request);
  ASSERT_TRUE(result.ok()) << result.status();

  size_t generation_spans = 0;
  for (const obs::TraceEvent& e : telemetry.trace().events()) {
    if (e.phase == 'X' && e.tid == obs::kPlannerTid) ++generation_spans;
  }
  EXPECT_EQ(generation_spans, 12u);

  obs::MetricsSnapshot snap = telemetry.metrics().Snapshot();
  bool counted = false;
  for (const obs::CounterSample& c : snap.counters) {
    if (c.name == "nsga2.generations") {
      counted = true;
      EXPECT_EQ(c.value, 12u);
    }
  }
  EXPECT_TRUE(counted);
  bool front_size = false;
  for (const obs::GaugeSample& g : snap.gauges) {
    if (g.name == "nsga2.front_size") {
      front_size = true;
      EXPECT_GT(g.value, 0.0);
    }
  }
  EXPECT_TRUE(front_size);
}

TEST(TelemetryIntegrationTest, PlannerTelemetryInvariantUnderSolverThreads) {
  // The NSGA-II observer always runs on the coordinator thread, once
  // per generation, so the recorded planner telemetry must be identical
  // whether the solver fans out over 1 or 4 threads.
  auto run = [](size_t threads, obs::Telemetry* telemetry) {
    core::ResourceShareRequest request;
    opt::Nsga2Config solver;
    solver.population_size = 24;
    solver.generations = 12;
    solver.num_threads = threads;
    solver.on_generation =
        obs::MakeNsga2Observer(telemetry, "planner", /*anchor=*/0.0);
    core::ResourceShareAnalyzer analyzer(solver);
    auto result = analyzer.Analyze(request);
    ASSERT_TRUE(result.ok()) << result.status();
  };
  obs::Telemetry serial, parallel;
  ASSERT_NO_FATAL_FAILURE(run(1, &serial));
  ASSERT_NO_FATAL_FAILURE(run(4, &parallel));

  auto planner_spans = [](const obs::Telemetry& t) {
    std::vector<std::pair<double, double>> spans;
    for (const obs::TraceEvent& e : t.trace().events()) {
      if (e.phase == 'X' && e.tid == obs::kPlannerTid) {
        spans.push_back({e.ts_us, e.dur_us});
      }
    }
    return spans;
  };
  EXPECT_EQ(planner_spans(serial).size(), 12u);
  EXPECT_EQ(planner_spans(serial), planner_spans(parallel));

  auto planner_gauges = [](const obs::Telemetry& t) {
    std::vector<std::pair<std::string, double>> out;
    obs::MetricsSnapshot snap = t.metrics().Snapshot();
    for (const obs::GaugeSample& g : snap.gauges) {
      if (g.name.rfind("nsga2.", 0) == 0) out.push_back({g.name, g.value});
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  auto serial_gauges = planner_gauges(serial);
  EXPECT_FALSE(serial_gauges.empty());
  EXPECT_EQ(serial_gauges, planner_gauges(parallel));
}

}  // namespace
}  // namespace flower
