#include "obs/health/attribution.h"

#include <gtest/gtest.h>

namespace flower::obs::health {
namespace {

ControlDecisionRecord Rec(SimTime t, const char* layer, StepOutcome outcome,
                          double raw_u = 0.0, double clamped_u = 0.0) {
  ControlDecisionRecord r;
  r.time = t;
  r.loop = layer;
  r.layer = layer;
  r.outcome = outcome;
  r.raw_u = raw_u;
  r.clamped_u = clamped_u;
  return r;
}

SloStatus Breached(const char* id, const char* layer) {
  SloStatus s;
  s.id = id;
  s.layer = layer;
  s.breached = true;
  s.burn_fast = 20.0;
  s.burn_slow = 15.0;
  return s;
}

TEST(AttributionTest, SaturatedLayerOutranksHealthyOnes) {
  RootCauseAttributor attributor;
  std::vector<ControlDecisionRecord> decisions;
  // Storage asked for 200 units, got 100 — clamped hard every step.
  // Ingestion and analytics actuate exactly what they asked for.
  for (int i = 0; i < 5; ++i) {
    SimTime t = 1000.0 + 60.0 * i;
    decisions.push_back(
        Rec(t, "storage", StepOutcome::kActuated, 200.0, 100.0));
    decisions.push_back(
        Rec(t, "ingestion", StepOutcome::kActuated, 4.0, 4.0));
    decisions.push_back(
        Rec(t, "analytics", StepOutcome::kActuated, 8.0, 8.0));
  }
  HealthReport report = attributor.Attribute(
      1300.0, Breached("flow/writes", "storage"), decisions, {});
  ASSERT_FALSE(report.ranking.empty());
  EXPECT_EQ(report.ranking.front().layer, "storage");
  EXPECT_GT(report.ranking.front().score, 0.0);
  ASSERT_FALSE(report.ranking.front().evidence.empty());
  EXPECT_EQ(report.ranking.front().evidence.front().kind, "saturation");
  EXPECT_NE(report.summary.find("storage"), std::string::npos);
  EXPECT_NE(report.summary.find("flow/writes"), std::string::npos);
}

TEST(AttributionTest, SymptomsAreFractionsNotRawCounts) {
  // A fast loop logging 10x the records must not win just by volume:
  // same symptom fraction → same score.
  RootCauseAttributor attributor;
  std::vector<ControlDecisionRecord> decisions;
  for (int i = 0; i < 40; ++i) {
    decisions.push_back(Rec(1000.0 + 10.0 * i, "fast",
                            i % 2 == 0 ? StepOutcome::kActuationFailed
                                       : StepOutcome::kActuated));
  }
  for (int i = 0; i < 4; ++i) {
    decisions.push_back(Rec(1000.0 + 100.0 * i, "slow",
                            i % 2 == 0 ? StepOutcome::kActuationFailed
                                       : StepOutcome::kActuated));
  }
  HealthReport report =
      attributor.Attribute(1400.0, Breached("flow/x", ""), decisions, {});
  ASSERT_EQ(report.ranking.size(), 2u);
  EXPECT_NEAR(report.ranking[0].score, report.ranking[1].score, 1e-9);
}

TEST(AttributionTest, OldDecisionsFallOutsideTheWindow) {
  AttributorConfig config;
  config.decision_window_sec = 300.0;
  RootCauseAttributor attributor(config);
  std::vector<ControlDecisionRecord> decisions = {
      Rec(100.0, "storage", StepOutcome::kActuationFailed),  // Ancient.
      Rec(950.0, "storage", StepOutcome::kActuated, 0.0, 0.0),
  };
  HealthReport report =
      attributor.Attribute(1000.0, Breached("x", "storage"), decisions, {});
  // The only in-window record is symptom-free: nothing to pin on anyone.
  for (const LayerAttribution& a : report.ranking) {
    EXPECT_DOUBLE_EQ(a.score, 0.0);
  }
  EXPECT_NE(report.summary.find("no layer implicated"), std::string::npos);
}

TEST(AttributionTest, AnomalyCreditIsCapped) {
  AttributorConfig config;
  config.w_anomaly = 2.0;
  config.anomaly_cap = 4.0;
  RootCauseAttributor attributor(config);
  std::vector<AnomalyEvent> anomalies;
  for (int i = 0; i < 50; ++i) {
    anomalies.push_back({900.0 + i, "loop.sensed_y{loop=analytics}",
                         "analytics", AnomalyKind::kSpike, 99.0, 7.5});
  }
  HealthReport report =
      attributor.Attribute(1000.0, Breached("x", ""), {}, anomalies);
  ASSERT_FALSE(report.ranking.empty());
  EXPECT_EQ(report.ranking.front().layer, "analytics");
  EXPECT_DOUBLE_EQ(report.ranking.front().score, 4.0);  // Capped.
  EXPECT_EQ(report.recent_anomalies.size(), 50u);
}

TEST(AttributionTest, DependencyEdgeCreditsTheDistressedResponseLayer) {
  RootCauseAttributor attributor;
  DependencyEdge edge;
  edge.predictor_layer = "ingestion";
  edge.response_layer = "storage";
  edge.predictor_metric = "IncomingRecords";
  edge.response_metric = "ConsumedWriteCapacityUnits";
  edge.slope = 0.4;
  edge.correlation = 0.95;
  edge.r_squared = 0.9;
  edge.significant = true;
  attributor.SetDependencyEdges({edge});

  std::vector<ControlDecisionRecord> decisions;
  for (int i = 0; i < 5; ++i) {
    decisions.push_back(Rec(900.0 + 20.0 * i, "storage",
                            StepOutcome::kActuated, 300.0, 150.0));
  }
  HealthReport report = attributor.Attribute(
      1000.0, Breached("flow/writes", "storage"), decisions, {});
  ASSERT_FALSE(report.ranking.empty());
  const LayerAttribution& top = report.ranking.front();
  EXPECT_EQ(top.layer, "storage");
  bool has_dependency = false;
  for (const AttributionEvidence& e : top.evidence) {
    if (e.kind == "dependency") {
      has_dependency = true;
      EXPECT_NE(e.detail.find("Eq. 1"), std::string::npos);
      EXPECT_NE(e.detail.find("ingestion"), std::string::npos);
      EXPECT_NEAR(e.weight, 2.0 * 0.95, 1e-9);
    }
  }
  EXPECT_TRUE(has_dependency);

  // An insignificant edge adds nothing.
  edge.significant = false;
  attributor.SetDependencyEdges({edge});
  HealthReport without = attributor.Attribute(
      1000.0, Breached("flow/writes", "storage"), decisions, {});
  EXPECT_LT(without.ranking.front().score, top.score);
}

TEST(AttributionTest, DependencyNeedsDistressOrSloLayer) {
  // The edge's response layer is healthy and not the SLO's layer:
  // no credit, though the layer still appears in the ranking.
  RootCauseAttributor attributor;
  DependencyEdge edge;
  edge.predictor_layer = "ingestion";
  edge.response_layer = "analytics";
  edge.correlation = 0.9;
  edge.significant = true;
  attributor.SetDependencyEdges({edge});
  HealthReport report =
      attributor.Attribute(1000.0, Breached("x", "storage"), {}, {});
  for (const LayerAttribution& a : report.ranking) {
    EXPECT_DOUBLE_EQ(a.score, 0.0) << a.layer;
  }
}

TEST(AttributionTest, RankingDeterministicOnTies) {
  RootCauseAttributor attributor;
  std::vector<ControlDecisionRecord> decisions = {
      Rec(990.0, "zeta", StepOutcome::kSensorMiss),
      Rec(990.0, "alpha", StepOutcome::kSensorMiss),
  };
  HealthReport report =
      attributor.Attribute(1000.0, Breached("x", ""), decisions, {});
  ASSERT_EQ(report.ranking.size(), 2u);
  EXPECT_DOUBLE_EQ(report.ranking[0].score, report.ranking[1].score);
  EXPECT_EQ(report.ranking[0].layer, "alpha");  // Name breaks the tie.
  EXPECT_EQ(report.ranking[1].layer, "zeta");
}

}  // namespace
}  // namespace flower::obs::health
