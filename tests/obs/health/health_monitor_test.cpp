#include "obs/health/health_monitor.h"

#include <cmath>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace flower::obs::health {
namespace {

SloSpec TightUtilSpec(const char* layer) {
  SloSpec spec;
  spec.id = std::string(layer) + "/util";
  spec.layer = layer;
  spec.kind = SliKind::kGaugeBelow;
  spec.metric = {"cpu", {{"layer", layer}}};
  spec.threshold = 85.0;
  spec.objective = 0.9;
  spec.fast_window_sec = 300.0;
  spec.slow_window_sec = 600.0;
  spec.budget_window_sec = 1200.0;
  spec.burn_alert_threshold = 5.0;  // Reachable with a 0.9 objective.
  return spec;
}

TEST(HealthMonitorTest, RejectsDuplicateAndInvalidSlos) {
  Telemetry telemetry;
  HealthMonitor monitor(&telemetry);
  ASSERT_TRUE(monitor.AddSlo(TightUtilSpec("analytics")).ok());
  EXPECT_FALSE(monitor.AddSlo(TightUtilSpec("analytics")).ok());
  SloSpec bad = TightUtilSpec("storage");
  bad.objective = 2.0;
  EXPECT_FALSE(monitor.AddSlo(bad).ok());
}

TEST(HealthMonitorTest, PublishesSloGaugesIntoTheRegistry) {
  Telemetry telemetry;
  HealthMonitor monitor(&telemetry);
  ASSERT_TRUE(monitor.AddSlo(TightUtilSpec("analytics")).ok());
  Gauge* cpu = telemetry.metrics().GetGauge("cpu", {{"layer", "analytics"}});
  cpu->Set(50.0);
  for (int i = 1; i <= 10; ++i) monitor.Evaluate(60.0 * i);

  // The monitor's own state flows through the same registry every other
  // instrument uses.
  MetricsSnapshot snap = telemetry.metrics().Snapshot();
  const GaugeSample* good = FindGauge(
      snap, {"slo.good_fraction",
             {{"slo", "analytics/util"}, {"layer", "analytics"}}});
  ASSERT_NE(good, nullptr);
  EXPECT_DOUBLE_EQ(good->value, 1.0);
  const GaugeSample* breached = FindGauge(
      snap,
      {"slo.breached", {{"slo", "analytics/util"}, {"layer", "analytics"}}});
  ASSERT_NE(breached, nullptr);
  EXPECT_DOUBLE_EQ(breached->value, 0.0);
}

TEST(HealthMonitorTest, BreachReportAndMaskLifecycle) {
  Telemetry telemetry;
  HealthMonitorConfig config;
  config.eval_period_sec = 60.0;
  HealthMonitor monitor(&telemetry, config);
  ASSERT_TRUE(monitor.AddSlo(TightUtilSpec("analytics")).ok());

  Gauge* cpu = telemetry.metrics().GetGauge("cpu", {{"layer", "analytics"}});
  cpu->Set(50.0);
  SimTime t = 0.0;
  for (int i = 0; i < 20; ++i) monitor.Evaluate(t += 60.0);
  EXPECT_TRUE(monitor.ActiveAlerts().empty());
  EXPECT_EQ(monitor.MaskFor("analytics"), 0);

  // Saturate until the multi-window alert fires.
  cpu->Set(99.0);
  int fired_tick = -1;
  for (int i = 0; i < 15 && fired_tick < 0; ++i) {
    monitor.Evaluate(t += 60.0);
    if (!monitor.ActiveAlerts().empty()) fired_tick = i;
  }
  ASSERT_GE(fired_tick, 0);
  EXPECT_EQ(monitor.ActiveAlerts().front(), "analytics/util");
  EXPECT_EQ(monitor.MaskFor("analytics") & kHealthLayerBreach,
            kHealthLayerBreach);
  EXPECT_EQ(monitor.MaskFor("storage"), 0);  // Layer SLO, not flow-wide.
  ASSERT_EQ(monitor.reports().size(), 1u);   // Report on the alert edge.
  EXPECT_EQ(monitor.reports().front().slo.id, "analytics/util");

  // Recover: alert clears, mask drops.
  cpu->Set(40.0);
  for (int i = 0; i < 10; ++i) monitor.Evaluate(t += 60.0);
  EXPECT_TRUE(monitor.ActiveAlerts().empty());
  EXPECT_EQ(monitor.MaskFor("analytics") & kHealthLayerBreach, 0);
}

TEST(HealthMonitorTest, FlowWideSloSetsFlowBitForEveryLayer) {
  Telemetry telemetry;
  HealthMonitor monitor(&telemetry);
  SloSpec flow = TightUtilSpec("analytics");
  flow.id = "flow/util";
  flow.layer = "";  // Flow-wide.
  ASSERT_TRUE(monitor.AddSlo(flow).ok());
  Gauge* cpu = telemetry.metrics().GetGauge("cpu", {{"layer", "analytics"}});
  cpu->Set(99.0);
  SimTime t = 0.0;
  for (int i = 0; i < 20; ++i) monitor.Evaluate(t += 60.0);
  ASSERT_FALSE(monitor.ActiveAlerts().empty());
  EXPECT_EQ(monitor.MaskFor("analytics") & kHealthFlowBreach,
            kHealthFlowBreach);
  EXPECT_EQ(monitor.MaskFor("storage") & kHealthFlowBreach,
            kHealthFlowBreach);
}

TEST(HealthMonitorTest, AnomalyEventsAreLoggedCountedAndBounded) {
  Telemetry telemetry;
  HealthMonitorConfig config;
  config.max_anomaly_events = 3;
  HealthMonitor monitor(&telemetry, config);
  AnomalyConfig detector;
  detector.warmup_samples = 4;
  ASSERT_TRUE(monitor
                  .Watch(AnomalyBank::Source::kGauge, {"sig", {}},
                         "analytics", detector)
                  .ok());
  Gauge* sig = telemetry.metrics().GetGauge("sig");
  SimTime t = 0.0;
  for (int i = 0; i < 20; ++i) {
    sig->Set(10.0 + 0.1 * (i % 3));
    monitor.Evaluate(t += 60.0);
  }
  ASSERT_TRUE(monitor.anomaly_log().empty());

  // Alternate spikes: each flagged tick appends one event; the log
  // keeps only the newest max_anomaly_events.
  for (int i = 0; i < 10; ++i) {
    sig->Set(i % 2 == 0 ? 500.0 + i : 10.0);
    monitor.Evaluate(t += 60.0);
  }
  EXPECT_LE(monitor.anomaly_log().size(), 3u);
  EXPECT_FALSE(monitor.anomaly_log().empty());
  // The mask carries the anomaly bit for the stream's layer while the
  // latest tick is anomalous.
  MetricsSnapshot snap = telemetry.metrics().Snapshot();
  const CounterSample* counted = FindCounter(snap, {"health.anomalies", {}});
  ASSERT_NE(counted, nullptr);
  EXPECT_GE(counted->value, monitor.anomaly_log().size());
}

TEST(HealthMonitorTest, JsonlSerializationIsStable) {
  Telemetry telemetry;
  HealthMonitor monitor(&telemetry);
  ASSERT_TRUE(monitor.AddSlo(TightUtilSpec("analytics")).ok());
  Gauge* cpu = telemetry.metrics().GetGauge("cpu", {{"layer", "analytics"}});
  cpu->Set(99.0);
  SimTime t = 0.0;
  for (int i = 0; i < 20; ++i) monitor.Evaluate(t += 60.0);

  std::ostringstream a, b;
  monitor.WriteJsonl(a);
  monitor.WriteJsonl(b);
  EXPECT_EQ(a.str(), b.str());  // Pure serialization, no hidden state.
  EXPECT_NE(a.str().find("\"type\":\"slo\""), std::string::npos);
  EXPECT_NE(a.str().find("\"type\":\"report\""), std::string::npos);
  EXPECT_NE(a.str().find("\"id\":\"analytics/util\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Rollup-feed regression (ISSUE 7 acceptance criterion): burn-rate
// alerts computed from the RollupStore's sparse tracked snapshot must
// match the raw full-registry scan tick for tick on a recorded trace —
// across all three SLI kinds plus an anomaly watch — with the raw scan
// retired from the hot path (use_rollups defaults to true).

// Replays a deterministic 4-hour recorded trace (saturation burst at
// hour 1, error burst at hour 2, latency regression at hour 3, gauge
// spikes threaded throughout) into `monitor`, appending one formatted
// line per tick capturing everything Evaluate publishes.
std::string ReplayRecordedTrace(HealthMonitor* monitor,
                                Telemetry* telemetry) {
  Gauge* cpu =
      telemetry->metrics().GetGauge("cpu", {{"layer", "analytics"}});
  Counter* errors = telemetry->metrics().GetCounter("requests.errors");
  Counter* total = telemetry->metrics().GetCounter("requests.total");
  Histogram* latency = telemetry->metrics().GetHistogram("latency_ms");
  Gauge* sig = telemetry->metrics().GetGauge("sig");

  std::ostringstream trajectory;
  for (int i = 1; i <= 240; ++i) {
    double t = 60.0 * i;
    bool cpu_burst = i > 60 && i <= 90;
    cpu->Set(cpu_burst ? 99.0 : 50.0 + 10.0 * std::sin(0.1 * i));
    bool error_burst = i > 120 && i <= 150;
    total->Increment(100);
    errors->Increment(error_burst ? 40 : 1);
    bool slow = i > 180 && i <= 210;
    for (int s = 0; s < 5; ++s) {
      latency->Record(slow ? 900.0 + 10.0 * s : 20.0 + (i + s) % 7);
    }
    sig->Set(i % 17 == 0 ? 400.0 : 10.0 + 0.1 * (i % 5));
    monitor->Evaluate(t);

    trajectory << "t=" << t;
    for (const SloStatus& s : monitor->Statuses()) {
      trajectory << " " << s.id << ":gf=" << s.good_fraction
                 << ",bf=" << s.burn_fast << ",bs=" << s.burn_slow
                 << ",budget=" << s.budget_consumed
                 << ",breached=" << s.breached
                 << ",since=" << s.breach_since
                 << ",alerts=" << s.alerts_fired;
    }
    trajectory << " active=";
    for (const std::string& id : monitor->ActiveAlerts()) {
      trajectory << id << ";";
    }
    for (const char* layer : {"ingestion", "analytics", "storage"}) {
      trajectory << " mask(" << layer
                 << ")=" << static_cast<int>(monitor->MaskFor(layer));
    }
    trajectory << " anomalies=" << monitor->anomaly_log().size()
               << " reports=" << monitor->reports().size() << "\n";
  }
  monitor->WriteJsonl(trajectory);
  return trajectory.str();
}

TEST(HealthMonitorTest, RollupFeedMatchesRawScanOnRecordedTrace) {
  auto run = [](bool use_rollups) {
    auto telemetry = std::make_unique<Telemetry>();
    HealthMonitorConfig config;
    config.eval_period_sec = 60.0;
    config.use_rollups = use_rollups;

    auto monitor = std::make_unique<HealthMonitor>(telemetry.get(), config);
    SloSpec util = TightUtilSpec("analytics");
    EXPECT_TRUE(monitor->AddSlo(util).ok());

    SloSpec availability;
    availability.id = "flow/availability";
    availability.layer = "";
    availability.kind = SliKind::kCounterRatio;
    availability.metric = {"requests.errors", {}};
    availability.total = {"requests.total", {}};
    availability.objective = 0.95;
    availability.fast_window_sec = 300.0;
    availability.slow_window_sec = 1800.0;
    availability.budget_window_sec = 7200.0;
    availability.burn_alert_threshold = 4.0;
    EXPECT_TRUE(monitor->AddSlo(availability).ok());

    SloSpec lat;
    lat.id = "storage/latency";
    lat.layer = "storage";
    lat.kind = SliKind::kHistogramBelow;
    lat.metric = {"latency_ms", {}};
    lat.threshold = 500.0;
    lat.objective = 0.95;
    lat.fast_window_sec = 300.0;
    lat.slow_window_sec = 1800.0;
    lat.budget_window_sec = 7200.0;
    lat.burn_alert_threshold = 4.0;
    EXPECT_TRUE(monitor->AddSlo(lat).ok());

    AnomalyConfig detector;
    detector.warmup_samples = 8;
    EXPECT_TRUE(monitor
                    ->Watch(AnomalyBank::Source::kGauge, {"sig", {}},
                            "analytics", detector)
                    .ok());
    EXPECT_EQ(monitor->rollups() != nullptr, use_rollups);
    return ReplayRecordedTrace(monitor.get(), telemetry.get());
  };

  std::string rollup_fed = run(/*use_rollups=*/true);
  std::string raw_scan = run(/*use_rollups=*/false);
  EXPECT_EQ(rollup_fed, raw_scan);
  // The trace actually exercised alert transitions, not 240 quiet
  // ticks: every SLO must have fired at least once.
  EXPECT_NE(rollup_fed.find("analytics/util;"), std::string::npos);
  EXPECT_NE(rollup_fed.find("flow/availability;"), std::string::npos);
  EXPECT_NE(rollup_fed.find("storage/latency;"), std::string::npos);
}

TEST(MakeDefaultSloPackTest, CoversAllThreeLayers) {
  std::vector<SloSpec> pack = MakeDefaultSloPack(90.0, 0.95);
  ASSERT_EQ(pack.size(), 3u);
  for (const SloSpec& spec : pack) {
    EXPECT_TRUE(ValidateSloSpec(spec).ok()) << spec.id;
    EXPECT_EQ(spec.metric.name, "loop.sensed_y");
    EXPECT_DOUBLE_EQ(spec.threshold, 90.0);
  }
  EXPECT_EQ(pack[0].id, "ingestion/utilization");
}

}  // namespace
}  // namespace flower::obs::health
