#include "obs/health/health_monitor.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace flower::obs::health {
namespace {

SloSpec TightUtilSpec(const char* layer) {
  SloSpec spec;
  spec.id = std::string(layer) + "/util";
  spec.layer = layer;
  spec.kind = SliKind::kGaugeBelow;
  spec.metric = {"cpu", {{"layer", layer}}};
  spec.threshold = 85.0;
  spec.objective = 0.9;
  spec.fast_window_sec = 300.0;
  spec.slow_window_sec = 600.0;
  spec.budget_window_sec = 1200.0;
  spec.burn_alert_threshold = 5.0;  // Reachable with a 0.9 objective.
  return spec;
}

TEST(HealthMonitorTest, RejectsDuplicateAndInvalidSlos) {
  Telemetry telemetry;
  HealthMonitor monitor(&telemetry);
  ASSERT_TRUE(monitor.AddSlo(TightUtilSpec("analytics")).ok());
  EXPECT_FALSE(monitor.AddSlo(TightUtilSpec("analytics")).ok());
  SloSpec bad = TightUtilSpec("storage");
  bad.objective = 2.0;
  EXPECT_FALSE(monitor.AddSlo(bad).ok());
}

TEST(HealthMonitorTest, PublishesSloGaugesIntoTheRegistry) {
  Telemetry telemetry;
  HealthMonitor monitor(&telemetry);
  ASSERT_TRUE(monitor.AddSlo(TightUtilSpec("analytics")).ok());
  Gauge* cpu = telemetry.metrics().GetGauge("cpu", {{"layer", "analytics"}});
  cpu->Set(50.0);
  for (int i = 1; i <= 10; ++i) monitor.Evaluate(60.0 * i);

  // The monitor's own state flows through the same registry every other
  // instrument uses.
  MetricsSnapshot snap = telemetry.metrics().Snapshot();
  const GaugeSample* good = FindGauge(
      snap, {"slo.good_fraction",
             {{"slo", "analytics/util"}, {"layer", "analytics"}}});
  ASSERT_NE(good, nullptr);
  EXPECT_DOUBLE_EQ(good->value, 1.0);
  const GaugeSample* breached = FindGauge(
      snap,
      {"slo.breached", {{"slo", "analytics/util"}, {"layer", "analytics"}}});
  ASSERT_NE(breached, nullptr);
  EXPECT_DOUBLE_EQ(breached->value, 0.0);
}

TEST(HealthMonitorTest, BreachReportAndMaskLifecycle) {
  Telemetry telemetry;
  HealthMonitorConfig config;
  config.eval_period_sec = 60.0;
  HealthMonitor monitor(&telemetry, config);
  ASSERT_TRUE(monitor.AddSlo(TightUtilSpec("analytics")).ok());

  Gauge* cpu = telemetry.metrics().GetGauge("cpu", {{"layer", "analytics"}});
  cpu->Set(50.0);
  SimTime t = 0.0;
  for (int i = 0; i < 20; ++i) monitor.Evaluate(t += 60.0);
  EXPECT_TRUE(monitor.ActiveAlerts().empty());
  EXPECT_EQ(monitor.MaskFor("analytics"), 0);

  // Saturate until the multi-window alert fires.
  cpu->Set(99.0);
  int fired_tick = -1;
  for (int i = 0; i < 15 && fired_tick < 0; ++i) {
    monitor.Evaluate(t += 60.0);
    if (!monitor.ActiveAlerts().empty()) fired_tick = i;
  }
  ASSERT_GE(fired_tick, 0);
  EXPECT_EQ(monitor.ActiveAlerts().front(), "analytics/util");
  EXPECT_EQ(monitor.MaskFor("analytics") & kHealthLayerBreach,
            kHealthLayerBreach);
  EXPECT_EQ(monitor.MaskFor("storage"), 0);  // Layer SLO, not flow-wide.
  ASSERT_EQ(monitor.reports().size(), 1u);   // Report on the alert edge.
  EXPECT_EQ(monitor.reports().front().slo.id, "analytics/util");

  // Recover: alert clears, mask drops.
  cpu->Set(40.0);
  for (int i = 0; i < 10; ++i) monitor.Evaluate(t += 60.0);
  EXPECT_TRUE(monitor.ActiveAlerts().empty());
  EXPECT_EQ(monitor.MaskFor("analytics") & kHealthLayerBreach, 0);
}

TEST(HealthMonitorTest, FlowWideSloSetsFlowBitForEveryLayer) {
  Telemetry telemetry;
  HealthMonitor monitor(&telemetry);
  SloSpec flow = TightUtilSpec("analytics");
  flow.id = "flow/util";
  flow.layer = "";  // Flow-wide.
  ASSERT_TRUE(monitor.AddSlo(flow).ok());
  Gauge* cpu = telemetry.metrics().GetGauge("cpu", {{"layer", "analytics"}});
  cpu->Set(99.0);
  SimTime t = 0.0;
  for (int i = 0; i < 20; ++i) monitor.Evaluate(t += 60.0);
  ASSERT_FALSE(monitor.ActiveAlerts().empty());
  EXPECT_EQ(monitor.MaskFor("analytics") & kHealthFlowBreach,
            kHealthFlowBreach);
  EXPECT_EQ(monitor.MaskFor("storage") & kHealthFlowBreach,
            kHealthFlowBreach);
}

TEST(HealthMonitorTest, AnomalyEventsAreLoggedCountedAndBounded) {
  Telemetry telemetry;
  HealthMonitorConfig config;
  config.max_anomaly_events = 3;
  HealthMonitor monitor(&telemetry, config);
  AnomalyConfig detector;
  detector.warmup_samples = 4;
  ASSERT_TRUE(monitor
                  .Watch(AnomalyBank::Source::kGauge, {"sig", {}},
                         "analytics", detector)
                  .ok());
  Gauge* sig = telemetry.metrics().GetGauge("sig");
  SimTime t = 0.0;
  for (int i = 0; i < 20; ++i) {
    sig->Set(10.0 + 0.1 * (i % 3));
    monitor.Evaluate(t += 60.0);
  }
  ASSERT_TRUE(monitor.anomaly_log().empty());

  // Alternate spikes: each flagged tick appends one event; the log
  // keeps only the newest max_anomaly_events.
  for (int i = 0; i < 10; ++i) {
    sig->Set(i % 2 == 0 ? 500.0 + i : 10.0);
    monitor.Evaluate(t += 60.0);
  }
  EXPECT_LE(monitor.anomaly_log().size(), 3u);
  EXPECT_FALSE(monitor.anomaly_log().empty());
  // The mask carries the anomaly bit for the stream's layer while the
  // latest tick is anomalous.
  MetricsSnapshot snap = telemetry.metrics().Snapshot();
  const CounterSample* counted = FindCounter(snap, {"health.anomalies", {}});
  ASSERT_NE(counted, nullptr);
  EXPECT_GE(counted->value, monitor.anomaly_log().size());
}

TEST(HealthMonitorTest, JsonlSerializationIsStable) {
  Telemetry telemetry;
  HealthMonitor monitor(&telemetry);
  ASSERT_TRUE(monitor.AddSlo(TightUtilSpec("analytics")).ok());
  Gauge* cpu = telemetry.metrics().GetGauge("cpu", {{"layer", "analytics"}});
  cpu->Set(99.0);
  SimTime t = 0.0;
  for (int i = 0; i < 20; ++i) monitor.Evaluate(t += 60.0);

  std::ostringstream a, b;
  monitor.WriteJsonl(a);
  monitor.WriteJsonl(b);
  EXPECT_EQ(a.str(), b.str());  // Pure serialization, no hidden state.
  EXPECT_NE(a.str().find("\"type\":\"slo\""), std::string::npos);
  EXPECT_NE(a.str().find("\"type\":\"report\""), std::string::npos);
  EXPECT_NE(a.str().find("\"id\":\"analytics/util\""), std::string::npos);
}

TEST(MakeDefaultSloPackTest, CoversAllThreeLayers) {
  std::vector<SloSpec> pack = MakeDefaultSloPack(90.0, 0.95);
  ASSERT_EQ(pack.size(), 3u);
  for (const SloSpec& spec : pack) {
    EXPECT_TRUE(ValidateSloSpec(spec).ok()) << spec.id;
    EXPECT_EQ(spec.metric.name, "loop.sensed_y");
    EXPECT_DOUBLE_EQ(spec.threshold, 90.0);
  }
  EXPECT_EQ(pack[0].id, "ingestion/utilization");
}

}  // namespace
}  // namespace flower::obs::health
