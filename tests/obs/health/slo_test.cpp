#include "obs/health/slo.h"

#include <gtest/gtest.h>

namespace flower::obs::health {
namespace {

// One tick of a gauge-driven tracker: set the gauge, snapshot, update.
void Tick(SloTracker* tracker, MetricsRegistry* registry, Gauge* gauge,
          double value, SimTime now) {
  gauge->Set(value);
  tracker->Update(now, registry->Snapshot());
}

SloSpec UtilSpec() {
  SloSpec spec;
  spec.id = "analytics/utilization";
  spec.layer = "analytics";
  spec.kind = SliKind::kGaugeBelow;
  spec.metric = {"cpu", {{"layer", "analytics"}}};
  spec.threshold = 85.0;
  spec.objective = 0.9;
  spec.fast_window_sec = 300.0;   // 5 ticks at 60 s.
  spec.slow_window_sec = 600.0;   // 10 ticks.
  spec.budget_window_sec = 1200.0;
  return spec;
}

TEST(ValidateSloSpecTest, AcceptsDefaultsRejectsDegenerate) {
  EXPECT_TRUE(ValidateSloSpec(UtilSpec()).ok());

  SloSpec spec = UtilSpec();
  spec.id = "";
  EXPECT_FALSE(ValidateSloSpec(spec).ok());

  spec = UtilSpec();
  spec.metric.name = "";
  EXPECT_FALSE(ValidateSloSpec(spec).ok());

  spec = UtilSpec();
  spec.objective = 1.0;
  EXPECT_FALSE(ValidateSloSpec(spec).ok());
  spec.objective = 0.0;
  EXPECT_FALSE(ValidateSloSpec(spec).ok());

  spec = UtilSpec();
  spec.kind = SliKind::kCounterRatio;
  spec.total.name = "";
  EXPECT_FALSE(ValidateSloSpec(spec).ok());

  spec = UtilSpec();
  spec.slow_window_sec = spec.fast_window_sec / 2.0;
  EXPECT_FALSE(ValidateSloSpec(spec).ok());

  spec = UtilSpec();
  spec.burn_alert_threshold = 0.0;
  EXPECT_FALSE(ValidateSloSpec(spec).ok());
}

TEST(MetricSelectorTest, FindersMatchRegardlessOfLabelOrder) {
  MetricsRegistry registry;
  registry.GetGauge("cpu", {{"layer", "analytics"}, {"loop", "analytics"}})
      ->Set(50.0);
  MetricsSnapshot snap = registry.Snapshot();
  // Selector lists labels in the opposite order.
  const GaugeSample* found = FindGauge(
      snap, {"cpu", {{"loop", "analytics"}, {"layer", "analytics"}}});
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->value, 50.0);
  EXPECT_EQ(FindGauge(snap, {"cpu", {{"layer", "storage"}}}), nullptr);
}

TEST(SloTrackerTest, HealthyGaugeNeverBurns) {
  MetricsRegistry registry;
  Gauge* cpu = registry.GetGauge("cpu", {{"layer", "analytics"}});
  SloTracker tracker(UtilSpec(), 60.0);
  for (int i = 0; i < 30; ++i) {
    Tick(&tracker, &registry, cpu, 60.0, 60.0 * (i + 1));
  }
  const SloStatus& s = tracker.status();
  EXPECT_DOUBLE_EQ(s.good_fraction, 1.0);
  EXPECT_DOUBLE_EQ(s.burn_fast, 0.0);
  EXPECT_DOUBLE_EQ(s.burn_slow, 0.0);
  EXPECT_DOUBLE_EQ(s.budget_consumed, 0.0);
  EXPECT_FALSE(s.breached);
  EXPECT_EQ(s.alerts_fired, 0u);
  EXPECT_EQ(s.evaluations, 30u);
}

TEST(SloTrackerTest, ColdStartCannotAlertBeforeFastWindowFills) {
  MetricsRegistry registry;
  Gauge* cpu = registry.GetGauge("cpu", {{"layer", "analytics"}});
  SloSpec spec = UtilSpec();
  spec.burn_alert_threshold = 5.0;  // Reachable with a 0.9 objective.
  SloTracker tracker(spec, 60.0);
  // Saturated from the very first tick: burn is maximal immediately,
  // but the alert must wait for one full fast window (5 ticks).
  for (int i = 1; i <= 4; ++i) {
    Tick(&tracker, &registry, cpu, 99.0, 60.0 * i);
    EXPECT_FALSE(tracker.status().breached) << "tick " << i;
  }
  Tick(&tracker, &registry, cpu, 99.0, 300.0);
  EXPECT_TRUE(tracker.status().breached);
  EXPECT_EQ(tracker.status().alerts_fired, 1u);
  EXPECT_DOUBLE_EQ(tracker.status().breach_since, 300.0);
}

TEST(SloTrackerTest, MultiWindowAlertFiresAndClears) {
  MetricsRegistry registry;
  Gauge* cpu = registry.GetGauge("cpu", {{"layer", "analytics"}});
  SloTracker tracker(UtilSpec(), 60.0);
  // Long healthy stretch fills both windows with good ticks.
  SimTime t = 0.0;
  for (int i = 0; i < 20; ++i) Tick(&tracker, &registry, cpu, 60.0, t += 60.0);
  EXPECT_FALSE(tracker.status().breached);

  // With a 0.9 objective the burn rate caps at 1/0.1 = 10, so the SRE
  // default threshold of 14.4 is unreachable; page at burn 5 instead
  // (fast window half bad, confirmed by the slow window).
  SloSpec spec = UtilSpec();
  spec.burn_alert_threshold = 5.0;
  SloTracker paging(spec, 60.0);
  t = 0.0;
  for (int i = 0; i < 20; ++i) Tick(&paging, &registry, cpu, 60.0, t += 60.0);
  ASSERT_FALSE(paging.status().breached);

  int fired_at = -1;
  for (int i = 0; i < 10; ++i) {
    Tick(&paging, &registry, cpu, 99.0, t += 60.0);
    if (paging.status().breached) {
      fired_at = i;
      break;
    }
  }
  // Both windows must agree: not on the first bad tick, but within the
  // slow window's span.
  ASSERT_GE(fired_at, 1);
  ASSERT_LE(fired_at, 9);
  EXPECT_EQ(paging.status().alerts_fired, 1u);

  // Recovery: alert clears as soon as the fast window cools, even while
  // the slow window still remembers the incident.
  int cleared_at = -1;
  for (int i = 0; i < 10; ++i) {
    Tick(&paging, &registry, cpu, 60.0, t += 60.0);
    if (!paging.status().breached) {
      cleared_at = i;
      break;
    }
  }
  ASSERT_GE(cleared_at, 0);
  EXPECT_LE(cleared_at, 5);  // Within one fast window of the recovery.
  EXPECT_GT(paging.status().burn_slow, 0.0);  // Slow window still hot.
  EXPECT_EQ(paging.status().alerts_fired, 1u);  // No re-fire on clear.
}

TEST(SloTrackerTest, GaugeAboveInvertsTheComparison) {
  SloSpec spec = UtilSpec();
  spec.kind = SliKind::kGaugeAbove;
  spec.threshold = 10.0;  // Bad when headroom drops under 10.
  MetricsRegistry registry;
  Gauge* headroom = registry.GetGauge("cpu", {{"layer", "analytics"}});
  SloTracker tracker(spec, 60.0);
  Tick(&tracker, &registry, headroom, 50.0, 60.0);
  EXPECT_DOUBLE_EQ(tracker.status().good_fraction, 1.0);
  Tick(&tracker, &registry, headroom, 5.0, 120.0);
  EXPECT_LT(tracker.status().good_fraction, 1.0);
}

TEST(SloTrackerTest, MissingInstrumentContributesNoEvents) {
  MetricsRegistry registry;  // "cpu" never registered.
  SloTracker tracker(UtilSpec(), 60.0);
  for (int i = 1; i <= 10; ++i) {
    tracker.Update(60.0 * i, registry.Snapshot());
  }
  EXPECT_DOUBLE_EQ(tracker.status().burn_fast, 0.0);
  EXPECT_DOUBLE_EQ(tracker.status().good_fraction, 1.0);
  EXPECT_FALSE(tracker.status().breached);
}

TEST(SloTrackerTest, CounterRatioDifferencesAgainstPreviousTick) {
  SloSpec spec;
  spec.id = "flow/writes";
  spec.kind = SliKind::kCounterRatio;
  spec.metric = {"writes_throttled", {}};
  spec.total = {"writes_total", {}};
  spec.objective = 0.9;
  spec.fast_window_sec = 300.0;
  spec.slow_window_sec = 600.0;
  spec.budget_window_sec = 1200.0;
  ASSERT_TRUE(ValidateSloSpec(spec).ok());

  MetricsRegistry registry;
  Counter* throttled = registry.GetCounter("writes_throttled");
  Counter* total = registry.GetCounter("writes_total");
  // Pre-existing counts: the first sighting is baseline, not events.
  throttled->Increment(100);
  total->Increment(1000);
  SloTracker tracker(spec, 60.0);
  tracker.Update(60.0, registry.Snapshot());
  EXPECT_DOUBLE_EQ(tracker.status().burn_fast, 0.0);

  // 200 writes, 20 throttled → bad fraction 0.1, burn = 0.1/0.1 = 1.
  total->Increment(200);
  throttled->Increment(20);
  tracker.Update(120.0, registry.Snapshot());
  EXPECT_NEAR(tracker.status().burn_fast, 1.0, 1e-9);
  EXPECT_NEAR(tracker.status().good_fraction, 0.9, 1e-9);

  // A tick with no traffic adds no events (not "all good").
  tracker.Update(180.0, registry.Snapshot());
  EXPECT_NEAR(tracker.status().burn_fast, 1.0, 1e-9);
}

TEST(SloTrackerTest, HistogramBelowCountsSlowBucketDeltas) {
  SloSpec spec;
  spec.id = "flow/latency";
  spec.kind = SliKind::kHistogramBelow;
  spec.metric = {"lat", {}};
  spec.threshold = 8.0;  // Recorded values sit far from the threshold.
  spec.objective = 0.5;
  spec.fast_window_sec = 300.0;
  spec.slow_window_sec = 600.0;
  spec.budget_window_sec = 1200.0;

  MetricsRegistry registry;
  Histogram* lat = registry.GetHistogram("lat");
  SloTracker tracker(spec, 60.0);
  tracker.Update(60.0, registry.Snapshot());  // Baseline.

  for (int i = 0; i < 9; ++i) lat->Record(1.0);   // Fast.
  lat->Record(100.0);                             // Slow.
  tracker.Update(120.0, registry.Snapshot());
  // 1 of 10 over threshold, budget fraction 0.5 → burn 0.2.
  EXPECT_NEAR(tracker.status().burn_fast, 0.2, 1e-9);
  EXPECT_NEAR(tracker.status().good_fraction, 0.9, 1e-9);
}

TEST(SloTrackerTest, BudgetConsumedTracksTheLongWindow) {
  MetricsRegistry registry;
  Gauge* cpu = registry.GetGauge("cpu", {{"layer", "analytics"}});
  SloTracker tracker(UtilSpec(), 60.0);  // Budget window: 20 ticks.
  SimTime t = 0.0;
  // 2 bad ticks out of 20, objective 0.9 → allowed = 2, consumed = 1.0.
  for (int i = 0; i < 2; ++i) Tick(&tracker, &registry, cpu, 99.0, t += 60.0);
  for (int i = 0; i < 18; ++i) Tick(&tracker, &registry, cpu, 50.0, t += 60.0);
  EXPECT_NEAR(tracker.status().budget_consumed, 1.0, 1e-9);
}

}  // namespace
}  // namespace flower::obs::health
