#include "obs/health/anomaly.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "exec/thread_pool.h"

namespace flower::obs::health {
namespace {

AnomalyConfig TestConfig() {
  AnomalyConfig cfg;
  cfg.warmup_samples = 4;
  return cfg;
}

// A mildly noisy but stationary signal: deterministic pseudo-noise so
// the detector sees a realistic scale without an RNG in the test.
double Wobble(int i, double base, double amplitude) {
  return base + amplitude * std::sin(0.7 * i) * std::cos(1.3 * i);
}

TEST(AnomalyDetectorTest, NeverFlagsDuringWarmup) {
  AnomalyConfig cfg = TestConfig();
  cfg.warmup_samples = 6;
  AnomalyDetector detector(cfg);
  // Wild values during warmup must not flag: the detector has no
  // baseline yet, only the seed window.
  const double wild[] = {0.0, 1000.0, -500.0, 3.0, 700.0, 2.0};
  for (double x : wild) {
    auto s = detector.Update(x);
    EXPECT_FALSE(s.spike);
    EXPECT_FALSE(s.shift);
  }
  EXPECT_TRUE(detector.warmed_up());
}

TEST(AnomalyDetectorTest, QuietSignalStaysQuiet) {
  AnomalyDetector detector(TestConfig());
  for (int i = 0; i < 200; ++i) {
    auto s = detector.Update(Wobble(i, 50.0, 1.0));
    EXPECT_FALSE(s.spike) << "sample " << i;
    EXPECT_FALSE(s.shift) << "sample " << i;
  }
  EXPECT_NEAR(detector.mean(), 50.0, 2.0);
}

TEST(AnomalyDetectorTest, FlagsSpikeAndRecoverBaseline) {
  AnomalyDetector detector(TestConfig());
  for (int i = 0; i < 50; ++i) detector.Update(Wobble(i, 50.0, 1.0));
  double mean_before = detector.mean();

  auto s = detector.Update(500.0);
  EXPECT_TRUE(s.spike);
  EXPECT_GT(s.z, TestConfig().z_threshold);

  // Winsorized update: one outlier nudges the baseline by at most
  // 3 sigma * alpha, so the mean stays close to the true level and the
  // next normal sample is not flagged as a negative spike.
  EXPECT_LT(detector.mean(), mean_before + 10.0);
  auto next = detector.Update(Wobble(51, 50.0, 1.0));
  EXPECT_FALSE(next.spike);
}

TEST(AnomalyDetectorTest, FlagsLevelShiftAndRecenters) {
  AnomalyDetector detector(TestConfig());
  for (int i = 0; i < 60; ++i) detector.Update(Wobble(i, 50.0, 1.0));

  // Step to a moderately higher level: each sample is a few sigma out
  // (not a one-sample spike at the default gate of 5), but Page–Hinkley
  // accumulates the drift and alarms.
  bool shifted = false;
  int alarm_after = -1;
  for (int i = 0; i < 20 && !shifted; ++i) {
    auto s = detector.Update(Wobble(i, 54.0, 1.0));
    shifted = s.shift;
    alarm_after = i;
  }
  EXPECT_TRUE(shifted);
  EXPECT_LE(alarm_after, 15);
  // Recenter-on-alarm: the detector adopts the new level and goes quiet
  // instead of latching the alarm.
  for (int i = 0; i < 30; ++i) {
    auto s = detector.Update(Wobble(100 + i, 54.0, 1.0));
    EXPECT_FALSE(s.shift) << "sample " << i;
  }
}

TEST(AnomalyDetectorTest, ConstantStreamFlagsAnyChange) {
  AnomalyDetector detector(TestConfig());
  for (int i = 0; i < 20; ++i) detector.Update(5.0);
  // Scale bottoms out at min_scale; the first real movement is a spike.
  auto s = detector.Update(5.1);
  EXPECT_TRUE(s.spike);
}

TEST(AnomalyDetectorTest, IgnoresNan) {
  AnomalyDetector detector(TestConfig());
  for (int i = 0; i < 20; ++i) detector.Update(Wobble(i, 50.0, 1.0));
  double mean_before = detector.mean();
  auto s = detector.Update(std::nan(""));
  EXPECT_FALSE(s.spike);
  EXPECT_FALSE(s.shift);
  EXPECT_DOUBLE_EQ(detector.mean(), mean_before);
}

TEST(AnomalyBankTest, RejectsDuplicateWatch) {
  AnomalyBank bank;
  MetricSelector sel{"loop.sensed_y", {{"loop", "storage"}}};
  ASSERT_TRUE(bank.Watch(AnomalyBank::Source::kGauge, sel, "storage").ok());
  // Same stream, labels listed in a different order: still a duplicate.
  EXPECT_FALSE(bank.Watch(AnomalyBank::Source::kGauge, sel, "storage").ok());
  // Same selector as a counter-rate stream is a different watch.
  EXPECT_TRUE(
      bank.Watch(AnomalyBank::Source::kCounterRate, sel, "storage").ok());
  EXPECT_EQ(bank.NumStreams(), 2u);
}

TEST(AnomalyBankTest, GaugeAndCounterRateStreams) {
  MetricsRegistry registry;
  Gauge* y = registry.GetGauge("y", {{"loop", "a"}});
  Counter* fails = registry.GetCounter("fails", {{"loop", "a"}});

  AnomalyBank bank;
  AnomalyConfig cfg = TestConfig();
  ASSERT_TRUE(
      bank.Watch(AnomalyBank::Source::kGauge, {"y", {{"loop", "a"}}}, "a",
                 cfg)
          .ok());
  ASSERT_TRUE(bank.Watch(AnomalyBank::Source::kCounterRate,
                         {"fails", {{"loop", "a"}}}, "a", cfg)
                  .ok());

  // Steady state: gauge wobbles, counter never moves (rate 0).
  SimTime t = 0.0;
  for (int i = 0; i < 40; ++i) {
    y->Set(Wobble(i, 50.0, 1.0));
    auto events = bank.UpdateAll(t += 60.0, registry.Snapshot());
    EXPECT_TRUE(events.empty()) << "tick " << i;
  }

  // The counter jumps: the rate stream spikes; the gauge stays quiet.
  fails->Increment(50);
  auto events = bank.UpdateAll(t += 60.0, registry.Snapshot());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, AnomalyKind::kSpike);
  EXPECT_NE(events[0].stream.find("fails"), std::string::npos);
  EXPECT_EQ(events[0].layer, "a");
  EXPECT_DOUBLE_EQ(events[0].value, 50.0);

  auto states = bank.States();
  ASSERT_EQ(states.size(), 2u);
  EXPECT_FALSE(states[0].anomalous);  // Gauge stream, registration order.
  EXPECT_TRUE(states[1].anomalous);
}

TEST(AnomalyBankTest, MissingInstrumentSkipsTheTick) {
  AnomalyBank bank;
  ASSERT_TRUE(
      bank.Watch(AnomalyBank::Source::kGauge, {"ghost", {}}, "").ok());
  MetricsRegistry registry;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(bank.UpdateAll(60.0 * i, registry.Snapshot()).empty());
  }
  EXPECT_FALSE(bank.States()[0].anomalous);
}

TEST(AnomalyBankTest, ThreadCountInvariant) {
  // Identical watch set and snapshot sequence, one bank inline and one
  // on a 4-thread pool: every event and every stream state must match
  // exactly, in the same order.
  MetricsRegistry registry;
  std::vector<Gauge*> gauges;
  for (int g = 0; g < 8; ++g) {
    gauges.push_back(
        registry.GetGauge("sig", {{"idx", std::to_string(g)}}));
  }
  AnomalyBank inline_bank, pooled_bank;
  AnomalyConfig cfg = TestConfig();
  for (int g = 0; g < 8; ++g) {
    MetricSelector sel{"sig", {{"idx", std::to_string(g)}}};
    ASSERT_TRUE(
        inline_bank.Watch(AnomalyBank::Source::kGauge, sel, "layer", cfg)
            .ok());
    ASSERT_TRUE(
        pooled_bank.Watch(AnomalyBank::Source::kGauge, sel, "layer", cfg)
            .ok());
  }
  exec::ThreadPool pool(4);

  SimTime t = 0.0;
  for (int i = 0; i < 60; ++i) {
    for (int g = 0; g < 8; ++g) {
      double base = 10.0 * (g + 1);
      // Stream g spikes on tick 40 + g.
      double v = i == 40 + g ? base * 20.0 : Wobble(i + g, base, 0.5);
      gauges[g]->Set(v);
    }
    MetricsSnapshot snap = registry.Snapshot();
    auto a = inline_bank.UpdateAll(t += 60.0, snap, nullptr);
    auto b = pooled_bank.UpdateAll(t, snap, &pool);
    ASSERT_EQ(a.size(), b.size()) << "tick " << i;
    for (size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].stream, b[k].stream);
      EXPECT_EQ(a[k].kind, b[k].kind);
      EXPECT_DOUBLE_EQ(a[k].value, b[k].value);
      EXPECT_DOUBLE_EQ(a[k].score, b[k].score);
    }
    auto sa = inline_bank.States();
    auto sb = pooled_bank.States();
    ASSERT_EQ(sa.size(), sb.size());
    for (size_t k = 0; k < sa.size(); ++k) {
      EXPECT_EQ(sa[k].stream, sb[k].stream);
      EXPECT_DOUBLE_EQ(sa[k].last_value, sb[k].last_value);
      EXPECT_DOUBLE_EQ(sa[k].last_z, sb[k].last_z);
      EXPECT_EQ(sa[k].anomalous, sb[k].anomalous);
    }
  }
}

}  // namespace
}  // namespace flower::obs::health
