// Integration test of the causal control-span plane over the Fig. 6
// trace (the ISSUE 7 acceptance criterion): every scaling decision in
// the decision log must carry a span id that SpanIndex::EffectOf
// resolves to at least one sensed-metric parent and at least one
// actuation child — and the chain's payloads must agree with the
// decision record they annotate.

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/units.h"
#include "core/flow_builder.h"
#include "obs/span.h"
#include "obs/telemetry.h"
#include "sim/fault_injector.h"
#include "workload/arrival.h"

namespace flower {
namespace {

// The Fig. 6 workload: diurnal load with a flash crowd at hour 2 (same
// shape as bench/fig6_elasticity_trace.cpp).
std::shared_ptr<workload::ArrivalProcess> Fig6Load() {
  auto arrival = std::make_shared<workload::CompositeArrival>();
  arrival->Add(std::make_shared<workload::DiurnalArrival>(900.0, 700.0,
                                                          4.0 * kHour));
  arrival->Add(std::make_shared<workload::FlashCrowdArrival>(
      0.0, 1800.0, 2.0 * kHour, 40.0 * kMinute, 5.0 * kMinute));
  return arrival;
}

struct RunOutput {
  obs::Telemetry telemetry;
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  std::unique_ptr<sim::FaultInjector> chaos;
  core::ManagedFlow managed;
};

void RunFig6(RunOutput* out, double hours, bool with_faults,
             bool with_replanning) {
  out->telemetry.spans().set_enabled(true);
  core::FlowBuilder builder;
  builder.WithSeed(7)
      .WithTelemetry(&out->telemetry)
      .WithWorkload(Fig6Load());
  if (with_faults) {
    out->chaos = std::make_unique<sim::FaultInjector>(&out->sim, 7);
    // Actuator outage squarely inside the flash crowd so the retry /
    // failure span paths get real traffic.
    out->chaos->FailActuator("analytics", 2.0 * kHour, 2.5 * kHour,
                             /*probability=*/1.0);
    builder.WithFaultInjector(out->chaos.get());
  }
  auto managed = builder.Build(&out->sim, &out->metrics);
  ASSERT_TRUE(managed.ok()) << managed.status();
  out->managed = std::move(*managed);
  if (with_replanning) {
    core::ReplanConfig replan;
    replan.solver.population_size = 24;
    replan.solver.generations = 8;
    replan.solver.seed = 11;
    replan.solver.on_generation =
        obs::MakeNsga2Observer(&out->telemetry, "planner", /*anchor=*/0.0);
    replan.period_sec = 1.0 * kHour;
    replan.start_delay_sec = 10.0 * kMinute;
    ASSERT_TRUE(out->managed.manager->EnableReplanning(replan).ok());
  }
  out->sim.RunUntil(hours * kHour);
}

TEST(SpanChainIntegrationTest, EveryDecisionResolvesToSenseAndActuation) {
  RunOutput run;
  ASSERT_NO_FATAL_FAILURE(
      RunFig6(&run, 4.0, /*with_faults=*/false, /*with_replanning=*/false));

  obs::SpanIndex index(run.telemetry.spans());
  std::vector<obs::ControlDecisionRecord> decisions =
      run.telemetry.decisions().Snapshot();
  ASSERT_GE(decisions.size(), 100u);

  size_t checked = 0;
  for (const obs::ControlDecisionRecord& d : decisions) {
    ASSERT_NE(d.span_id, 0u) << d.loop << " t=" << d.time;
    if (d.outcome != obs::StepOutcome::kActuated) continue;
    auto chain = index.EffectOf(d.span_id);
    ASSERT_TRUE(chain.ok()) << chain.status() << " t=" << d.time;
    ASSERT_NE(chain->decision, nullptr);
    EXPECT_EQ(chain->decision->id, d.span_id);
    EXPECT_EQ(chain->decision->label, d.loop);
    EXPECT_FALSE(chain->decision->open);
    // At least one sensed-metric parent carrying the y_k the law saw.
    ASSERT_GE(chain->senses.size(), 1u) << d.loop << " t=" << d.time;
    if (!d.stale_sensor) {
      EXPECT_NEAR(chain->senses[0]->value, d.sensed_y, 1e-9);
    }
    // At least one actuation child, and a successful one at that.
    ASSERT_GE(chain->actuations.size(), 1u) << d.loop << " t=" << d.time;
    bool actuated = false;
    for (const obs::SpanRecord* a : chain->actuations) {
      if (a->outcome == static_cast<uint8_t>(obs::StepOutcome::kActuated)) {
        actuated = true;
        EXPECT_NEAR(a->value, d.clamped_u, 1e-9);
      }
    }
    EXPECT_TRUE(actuated) << d.loop << " t=" << d.time;
    ++checked;
  }
  EXPECT_GE(checked, 100u);

  // Effects close at the next fresh sense: in a fault-free run every
  // actuated decision except each loop's last must have settled.
  size_t with_effect = 0;
  size_t actuated_total = 0;
  for (const obs::ControlDecisionRecord& d : decisions) {
    if (d.outcome != obs::StepOutcome::kActuated) continue;
    ++actuated_total;
    auto chain = index.EffectOf(d.span_id);
    ASSERT_TRUE(chain.ok());
    if (!chain->effects.empty()) {
      ++with_effect;
      // The settling interval starts at the actuation and is judged at
      // the next monitoring instant, so it spans forward in sim time.
      EXPECT_GT(chain->effects[0]->end, chain->effects[0]->start);
    }
  }
  EXPECT_GE(with_effect + 3u, actuated_total);  // One open tail per loop.
  EXPECT_GT(with_effect, 0u);
}

TEST(SpanChainIntegrationTest, ActuatorOutageShowsFailedAndRetriedSpans) {
  RunOutput run;
  ASSERT_NO_FATAL_FAILURE(
      RunFig6(&run, 3.0, /*with_faults=*/true, /*with_replanning=*/false));

  obs::SpanIndex index(run.telemetry.spans());
  size_t failed_steps = 0;
  for (const obs::ControlDecisionRecord& d :
       run.telemetry.decisions().Snapshot()) {
    if (d.loop != "analytics") continue;
    if (d.outcome != obs::StepOutcome::kActuationFailed) continue;
    ++failed_steps;
    ASSERT_NE(d.span_id, 0u);
    auto chain = index.EffectOf(d.span_id);
    ASSERT_TRUE(chain.ok()) << chain.status();
    // The failed attempt is recorded as an actuation child with the
    // failure outcome; no effect can hang off a failed attempt.
    ASSERT_GE(chain->actuations.size(), 1u);
    EXPECT_EQ(chain->actuations[0]->outcome,
              static_cast<uint8_t>(obs::StepOutcome::kActuationFailed));
    for (const obs::SpanRecord* e : chain->effects) {
      const obs::SpanRecord* parent =
          run.telemetry.spans().Find(e->parent);
      ASSERT_NE(parent, nullptr);
      EXPECT_EQ(parent->outcome,
                static_cast<uint8_t>(obs::StepOutcome::kActuated));
    }
    // Retry attempts chain via follows-from off the failed attempt.
    if (chain->actuations.size() > 1) {
      EXPECT_FALSE(index.FollowersOf(chain->actuations[0]->id).empty());
    }
  }
  EXPECT_GT(failed_steps, 0u)
      << "outage window produced no failed decisions";
}

TEST(SpanChainIntegrationTest, ReplanningLinksDecisionsToPlans) {
  RunOutput run;
  ASSERT_NO_FATAL_FAILURE(
      RunFig6(&run, 3.0, /*with_faults=*/false, /*with_replanning=*/true));

  const obs::SpanCollector& spans = run.telemetry.spans();
  obs::SpanIndex index(spans);

  // The run covers at least two replanning periods.
  std::vector<const obs::SpanRecord*> plan_spans;
  size_t generation_spans = 0;
  for (obs::SpanId id = spans.first_retained();
       id < spans.first_retained() + spans.size(); ++id) {
    const obs::SpanRecord* r = spans.Find(id);
    ASSERT_NE(r, nullptr);
    if (r->kind == obs::SpanKind::kPlan) plan_spans.push_back(r);
    if (r->kind == obs::SpanKind::kGeneration) ++generation_spans;
  }
  ASSERT_GE(plan_spans.size(), 2u);
  // NSGA-II generations are children of the plan span they ran under.
  EXPECT_GE(generation_spans, plan_spans.size());
  size_t parented = 0;
  for (const obs::SpanRecord* p : plan_spans) {
    parented += index.ChildrenOf(p->id).size();
  }
  EXPECT_EQ(parented, generation_spans);
  // Successive plans chain via follows-from.
  EXPECT_FALSE(index.FollowersOf(plan_spans[0]->id).empty());

  // After the first re-plan lands, decisions follow-from the plan whose
  // bounds they executed under.
  double first_plan_done = plan_spans[0]->end;
  size_t linked = 0;
  for (const obs::ControlDecisionRecord& d :
       run.telemetry.decisions().Snapshot()) {
    if (d.outcome != obs::StepOutcome::kActuated) continue;
    if (d.time <= first_plan_done) continue;
    auto chain = index.EffectOf(d.span_id);
    ASSERT_TRUE(chain.ok());
    ASSERT_GE(chain->plans.size(), 1u) << d.loop << " t=" << d.time;
    EXPECT_EQ(chain->plans[0]->kind, obs::SpanKind::kPlan);
    EXPECT_LE(chain->plans[0]->start, d.time);
    ++linked;
  }
  EXPECT_GT(linked, 0u);
}

}  // namespace
}  // namespace flower
