#include "obs/span.h"

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace flower::obs {
namespace {

TEST(SpanCollectorTest, DisabledIsInertAndFree) {
  SpanCollector spans(8);
  EXPECT_FALSE(spans.enabled());
  SpanId id = spans.Begin(SpanKind::kSense, "loop", 1.0, kTracePid, 1);
  EXPECT_EQ(id, 0u);
  spans.End(id, 2.0, 42.0);  // Must not crash or record.
  EXPECT_EQ(spans.Emit(SpanKind::kDecide, "loop", 1.0, 0.0, 1, 1), 0u);
  EXPECT_EQ(spans.size(), 0u);
  EXPECT_EQ(spans.total_started(), 0u);
  EXPECT_EQ(spans.Find(1), nullptr);
  EXPECT_EQ(spans.first_retained(), 0u);
}

TEST(SpanCollectorTest, BeginEndRoundTrip) {
  SpanCollector spans(8);
  spans.set_enabled(true);
  SpanId id = spans.Begin(SpanKind::kDecide, "analytics", 10.0, 2, 3,
                          /*parent=*/0, /*follows=*/0);
  ASSERT_EQ(id, 1u);
  const SpanRecord* r = spans.Find(id);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->open);
  EXPECT_EQ(r->kind, SpanKind::kDecide);
  EXPECT_EQ(r->label, "analytics");
  EXPECT_EQ(r->pid, 2);
  EXPECT_EQ(r->tid, 3);
  EXPECT_DOUBLE_EQ(r->start, 10.0);

  spans.End(id, 12.5, 4.0, /*outcome=*/7);
  EXPECT_FALSE(r->open);
  EXPECT_DOUBLE_EQ(r->end, 12.5);
  EXPECT_DOUBLE_EQ(r->value, 4.0);
  EXPECT_EQ(r->outcome, 7);

  // Double-End is a no-op: the first close wins.
  spans.End(id, 99.0, -1.0, 9);
  EXPECT_DOUBLE_EQ(r->end, 12.5);
  EXPECT_EQ(r->outcome, 7);
}

TEST(SpanCollectorTest, SequentialIdsAndVirtualTimeDurations) {
  SpanCollector spans(16);
  spans.set_enabled(true);
  SpanId a = spans.Emit(SpanKind::kSense, "s", 100.0, 0.0, 1, 1);
  SpanId b = spans.Emit(SpanKind::kEffect, "e", 100.0, 120.0, 1, 1, a);
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  const SpanRecord* r = spans.Find(b);
  ASSERT_NE(r, nullptr);
  // Durations are sim seconds, not wall time.
  EXPECT_DOUBLE_EQ(r->end - r->start, 120.0);
  EXPECT_EQ(r->parent, a);
}

TEST(SpanCollectorTest, OldestEvictedFirst) {
  SpanCollector spans(4);
  spans.set_enabled(true);
  for (int i = 0; i < 6; ++i) {
    spans.Emit(SpanKind::kSense, "s", static_cast<double>(i), 0.0, 1, 1);
  }
  EXPECT_EQ(spans.total_started(), 6u);
  EXPECT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.evicted(), 2u);
  EXPECT_EQ(spans.first_retained(), 3u);
  EXPECT_EQ(spans.Find(1), nullptr);
  EXPECT_EQ(spans.Find(2), nullptr);
  ASSERT_NE(spans.Find(3), nullptr);
  ASSERT_NE(spans.Find(6), nullptr);
  // Ending an evicted span must not corrupt the slot's new occupant.
  spans.End(1, 50.0, 1.0);
  EXPECT_DOUBLE_EQ(spans.Find(5)->end, 4.0);
}

TEST(SpanCollectorTest, DisableKeepsRecordsReadable) {
  SpanCollector spans(8);
  spans.set_enabled(true);
  SpanId id = spans.Emit(SpanKind::kPlan, "p", 0.0, 1.0, 1, 1);
  spans.set_enabled(false);
  EXPECT_NE(spans.Find(id), nullptr);
  EXPECT_EQ(spans.Begin(SpanKind::kSense, "s", 2.0, 1, 1), 0u);
  EXPECT_EQ(spans.total_started(), 1u);
}

// Builds the canonical one-decision chain:
//   plan(1) <- follows - decide(3) - parent -> sense(2)
//   decide(3) <- parent - actuate(4) (failed), actuate(5) (ok, follows 4)
//   actuate(5) <- parent - effect(6)
struct ChainFixture {
  SpanCollector spans{64};
  SpanId plan, sense, decide, act_fail, act_ok, effect;

  ChainFixture() {
    spans.set_enabled(true);
    plan = spans.Emit(SpanKind::kPlan, "replan", 0.0, 1.0, 1, 100);
    sense = spans.Emit(SpanKind::kSense, "analytics", 60.0, 0.0, 1, 1, 0, 0,
                       82.0);
    decide = spans.Begin(SpanKind::kDecide, "analytics", 60.0, 1, 1, sense,
                         plan);
    act_fail = spans.Emit(SpanKind::kActuate, "analytics", 60.0, 0.0, 1, 1,
                          decide, 0, 5.0, 1);
    act_ok = spans.Emit(SpanKind::kActuate, "analytics", 65.0, 0.0, 1, 1,
                        decide, act_fail, 5.0, 0);
    spans.End(decide, 60.0, 5.0);
    effect = spans.Emit(SpanKind::kEffect, "analytics", 65.0, 55.0, 1, 1,
                        act_ok, 0, 71.0);
  }
};

TEST(SpanIndexTest, ChildrenAndFollowers) {
  ChainFixture f;
  SpanIndex index(f.spans);
  auto kids = index.ChildrenOf(f.decide);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(kids[0]->id, f.act_fail);
  EXPECT_EQ(kids[1]->id, f.act_ok);
  auto followers = index.FollowersOf(f.act_fail);
  ASSERT_EQ(followers.size(), 1u);
  EXPECT_EQ(followers[0]->id, f.act_ok);
  EXPECT_TRUE(index.ChildrenOf(f.effect).empty());
}

TEST(SpanIndexTest, EffectOfResolvesFullChain) {
  ChainFixture f;
  SpanIndex index(f.spans);
  auto chain = index.EffectOf(f.decide);
  ASSERT_TRUE(chain.ok()) << chain.status();
  ASSERT_NE(chain->decision, nullptr);
  EXPECT_EQ(chain->decision->id, f.decide);
  ASSERT_EQ(chain->senses.size(), 1u);
  EXPECT_EQ(chain->senses[0]->id, f.sense);
  ASSERT_EQ(chain->plans.size(), 1u);
  EXPECT_EQ(chain->plans[0]->id, f.plan);
  ASSERT_EQ(chain->actuations.size(), 2u);
  ASSERT_EQ(chain->effects.size(), 1u);
  EXPECT_EQ(chain->effects[0]->id, f.effect);
  EXPECT_DOUBLE_EQ(chain->effects[0]->value, 71.0);
}

TEST(SpanIndexTest, EffectOfRejectsNonDecisionAndMissing) {
  ChainFixture f;
  SpanIndex index(f.spans);
  EXPECT_EQ(index.EffectOf(f.sense).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(index.EffectOf(9999).status().code(), StatusCode::kNotFound);
}

TEST(SpanIndexTest, SurvivesEvictedEdges) {
  // A ring so small the plan and sense are evicted by later spans: the
  // index must simply drop dangling edges, not crash or fabricate.
  SpanCollector spans(3);
  spans.set_enabled(true);
  SpanId sense = spans.Emit(SpanKind::kSense, "s", 0.0, 0.0, 1, 1);
  SpanId decide = spans.Begin(SpanKind::kDecide, "s", 0.0, 1, 1, sense);
  spans.End(decide, 0.0);
  spans.Emit(SpanKind::kActuate, "s", 0.0, 0.0, 1, 1, decide);
  spans.Emit(SpanKind::kActuate, "s", 1.0, 0.0, 1, 1, decide);  // Evicts 1.
  SpanIndex index(spans);
  auto chain = index.EffectOf(decide);
  ASSERT_TRUE(chain.ok()) << chain.status();
  EXPECT_TRUE(chain->senses.empty());  // Parent evicted: chain truncates.
  EXPECT_EQ(chain->actuations.size(), 2u);
}

}  // namespace
}  // namespace flower::obs
