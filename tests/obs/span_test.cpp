#include "obs/span.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace flower::obs {
namespace {

TEST(SpanCollectorTest, DisabledIsInertAndFree) {
  SpanCollector spans(8);
  EXPECT_FALSE(spans.enabled());
  SpanId id = spans.Begin(SpanKind::kSense, "loop", 1.0, kTracePid, 1);
  EXPECT_EQ(id, 0u);
  spans.End(id, 2.0, 42.0);  // Must not crash or record.
  EXPECT_EQ(spans.Emit(SpanKind::kDecide, "loop", 1.0, 0.0, 1, 1), 0u);
  EXPECT_EQ(spans.size(), 0u);
  EXPECT_EQ(spans.total_started(), 0u);
  EXPECT_EQ(spans.Find(1), nullptr);
  EXPECT_EQ(spans.first_retained(), 0u);
}

TEST(SpanCollectorTest, BeginEndRoundTrip) {
  SpanCollector spans(8);
  spans.set_enabled(true);
  SpanId id = spans.Begin(SpanKind::kDecide, "analytics", 10.0, 2, 3,
                          /*parent=*/0, /*follows=*/0);
  ASSERT_EQ(id, 1u);
  const SpanRecord* r = spans.Find(id);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->open);
  EXPECT_EQ(r->kind, SpanKind::kDecide);
  EXPECT_EQ(r->label, "analytics");
  EXPECT_EQ(r->pid, 2);
  EXPECT_EQ(r->tid, 3);
  EXPECT_DOUBLE_EQ(r->start, 10.0);

  spans.End(id, 12.5, 4.0, /*outcome=*/7);
  EXPECT_FALSE(r->open);
  EXPECT_DOUBLE_EQ(r->end, 12.5);
  EXPECT_DOUBLE_EQ(r->value, 4.0);
  EXPECT_EQ(r->outcome, 7);

  // Double-End is a no-op: the first close wins.
  spans.End(id, 99.0, -1.0, 9);
  EXPECT_DOUBLE_EQ(r->end, 12.5);
  EXPECT_EQ(r->outcome, 7);
}

TEST(SpanCollectorTest, SequentialIdsAndVirtualTimeDurations) {
  SpanCollector spans(16);
  spans.set_enabled(true);
  SpanId a = spans.Emit(SpanKind::kSense, "s", 100.0, 0.0, 1, 1);
  SpanId b = spans.Emit(SpanKind::kEffect, "e", 100.0, 120.0, 1, 1, a);
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  const SpanRecord* r = spans.Find(b);
  ASSERT_NE(r, nullptr);
  // Durations are sim seconds, not wall time.
  EXPECT_DOUBLE_EQ(r->end - r->start, 120.0);
  EXPECT_EQ(r->parent, a);
}

TEST(SpanCollectorTest, OldestEvictedFirst) {
  SpanCollector spans(4);
  spans.set_enabled(true);
  for (int i = 0; i < 6; ++i) {
    spans.Emit(SpanKind::kSense, "s", static_cast<double>(i), 0.0, 1, 1);
  }
  EXPECT_EQ(spans.total_started(), 6u);
  EXPECT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.evicted(), 2u);
  EXPECT_EQ(spans.first_retained(), 3u);
  EXPECT_EQ(spans.Find(1), nullptr);
  EXPECT_EQ(spans.Find(2), nullptr);
  ASSERT_NE(spans.Find(3), nullptr);
  ASSERT_NE(spans.Find(6), nullptr);
  // Ending an evicted span must not corrupt the slot's new occupant.
  spans.End(1, 50.0, 1.0);
  EXPECT_DOUBLE_EQ(spans.Find(5)->end, 4.0);
}

TEST(SpanCollectorTest, DisableKeepsRecordsReadable) {
  SpanCollector spans(8);
  spans.set_enabled(true);
  SpanId id = spans.Emit(SpanKind::kPlan, "p", 0.0, 1.0, 1, 1);
  spans.set_enabled(false);
  EXPECT_NE(spans.Find(id), nullptr);
  EXPECT_EQ(spans.Begin(SpanKind::kSense, "s", 2.0, 1, 1), 0u);
  EXPECT_EQ(spans.total_started(), 1u);
}

// Builds the canonical one-decision chain:
//   plan(1) <- follows - decide(3) - parent -> sense(2)
//   decide(3) <- parent - actuate(4) (failed), actuate(5) (ok, follows 4)
//   actuate(5) <- parent - effect(6)
struct ChainFixture {
  SpanCollector spans{64};
  SpanId plan, sense, decide, act_fail, act_ok, effect;

  ChainFixture() {
    spans.set_enabled(true);
    plan = spans.Emit(SpanKind::kPlan, "replan", 0.0, 1.0, 1, 100);
    sense = spans.Emit(SpanKind::kSense, "analytics", 60.0, 0.0, 1, 1, 0, 0,
                       82.0);
    decide = spans.Begin(SpanKind::kDecide, "analytics", 60.0, 1, 1, sense,
                         plan);
    act_fail = spans.Emit(SpanKind::kActuate, "analytics", 60.0, 0.0, 1, 1,
                          decide, 0, 5.0, 1);
    act_ok = spans.Emit(SpanKind::kActuate, "analytics", 65.0, 0.0, 1, 1,
                        decide, act_fail, 5.0, 0);
    spans.End(decide, 60.0, 5.0);
    effect = spans.Emit(SpanKind::kEffect, "analytics", 65.0, 55.0, 1, 1,
                        act_ok, 0, 71.0);
  }
};

TEST(SpanIndexTest, ChildrenAndFollowers) {
  ChainFixture f;
  SpanIndex index(f.spans);
  auto kids = index.ChildrenOf(f.decide);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(kids[0]->id, f.act_fail);
  EXPECT_EQ(kids[1]->id, f.act_ok);
  auto followers = index.FollowersOf(f.act_fail);
  ASSERT_EQ(followers.size(), 1u);
  EXPECT_EQ(followers[0]->id, f.act_ok);
  EXPECT_TRUE(index.ChildrenOf(f.effect).empty());
}

TEST(SpanIndexTest, EffectOfResolvesFullChain) {
  ChainFixture f;
  SpanIndex index(f.spans);
  auto chain = index.EffectOf(f.decide);
  ASSERT_TRUE(chain.ok()) << chain.status();
  ASSERT_NE(chain->decision, nullptr);
  EXPECT_EQ(chain->decision->id, f.decide);
  ASSERT_EQ(chain->senses.size(), 1u);
  EXPECT_EQ(chain->senses[0]->id, f.sense);
  ASSERT_EQ(chain->plans.size(), 1u);
  EXPECT_EQ(chain->plans[0]->id, f.plan);
  ASSERT_EQ(chain->actuations.size(), 2u);
  ASSERT_EQ(chain->effects.size(), 1u);
  EXPECT_EQ(chain->effects[0]->id, f.effect);
  EXPECT_DOUBLE_EQ(chain->effects[0]->value, 71.0);
}

TEST(SpanIndexTest, EffectOfRejectsNonDecisionAndMissing) {
  ChainFixture f;
  SpanIndex index(f.spans);
  EXPECT_EQ(index.EffectOf(f.sense).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(index.EffectOf(9999).status().code(), StatusCode::kNotFound);
}

TEST(SpanIndexTest, SurvivesEvictedEdges) {
  // A ring so small the plan and sense are evicted by later spans: the
  // index must simply drop dangling edges, not crash or fabricate.
  SpanCollector spans(3);
  spans.set_enabled(true);
  SpanId sense = spans.Emit(SpanKind::kSense, "s", 0.0, 0.0, 1, 1);
  SpanId decide = spans.Begin(SpanKind::kDecide, "s", 0.0, 1, 1, sense);
  spans.End(decide, 0.0);
  spans.Emit(SpanKind::kActuate, "s", 0.0, 0.0, 1, 1, decide);
  spans.Emit(SpanKind::kActuate, "s", 1.0, 0.0, 1, 1, decide);  // Evicts 1.
  SpanIndex index(spans);
  auto chain = index.EffectOf(decide);
  ASSERT_TRUE(chain.ok()) << chain.status();
  EXPECT_TRUE(chain->senses.empty());  // Parent evicted: chain truncates.
  EXPECT_EQ(chain->actuations.size(), 2u);
}

TEST(SpanCollectorTest, IdOffsetMovesTheNamespace) {
  SpanCollector spans(8);
  ASSERT_TRUE(spans.set_id_offset(3 * SpanCollector::kIdStride).ok());
  spans.set_enabled(true);
  SpanId first = spans.Emit(SpanKind::kSense, "s", 0.0, 0.0, 1, 1);
  EXPECT_EQ(first, 3 * SpanCollector::kIdStride + 1);
  SpanId second = spans.Emit(SpanKind::kDecide, "s", 1.0, 0.0, 1, 1, first);
  EXPECT_EQ(second, first + 1);
  EXPECT_EQ(spans.total_started(), 2u);
  EXPECT_EQ(spans.first_retained(), first);
  EXPECT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans.evicted(), 0u);
  // Lookups resolve inside the offset namespace and reject ids below it.
  ASSERT_NE(spans.Find(first), nullptr);
  EXPECT_EQ(spans.Find(first)->id, first);
  EXPECT_EQ(spans.Find(1), nullptr);
  EXPECT_EQ(spans.Find(3 * SpanCollector::kIdStride), nullptr);
  // The post-run index works unchanged on an offset collector.
  SpanIndex index(spans);
  ASSERT_EQ(index.ChildrenOf(first).size(), 1u);
  EXPECT_EQ(index.ChildrenOf(first)[0]->id, second);
}

TEST(SpanCollectorTest, IdOffsetRejectedOnceRecordingStarted) {
  SpanCollector spans(8);
  spans.set_enabled(true);
  spans.Emit(SpanKind::kSense, "s", 0.0, 0.0, 1, 1);
  EXPECT_EQ(spans.set_id_offset(SpanCollector::kIdStride).code(),
            StatusCode::kFailedPrecondition);
  // The namespace is unchanged after the rejected call.
  EXPECT_EQ(spans.id_offset(), 0u);
  EXPECT_EQ(spans.total_started(), 1u);
}

TEST(SpanCollectorTest, EvictionStillOldestFirstWithOffset) {
  SpanCollector spans(3);
  ASSERT_TRUE(spans.set_id_offset(SpanCollector::kIdStride).ok());
  spans.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    spans.Emit(SpanKind::kSense, "s", i, 0.0, 1, 1);
  }
  EXPECT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans.evicted(), 2u);
  EXPECT_EQ(spans.first_retained(), SpanCollector::kIdStride + 3);
  EXPECT_EQ(spans.Find(SpanCollector::kIdStride + 1), nullptr);
  EXPECT_EQ(spans.Find(SpanCollector::kIdStride + 2), nullptr);
  ASSERT_NE(spans.Find(SpanCollector::kIdStride + 5), nullptr);
}

TEST(SpanCollectorTest, ConcurrentBeginsAllocateUniqueIds) {
  // Regression for the pre-fleet plain uint64_t next_id_: two threads
  // recording concurrently could mint the same id (and tear each
  // other's ring slots). With atomic allocation every id is unique.
  // Run under TSan (tools/run_tsan.sh includes the obs label) this also
  // proves the allocation path is race-free.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  SpanCollector spans(kThreads * kPerThread);
  spans.set_enabled(true);
  std::vector<std::vector<SpanId>> ids(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&spans, &ids, t] {
      ids[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        ids[t].push_back(
            spans.Emit(SpanKind::kSense, "concurrent", i, 0.0, 1, t));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  std::set<SpanId> unique;
  for (const std::vector<SpanId>& per_thread : ids) {
    for (SpanId id : per_thread) {
      EXPECT_NE(id, 0u);
      EXPECT_TRUE(unique.insert(id).second) << "duplicate id " << id;
    }
  }
  EXPECT_EQ(unique.size(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(spans.total_started(), unique.size());
  // Nothing was evicted (ring sized to fit), so every record is intact
  // and stamped with its own id.
  for (SpanId id : unique) {
    const SpanRecord* r = spans.Find(id);
    ASSERT_NE(r, nullptr) << "id " << id;
    EXPECT_EQ(r->id, id);
    EXPECT_EQ(r->label, "concurrent");
  }
}

}  // namespace
}  // namespace flower::obs
