#include "obs/event_log.h"

#include <gtest/gtest.h>

namespace flower::obs {
namespace {

ControlDecisionRecord Rec(SimTime t, const char* loop) {
  ControlDecisionRecord r;
  r.time = t;
  r.loop = loop;
  return r;
}

TEST(DecisionLogTest, AppendBelowCapacity) {
  DecisionLog log(4);
  log.Append(Rec(1.0, "a"));
  log.Append(Rec(2.0, "b"));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.total_appended(), 2u);
  auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_DOUBLE_EQ(snap[0].time, 1.0);
  EXPECT_DOUBLE_EQ(snap[1].time, 2.0);
}

TEST(DecisionLogTest, OverwritesOldestWhenFull) {
  DecisionLog log(3);
  for (int i = 0; i < 5; ++i) {
    log.Append(Rec(static_cast<double>(i), "loop"));
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.total_appended(), 5u);
  auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  // Records 0 and 1 were evicted; 2, 3, 4 remain oldest-first.
  EXPECT_DOUBLE_EQ(snap[0].time, 2.0);
  EXPECT_DOUBLE_EQ(snap[1].time, 3.0);
  EXPECT_DOUBLE_EQ(snap[2].time, 4.0);
}

TEST(DecisionLogTest, SnapshotOrderStableAcrossWraps) {
  DecisionLog log(4);
  for (int i = 0; i < 11; ++i) {
    log.Append(Rec(static_cast<double>(i), "loop"));
  }
  auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].time, snap[i].time);
  }
  EXPECT_DOUBLE_EQ(snap.back().time, 10.0);
}

TEST(DecisionLogTest, ExactCapacityBoundary) {
  // Filling to exactly capacity is the last append before wraparound
  // kicks in: nothing evicted yet, order still insertion order.
  DecisionLog log(4);
  for (int i = 0; i < 4; ++i) {
    log.Append(Rec(static_cast<double>(i), "loop"));
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.total_appended(), 4u);
  auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_DOUBLE_EQ(snap.front().time, 0.0);
  EXPECT_DOUBLE_EQ(snap.back().time, 3.0);

  // One more append evicts exactly the oldest record.
  log.Append(Rec(4.0, "loop"));
  snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_DOUBLE_EQ(snap.front().time, 1.0);
  EXPECT_DOUBLE_EQ(snap.back().time, 4.0);
  EXPECT_EQ(log.total_appended(), 5u);
}

TEST(DecisionLogTest, CapacityOneAlwaysKeepsNewest) {
  DecisionLog log(1);
  for (int i = 0; i < 7; ++i) {
    log.Append(Rec(static_cast<double>(i), "loop"));
    auto snap = log.Snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_DOUBLE_EQ(snap[0].time, static_cast<double>(i));
  }
  EXPECT_EQ(log.total_appended(), 7u);
}

TEST(DecisionLogTest, ManyFullWrapsStayOldestFirst) {
  // Drive the ring through dozens of complete revolutions, checking the
  // snapshot contract (oldest-first, strictly increasing, newest == last
  // appended) at every position of the write cursor.
  DecisionLog log(5);
  for (int i = 0; i < 57; ++i) {
    log.Append(Rec(static_cast<double>(i), "loop"));
    if (i < 10) continue;
    auto snap = log.Snapshot();
    ASSERT_EQ(snap.size(), 5u);
    for (size_t j = 1; j < snap.size(); ++j) {
      EXPECT_DOUBLE_EQ(snap[j].time, snap[j - 1].time + 1.0);
    }
    EXPECT_DOUBLE_EQ(snap.back().time, static_cast<double>(i));
  }
  EXPECT_EQ(log.total_appended(), 57u);
  EXPECT_EQ(log.size(), 5u);
}

TEST(DecisionLogTest, OutcomeStrings) {
  EXPECT_STREQ(StepOutcomeToString(StepOutcome::kActuated), "actuated");
  EXPECT_STREQ(StepOutcomeToString(StepOutcome::kSensorMiss), "sensor-miss");
  EXPECT_STREQ(StepOutcomeToString(StepOutcome::kControllerError),
               "controller-error");
  EXPECT_STREQ(StepOutcomeToString(StepOutcome::kBreakerOpen),
               "breaker-open");
  EXPECT_STREQ(StepOutcomeToString(StepOutcome::kActuationFailed),
               "actuation-failed");
}

}  // namespace
}  // namespace flower::obs
