#include "opt/grid_search.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace flower::opt {
namespace {

class TinyProblem final : public Problem {
 public:
  // Maximize (a, b) over a in [0, 3], b in [0, 3], s.t. a + 2b <= 5.
  TinyProblem() {
    vars_.push_back({"a", 0.0, 3.0, true});
    vars_.push_back({"b", 0.0, 3.0, true});
  }
  const std::vector<VariableSpec>& variables() const override { return vars_; }
  size_t num_objectives() const override { return 2; }
  size_t num_constraints() const override { return 1; }
  void Evaluate(const std::vector<double>& x, std::vector<double>* obj,
                std::vector<double>* viol) const override {
    obj->assign({x[0], x[1]});
    viol->assign({std::max(0.0, x[0] + 2.0 * x[1] - 5.0)});
  }

 private:
  std::vector<VariableSpec> vars_;
};

TEST(GridSearchTest, FindsExactFront) {
  auto front = ExhaustiveParetoFront(TinyProblem());
  ASSERT_TRUE(front.ok());
  // Feasible non-dominated: (3,1) and (1,2)... enumerate:
  // b=0 → a up to 3: (3,0) dominated by (3,1)? (3,1): 3+2=5 ok.
  // b=1 → a<=3: (3,1). b=2 → a<=1: (1,2). b=3 → a+6<=5 infeasible.
  ASSERT_EQ(front->size(), 2u);
  EXPECT_EQ((*front)[0].objectives, (std::vector<double>{1, 2}));
  EXPECT_EQ((*front)[1].objectives, (std::vector<double>{3, 1}));
}

TEST(GridSearchTest, SingleVariableMaximum) {
  class OneVar final : public Problem {
   public:
    OneVar() { vars_.push_back({"x", 1.0, 10.0, true}); }
    const std::vector<VariableSpec>& variables() const override {
      return vars_;
    }
    size_t num_objectives() const override { return 1; }
    size_t num_constraints() const override { return 0; }
    void Evaluate(const std::vector<double>& x, std::vector<double>* obj,
                  std::vector<double>* viol) const override {
      obj->assign({x[0]});
      viol->clear();
    }

   private:
    std::vector<VariableSpec> vars_;
  };
  auto front = ExhaustiveParetoFront(OneVar());
  ASSERT_TRUE(front.ok());
  ASSERT_EQ(front->size(), 1u);
  EXPECT_EQ((*front)[0].x[0], 10.0);
}

TEST(GridSearchTest, RejectsContinuousVariables) {
  class ContinuousVar final : public Problem {
   public:
    ContinuousVar() { vars_.push_back({"x", 0.0, 1.0, false}); }
    const std::vector<VariableSpec>& variables() const override {
      return vars_;
    }
    size_t num_objectives() const override { return 1; }
    size_t num_constraints() const override { return 0; }
    void Evaluate(const std::vector<double>& x, std::vector<double>* obj,
                  std::vector<double>* viol) const override {
      obj->assign({x[0]});
      viol->clear();
    }

   private:
    std::vector<VariableSpec> vars_;
  };
  EXPECT_EQ(ExhaustiveParetoFront(ContinuousVar()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GridSearchTest, RejectsOversizedGrid) {
  class BigGrid final : public Problem {
   public:
    BigGrid() {
      vars_.push_back({"a", 0.0, 9999.0, true});
      vars_.push_back({"b", 0.0, 9999.0, true});
    }
    const std::vector<VariableSpec>& variables() const override {
      return vars_;
    }
    size_t num_objectives() const override { return 2; }
    size_t num_constraints() const override { return 0; }
    void Evaluate(const std::vector<double>& x, std::vector<double>* obj,
                  std::vector<double>* viol) const override {
      obj->assign({x[0], x[1]});
      viol->clear();
    }

   private:
    std::vector<VariableSpec> vars_;
  };
  EXPECT_EQ(ExhaustiveParetoFront(BigGrid(), 1000).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(GridSearchTest, AllInfeasibleYieldsEmptyFront) {
  class NoFeasible final : public Problem {
   public:
    NoFeasible() { vars_.push_back({"x", 0.0, 5.0, true}); }
    const std::vector<VariableSpec>& variables() const override {
      return vars_;
    }
    size_t num_objectives() const override { return 1; }
    size_t num_constraints() const override { return 1; }
    void Evaluate(const std::vector<double>& x, std::vector<double>* obj,
                  std::vector<double>* viol) const override {
      obj->assign({x[0]});
      viol->assign({1.0});
    }

   private:
    std::vector<VariableSpec> vars_;
  };
  auto front = ExhaustiveParetoFront(NoFeasible());
  ASSERT_TRUE(front.ok());
  EXPECT_TRUE(front->empty());
}

}  // namespace
}  // namespace flower::opt
