#include "opt/pareto.h"

#include <gtest/gtest.h>

namespace flower::opt {
namespace {

Solution Sol(std::vector<double> obj, double violation = 0.0) {
  Solution s;
  s.objectives = std::move(obj);
  s.total_violation = violation;
  return s;
}

TEST(DominatesTest, StrictDominance) {
  EXPECT_TRUE(Dominates({2, 2}, {1, 1}));
  EXPECT_TRUE(Dominates({2, 1}, {1, 1}));
  EXPECT_FALSE(Dominates({1, 1}, {1, 1}));  // Equal: no strict better.
  EXPECT_FALSE(Dominates({2, 0}, {1, 1}));  // Trade-off.
  EXPECT_FALSE(Dominates({0, 2}, {1, 1}));
}

TEST(DominatesTest, ThreeObjectives) {
  EXPECT_TRUE(Dominates({5, 5, 5}, {5, 5, 4}));
  EXPECT_FALSE(Dominates({5, 5, 3}, {5, 5, 4}));
}

TEST(ConstrainedDominatesTest, FeasibleBeatsInfeasible) {
  EXPECT_TRUE(ConstrainedDominates(Sol({0, 0}), Sol({100, 100}, 1.0)));
  EXPECT_FALSE(ConstrainedDominates(Sol({100, 100}, 1.0), Sol({0, 0})));
}

TEST(ConstrainedDominatesTest, LessViolationWinsAmongInfeasible) {
  EXPECT_TRUE(ConstrainedDominates(Sol({0, 0}, 0.5), Sol({9, 9}, 2.0)));
  EXPECT_FALSE(ConstrainedDominates(Sol({9, 9}, 2.0), Sol({0, 0}, 0.5)));
  EXPECT_FALSE(ConstrainedDominates(Sol({1, 1}, 1.0), Sol({2, 2}, 1.0)));
}

TEST(ConstrainedDominatesTest, ParetoAmongFeasible) {
  EXPECT_TRUE(ConstrainedDominates(Sol({3, 3}), Sol({2, 3})));
  EXPECT_FALSE(ConstrainedDominates(Sol({3, 1}), Sol({1, 3})));
}

TEST(ParetoFrontTest, ExtractsNonDominated) {
  std::vector<Solution> pop = {Sol({1, 5}), Sol({3, 3}), Sol({5, 1}),
                               Sol({2, 2}), Sol({1, 1})};
  auto front = ParetoFront(pop);
  ASSERT_EQ(front.size(), 3u);
  // Sorted lexicographically by objectives.
  EXPECT_EQ(front[0].objectives, (std::vector<double>{1, 5}));
  EXPECT_EQ(front[1].objectives, (std::vector<double>{3, 3}));
  EXPECT_EQ(front[2].objectives, (std::vector<double>{5, 1}));
}

TEST(ParetoFrontTest, SkipsInfeasibleAndDeduplicates) {
  std::vector<Solution> pop = {Sol({9, 9}, 1.0), Sol({1, 2}), Sol({1, 2}),
                               Sol({2, 1})};
  auto front = ParetoFront(pop);
  EXPECT_EQ(front.size(), 2u);
}

TEST(ParetoFrontTest, EmptyInputAndAllInfeasible) {
  EXPECT_TRUE(ParetoFront({}).empty());
  EXPECT_TRUE(ParetoFront({Sol({1, 1}, 2.0)}).empty());
}

TEST(ParetoFrontTest, SinglePointIsItsOwnFront) {
  auto front = ParetoFront({Sol({4, 4})});
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0].objectives, (std::vector<double>{4, 4}));
}

TEST(Hypervolume2DTest, RectangleUnion) {
  // Maximization front {(1,3),(2,2),(3,1)} w.r.t. reference (0,0):
  // sweep right-to-left: (3-0)*(1-0) + (2-0)*(2-1) + (1-0)*(3-2) = 6.
  std::vector<std::vector<double>> pts = {{1, 3}, {2, 2}, {3, 1}};
  EXPECT_DOUBLE_EQ(Hypervolume2D(pts, 0.0, 0.0), 6.0);
}

TEST(Hypervolume2DTest, DominatedPointAddsNothing) {
  std::vector<std::vector<double>> front = {{1, 3}, {3, 1}};
  double base = Hypervolume2D(front, 0.0, 0.0);
  front.push_back({1, 1});  // Dominated by both.
  EXPECT_DOUBLE_EQ(Hypervolume2D(front, 0.0, 0.0), base);
}

TEST(Hypervolume2DTest, PointsOutsideReferenceIgnored) {
  // A point at/below the reference contributes no area.
  std::vector<std::vector<double>> pts = {{3, 3}, {-1, 5}, {5, 0}};
  EXPECT_DOUBLE_EQ(Hypervolume2D(pts, 0.0, 0.0), 9.0);
}

TEST(Hypervolume2DTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(Hypervolume2D({}, 0.0, 0.0), 0.0);
}

}  // namespace
}  // namespace flower::opt
