#include "opt/nsga2.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "opt/grid_search.h"
#include "opt/pareto.h"

namespace flower::opt {
namespace {

/// Schaffer's SCH problem (maximization form): maximize
/// f1 = -x^2, f2 = -(x-2)^2 over x in [-10, 10]. The Pareto-optimal
/// set is x in [0, 2].
class SchafferProblem final : public Problem {
 public:
  SchafferProblem() {
    vars_.push_back({"x", -10.0, 10.0, false});
  }
  const std::vector<VariableSpec>& variables() const override { return vars_; }
  size_t num_objectives() const override { return 2; }
  size_t num_constraints() const override { return 0; }
  void Evaluate(const std::vector<double>& x, std::vector<double>* obj,
                std::vector<double>* viol) const override {
    obj->assign({-x[0] * x[0], -(x[0] - 2.0) * (x[0] - 2.0)});
    viol->clear();
  }

 private:
  std::vector<VariableSpec> vars_;
};

/// A constrained integer problem small enough for the exhaustive
/// oracle: maximize (a, b), a,b in [1, 20], subject to a + b <= 15.
class BudgetedPair final : public Problem {
 public:
  BudgetedPair() {
    vars_.push_back({"a", 1.0, 20.0, true});
    vars_.push_back({"b", 1.0, 20.0, true});
  }
  const std::vector<VariableSpec>& variables() const override { return vars_; }
  size_t num_objectives() const override { return 2; }
  size_t num_constraints() const override { return 1; }
  void Evaluate(const std::vector<double>& x, std::vector<double>* obj,
                std::vector<double>* viol) const override {
    obj->assign({x[0], x[1]});
    viol->assign({std::max(0.0, x[0] + x[1] - 15.0)});
  }

 private:
  std::vector<VariableSpec> vars_;
};

/// No feasible point exists: a >= 1 but constraint requires a <= 0.
class InfeasibleProblem final : public Problem {
 public:
  InfeasibleProblem() { vars_.push_back({"a", 1.0, 5.0, true}); }
  const std::vector<VariableSpec>& variables() const override { return vars_; }
  size_t num_objectives() const override { return 1; }
  size_t num_constraints() const override { return 1; }
  void Evaluate(const std::vector<double>& x, std::vector<double>* obj,
                std::vector<double>* viol) const override {
    obj->assign({x[0]});
    viol->assign({x[0]});  // Positive everywhere.
  }

 private:
  std::vector<VariableSpec> vars_;
};

TEST(Nsga2Test, ConfigValidation) {
  SchafferProblem p;
  {
    Nsga2Config cfg;
    cfg.population_size = 3;  // Too small / odd.
    EXPECT_FALSE(Nsga2(cfg).Solve(p).ok());
  }
  {
    Nsga2Config cfg;
    cfg.population_size = 5;  // Odd.
    EXPECT_FALSE(Nsga2(cfg).Solve(p).ok());
  }
  {
    Nsga2Config cfg;
    cfg.generations = 0;
    EXPECT_FALSE(Nsga2(cfg).Solve(p).ok());
  }
}

TEST(Nsga2Test, SolvesSchafferFront) {
  Nsga2Config cfg;
  cfg.population_size = 60;
  cfg.generations = 80;
  cfg.seed = 7;
  auto res = Nsga2(cfg).Solve(SchafferProblem());
  ASSERT_TRUE(res.ok());
  ASSERT_GE(res->pareto_front.size(), 10u);
  for (const Solution& s : res->pareto_front) {
    // Pareto set is x in [0, 2]; allow mild numerical slack.
    EXPECT_GE(s.x[0], -0.1);
    EXPECT_LE(s.x[0], 2.1);
  }
  // The front should cover both extremes reasonably well.
  double best_f1 = -std::numeric_limits<double>::infinity();
  double best_f2 = -std::numeric_limits<double>::infinity();
  for (const Solution& s : res->pareto_front) {
    best_f1 = std::max(best_f1, s.objectives[0]);
    best_f2 = std::max(best_f2, s.objectives[1]);
  }
  EXPECT_GT(best_f1, -0.05);  // Near x = 0.
  EXPECT_GT(best_f2, -0.05);  // Near x = 2.
}

TEST(Nsga2Test, DeterministicForFixedSeed) {
  Nsga2Config cfg;
  cfg.population_size = 40;
  cfg.generations = 30;
  cfg.seed = 99;
  auto r1 = Nsga2(cfg).Solve(SchafferProblem());
  auto r2 = Nsga2(cfg).Solve(SchafferProblem());
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r1->pareto_front.size(), r2->pareto_front.size());
  for (size_t i = 0; i < r1->pareto_front.size(); ++i) {
    EXPECT_EQ(r1->pareto_front[i].x, r2->pareto_front[i].x);
  }
}

TEST(Nsga2Test, DifferentSeedsBothConverge) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Nsga2Config cfg;
    cfg.population_size = 60;
    cfg.generations = 60;
    cfg.seed = seed;
    auto res = Nsga2(cfg).Solve(SchafferProblem());
    ASSERT_TRUE(res.ok());
    for (const Solution& s : res->pareto_front) {
      EXPECT_GE(s.x[0], -0.2);
      EXPECT_LE(s.x[0], 2.2);
    }
  }
}

TEST(Nsga2Test, IntegerProblemMatchesExhaustiveOracle) {
  BudgetedPair p;
  auto oracle = ExhaustiveParetoFront(p);
  ASSERT_TRUE(oracle.ok());
  // Oracle front: all (a, b) with a + b == 15 → 14 points... but only
  // non-dominated ones: every (a, 15-a) is mutually non-dominated.
  ASSERT_EQ(oracle->size(), 14u);

  Nsga2Config cfg;
  cfg.population_size = 80;
  cfg.generations = 100;
  cfg.seed = 5;
  auto res = Nsga2(cfg).Solve(p);
  ASSERT_TRUE(res.ok());
  // Every NSGA-II front point must be on the true front.
  std::set<std::pair<double, double>> oracle_set;
  for (const Solution& s : *oracle) {
    oracle_set.insert({s.objectives[0], s.objectives[1]});
  }
  for (const Solution& s : res->pareto_front) {
    EXPECT_TRUE(oracle_set.count({s.objectives[0], s.objectives[1]}))
        << "(" << s.objectives[0] << ", " << s.objectives[1]
        << ") not on the true front";
  }
  // And it should find most of the 14 true points.
  EXPECT_GE(res->pareto_front.size(), 10u);
}

/// ZDT1 (Zitzler–Deb–Thiele #1), the standard 30-variable benchmark:
/// minimize f1 = x0, f2 = g(x)·(1 − sqrt(x0/g)) with
/// g = 1 + 9·mean(x1..x29); the true Pareto front has g = 1, i.e.
/// f2 = 1 − sqrt(f1). Expressed here in maximization form (negated).
class Zdt1Problem final : public Problem {
 public:
  Zdt1Problem() {
    for (int i = 0; i < 30; ++i) {
      vars_.push_back({"x" + std::to_string(i), 0.0, 1.0, false});
    }
  }
  const std::vector<VariableSpec>& variables() const override { return vars_; }
  size_t num_objectives() const override { return 2; }
  size_t num_constraints() const override { return 0; }
  void Evaluate(const std::vector<double>& x, std::vector<double>* obj,
                std::vector<double>* viol) const override {
    double g = 0.0;
    for (size_t i = 1; i < x.size(); ++i) g += x[i];
    g = 1.0 + 9.0 * g / static_cast<double>(x.size() - 1);
    double f1 = x[0];
    double f2 = g * (1.0 - std::sqrt(f1 / g));
    obj->assign({-f1, -f2});
    viol->clear();
  }

 private:
  std::vector<VariableSpec> vars_;
};

TEST(Nsga2Test, ConvergesOnZdt1Benchmark) {
  Nsga2Config cfg;
  cfg.population_size = 100;
  cfg.generations = 250;
  cfg.seed = 3;
  auto res = Nsga2(cfg).Solve(Zdt1Problem());
  ASSERT_TRUE(res.ok());
  ASSERT_GE(res->pareto_front.size(), 30u);
  // Quality: mean distance of the found front to the true front
  // f2 = 1 − sqrt(f1) (i.e. g − 1 ≈ 0) should be small.
  double total_gap = 0.0;
  double min_f1 = 1.0, max_f1 = 0.0;
  for (const Solution& s : res->pareto_front) {
    double f1 = -s.objectives[0];
    double f2 = -s.objectives[1];
    double ideal_f2 = 1.0 - std::sqrt(std::max(0.0, f1));
    total_gap += std::fabs(f2 - ideal_f2);
    min_f1 = std::min(min_f1, f1);
    max_f1 = std::max(max_f1, f1);
  }
  double mean_gap =
      total_gap / static_cast<double>(res->pareto_front.size());
  EXPECT_LT(mean_gap, 0.15);       // Converged close to the true front.
  EXPECT_LT(min_f1, 0.05);         // Covers the f1 ≈ 0 extreme...
  EXPECT_GT(max_f1, 0.8);          // ...through to the f1 ≈ 1 extreme.
}

TEST(Nsga2Test, InfeasibleProblemYieldsEmptyFront) {
  Nsga2Config cfg;
  cfg.population_size = 20;
  cfg.generations = 20;
  auto res = Nsga2(cfg).Solve(InfeasibleProblem());
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->pareto_front.empty());
  EXPECT_EQ(res->final_population.size(), 20u);
}

TEST(Nsga2Test, EvaluationCountIsPopTimesGenerationsPlusInit) {
  Nsga2Config cfg;
  cfg.population_size = 20;
  cfg.generations = 10;
  auto res = Nsga2(cfg).Solve(SchafferProblem());
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->evaluations, 20u * 11u);
}

TEST(Nsga2Test, RejectsInvertedBounds) {
  class BadBounds final : public Problem {
   public:
    BadBounds() { vars_.push_back({"x", 5.0, 1.0, false}); }
    const std::vector<VariableSpec>& variables() const override {
      return vars_;
    }
    size_t num_objectives() const override { return 1; }
    size_t num_constraints() const override { return 0; }
    void Evaluate(const std::vector<double>& x, std::vector<double>* obj,
                  std::vector<double>* viol) const override {
      obj->assign({x[0]});
      viol->clear();
    }

   private:
    std::vector<VariableSpec> vars_;
  };
  EXPECT_FALSE(Nsga2(Nsga2Config{}).Solve(BadBounds()).ok());
}

TEST(FastNonDominatedSortTest, RanksLayeredFronts) {
  using internal::Individual;
  auto mk = [](double a, double b) {
    Individual ind;
    ind.sol.objectives = {a, b};
    return ind;
  };
  std::vector<Individual> pop = {mk(3, 3), mk(1, 1), mk(2, 2),
                                 mk(3, 1), mk(1, 3)};
  auto fronts = internal::FastNonDominatedSort(&pop);
  ASSERT_GE(fronts.size(), 3u);
  EXPECT_EQ(pop[0].rank, 0);  // (3,3) dominates everything.
  EXPECT_EQ(pop[2].rank, 1);  // (2,2) dominated only by (3,3).
  EXPECT_EQ(pop[3].rank, 1);  // (3,1) dominated only by (3,3).
  EXPECT_EQ(pop[4].rank, 1);
  EXPECT_EQ(pop[1].rank, 2);  // (1,1) dominated by (2,2) and (3,3).
}

TEST(CrowdingDistanceTest, BoundariesGetInfinity) {
  using internal::Individual;
  auto mk = [](double a, double b) {
    Individual ind;
    ind.sol.objectives = {a, b};
    ind.rank = 0;
    return ind;
  };
  std::vector<Individual> pop = {mk(1, 5), mk(2, 4), mk(3, 3), mk(4, 2),
                                 mk(5, 1)};
  std::vector<size_t> front = {0, 1, 2, 3, 4};
  internal::AssignCrowdingDistance(front, &pop);
  EXPECT_TRUE(std::isinf(pop[0].crowding));
  EXPECT_TRUE(std::isinf(pop[4].crowding));
  EXPECT_FALSE(std::isinf(pop[2].crowding));
  EXPECT_GT(pop[2].crowding, 0.0);
}

TEST(CrowdingDistanceTest, TwoPointFrontAllInfinite) {
  using internal::Individual;
  Individual a, b;
  a.sol.objectives = {1, 2};
  b.sol.objectives = {2, 1};
  std::vector<Individual> pop = {a, b};
  internal::AssignCrowdingDistance({0, 1}, &pop);
  EXPECT_TRUE(std::isinf(pop[0].crowding));
  EXPECT_TRUE(std::isinf(pop[1].crowding));
}

TEST(CrowdingDistanceTest, DuplicateObjectiveFrontHasNoNan) {
  // Regression: a front where every individual carries identical
  // objectives (f_max == f_min in every dimension) used to divide by a
  // zero span; crowding must stay finite-or-inf, never NaN, so the
  // crowded-comparison sort stays a strict weak ordering.
  using internal::Individual;
  auto mk = [] {
    Individual ind;
    ind.sol.objectives = {3.0, 7.0};
    ind.rank = 0;
    return ind;
  };
  std::vector<Individual> pop = {mk(), mk(), mk(), mk(), mk()};
  std::vector<size_t> front = {0, 1, 2, 3, 4};
  internal::AssignCrowdingDistance(front, &pop);
  for (const Individual& ind : pop) {
    EXPECT_FALSE(std::isnan(ind.crowding));
  }
  // Interior individuals collect zero distance; boundaries keep inf.
  EXPECT_TRUE(std::isinf(pop[0].crowding));
  EXPECT_TRUE(std::isinf(pop[4].crowding));
  EXPECT_EQ(pop[2].crowding, 0.0);
  // The comparator must be safe to sort with (no NaN poisoning).
  std::vector<Individual> sorted = pop;
  std::sort(sorted.begin(), sorted.end(), internal::CrowdedLess);
  EXPECT_EQ(sorted.size(), pop.size());
}

TEST(CrowdingDistanceTest, OneDegenerateObjectiveStillSpreadsOnTheOther) {
  // Only objective 0 is degenerate; objective 1 must still produce a
  // finite, positive interior distance.
  using internal::Individual;
  auto mk = [](double b) {
    Individual ind;
    ind.sol.objectives = {1.0, b};
    ind.rank = 0;
    return ind;
  };
  std::vector<Individual> pop = {mk(0.0), mk(1.0), mk(2.0), mk(3.0)};
  internal::AssignCrowdingDistance({0, 1, 2, 3}, &pop);
  EXPECT_TRUE(std::isinf(pop[0].crowding));
  EXPECT_TRUE(std::isinf(pop[3].crowding));
  EXPECT_FALSE(std::isnan(pop[1].crowding));
  EXPECT_GT(pop[1].crowding, 0.0);
  EXPECT_TRUE(std::isfinite(pop[1].crowding));
}

TEST(BinaryTournamentTest, WorstIndividualNeverWinsAgainstDistinctRival) {
  // Regression: the tournament used to draw competitors *with*
  // replacement, so a == b let the strictly worst individual win a
  // "tournament" against itself. With distinct competitors the unique
  // rank-maximal individual can never win any tournament.
  using internal::Individual;
  std::vector<Individual> pop(8);
  for (size_t i = 0; i < pop.size(); ++i) {
    pop[i].rank = static_cast<int>(i);  // pop[7] is strictly worst.
    pop[i].crowding = 1.0;
  }
  Rng rng(123);
  for (int trial = 0; trial < 2000; ++trial) {
    EXPECT_NE(internal::BinaryTournamentIndex(pop, &rng), 7u);
  }
}

TEST(BinaryTournamentTest, SelectionPressureFavorsBetterRanks) {
  // Over many seeded draws, rank-0 individuals must win far more often
  // than uniform sampling would give them.
  using internal::Individual;
  std::vector<Individual> pop(10);
  for (size_t i = 0; i < pop.size(); ++i) {
    pop[i].rank = static_cast<int>(i / 2);  // Two individuals per rank.
    pop[i].crowding = 0.0;
  }
  Rng rng(42);
  int rank0_wins = 0;
  const int kTrials = 5000;
  for (int t = 0; t < kTrials; ++t) {
    size_t w = internal::BinaryTournamentIndex(pop, &rng);
    if (pop[w].rank == 0) ++rank0_wins;
  }
  // Uniform sampling would give rank 0 a 20% share; the tournament
  // gives it P(at least one of two distinct draws is rank 0) ≈ 38%.
  EXPECT_GT(rank0_wins, kTrials * 30 / 100);
}

TEST(BinaryTournamentTest, SingletonPopulationReturnsTheOnlyIndex) {
  using internal::Individual;
  std::vector<Individual> pop(1);
  pop[0].rank = 0;
  Rng rng(7);
  EXPECT_EQ(internal::BinaryTournamentIndex(pop, &rng), 0u);
}

TEST(Nsga2Test, ThreadCountInvariance) {
  // The tentpole determinism contract: the same seed must give a
  // byte-identical Pareto front and identical per-generation telemetry
  // at 1, 4, and 16 threads.
  auto run = [](size_t threads) {
    Nsga2Config cfg;
    cfg.population_size = 40;
    cfg.generations = 25;
    cfg.seed = 2024;
    cfg.num_threads = threads;
    std::vector<Nsga2GenerationStats> stats;
    cfg.on_generation = [&](const Nsga2GenerationStats& s) {
      stats.push_back(s);
    };
    auto res = Nsga2(cfg).Solve(Zdt1Problem());
    EXPECT_TRUE(res.ok());
    return std::make_pair(*res, stats);
  };
  auto [base, base_stats] = run(1);
  for (size_t threads : {4u, 16u}) {
    auto [res, stats] = run(threads);
    ASSERT_EQ(res.pareto_front.size(), base.pareto_front.size())
        << threads << " threads";
    for (size_t i = 0; i < base.pareto_front.size(); ++i) {
      EXPECT_EQ(res.pareto_front[i].x, base.pareto_front[i].x);
      EXPECT_EQ(res.pareto_front[i].objectives,
                base.pareto_front[i].objectives);
    }
    ASSERT_EQ(res.final_population.size(), base.final_population.size());
    for (size_t i = 0; i < base.final_population.size(); ++i) {
      EXPECT_EQ(res.final_population[i].x, base.final_population[i].x);
    }
    ASSERT_EQ(stats.size(), base_stats.size());
    for (size_t i = 0; i < base_stats.size(); ++i) {
      EXPECT_EQ(stats[i].front_size, base_stats[i].front_size);
      EXPECT_EQ(stats[i].evaluations, base_stats[i].evaluations);
      EXPECT_EQ(stats[i].hypervolume, base_stats[i].hypervolume);
    }
  }
}

TEST(Nsga2Test, HardwareThreadCountAlsoDeterministic) {
  // num_threads = 0 (hardware concurrency) must match the 1-thread run.
  Nsga2Config cfg;
  cfg.population_size = 20;
  cfg.generations = 10;
  cfg.seed = 77;
  cfg.num_threads = 1;
  auto serial = Nsga2(cfg).Solve(SchafferProblem());
  cfg.num_threads = 0;
  auto parallel = Nsga2(cfg).Solve(SchafferProblem());
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->pareto_front.size(), parallel->pareto_front.size());
  for (size_t i = 0; i < serial->pareto_front.size(); ++i) {
    EXPECT_EQ(serial->pareto_front[i].x, parallel->pareto_front[i].x);
  }
}

TEST(Nsga2Test, OnGenerationObserverReportsProgress) {
  SchafferProblem problem;
  Nsga2Config cfg;
  cfg.population_size = 20;
  cfg.generations = 15;
  std::vector<Nsga2GenerationStats> seen;
  cfg.on_generation = [&](const Nsga2GenerationStats& s) {
    seen.push_back(s);
  };
  auto result = Nsga2(cfg).Solve(problem);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(seen.size(), 15u);
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].generation, i);
    EXPECT_GE(seen[i].front_size, 1u);
    EXPECT_LE(seen[i].front_size, cfg.population_size);
    // Two objectives: hypervolume is tracked and never negative.
    EXPECT_FALSE(std::isnan(seen[i].hypervolume));
    EXPECT_GE(seen[i].hypervolume, 0.0);
  }
  // Evaluations are cumulative and end at the solver total.
  for (size_t i = 1; i < seen.size(); ++i) {
    EXPECT_GT(seen[i].evaluations, seen[i - 1].evaluations);
  }
  EXPECT_EQ(seen.back().evaluations, result->evaluations);
  // Hypervolume w.r.t. the fixed initial nadir must not degrade from
  // the first reported generation to the last (elitist selection).
  EXPECT_GE(seen.back().hypervolume, seen.front().hypervolume - 1e-9);
}

TEST(Nsga2Test, OnGenerationHypervolumeNanForThreeObjectives) {
  // A trivial 3-objective problem: hypervolume tracking is 2-D only.
  class ThreeObj final : public Problem {
   public:
    ThreeObj() { vars_.push_back({"x", 0.0, 1.0, false}); }
    const std::vector<VariableSpec>& variables() const override {
      return vars_;
    }
    size_t num_objectives() const override { return 3; }
    size_t num_constraints() const override { return 0; }
    void Evaluate(const std::vector<double>& x, std::vector<double>* obj,
                  std::vector<double>* viol) const override {
      obj->assign({x[0], 1.0 - x[0], x[0] * x[0]});
      viol->clear();
    }

   private:
    std::vector<VariableSpec> vars_;
  };
  ThreeObj problem;
  Nsga2Config cfg;
  cfg.population_size = 12;
  cfg.generations = 3;
  size_t calls = 0;
  cfg.on_generation = [&](const Nsga2GenerationStats& s) {
    ++calls;
    EXPECT_TRUE(std::isnan(s.hypervolume));
  };
  ASSERT_TRUE(Nsga2(cfg).Solve(problem).ok());
  EXPECT_EQ(calls, 3u);
}

TEST(Nsga2WarmStartTest, SeedArityMismatchRejected) {
  Nsga2Config cfg;
  cfg.population_size = 20;
  cfg.generations = 5;
  cfg.seed_population.push_back({1.0, 2.0});  // Schaffer has 1 variable.
  auto res = Nsga2(cfg).Solve(SchafferProblem());
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

TEST(Nsga2WarmStartTest, OutOfBoundsSeedsAreRepaired) {
  // Seeds far outside the bounds (and fractional values for integer
  // variables) must be clamped/rounded before evaluation, never crash
  // or leak out-of-range individuals into the population.
  BudgetedPair p;  // a, b integer in [1, 20].
  Nsga2Config cfg;
  cfg.population_size = 20;
  cfg.generations = 3;
  cfg.seed_population = {{-100.0, 3.7}, {55.0, 0.0}, {7.2, 1e9}};
  auto res = Nsga2(cfg).Solve(p);
  ASSERT_TRUE(res.ok());
  for (const Solution& s : res->final_population) {
    for (double v : s.x) {
      EXPECT_GE(v, 1.0);
      EXPECT_LE(v, 20.0);
      EXPECT_DOUBLE_EQ(v, std::round(v));  // Integer variables stay integral.
    }
  }
}

TEST(Nsga2WarmStartTest, OversizedSeedListUsesFirstPopulationSize) {
  // More seeds than population_size: only the first population_size are
  // injected, so appending extra seeds must not change the outcome.
  Nsga2Config cfg;
  cfg.population_size = 20;
  cfg.generations = 15;
  cfg.seed = 11;
  for (int i = 0; i < 20; ++i) {
    cfg.seed_population.push_back({0.1 * i});
  }
  auto base = Nsga2(cfg).Solve(SchafferProblem());
  ASSERT_TRUE(base.ok());
  for (int i = 0; i < 30; ++i) {
    cfg.seed_population.push_back({-5.0 + 0.3 * i});  // Ignored tail.
  }
  auto extra = Nsga2(cfg).Solve(SchafferProblem());
  ASSERT_TRUE(extra.ok());
  ASSERT_EQ(base->pareto_front.size(), extra->pareto_front.size());
  for (size_t i = 0; i < base->pareto_front.size(); ++i) {
    EXPECT_EQ(base->pareto_front[i].x, extra->pareto_front[i].x);
  }
}

TEST(Nsga2WarmStartTest, WarmStartedRunIsThreadCountInvariant) {
  // The determinism contract must survive seeding: a warm-started run
  // is byte-identical at 1, 4, and 16 threads.
  Nsga2Config prior_cfg;
  prior_cfg.population_size = 40;
  prior_cfg.generations = 10;
  prior_cfg.seed = 5;
  auto prior = Nsga2(prior_cfg).Solve(Zdt1Problem());
  ASSERT_TRUE(prior.ok());
  std::vector<std::vector<double>> seeds;
  for (const Solution& s : prior->final_population) seeds.push_back(s.x);

  auto run = [&](size_t threads) {
    Nsga2Config cfg;
    cfg.population_size = 40;
    cfg.generations = 20;
    cfg.seed = 6;
    cfg.num_threads = threads;
    cfg.seed_population = seeds;
    auto res = Nsga2(cfg).Solve(Zdt1Problem());
    EXPECT_TRUE(res.ok());
    return *res;
  };
  Nsga2Result base = run(1);
  for (size_t threads : {4u, 16u}) {
    Nsga2Result res = run(threads);
    ASSERT_EQ(res.pareto_front.size(), base.pareto_front.size())
        << threads << " threads";
    for (size_t i = 0; i < base.pareto_front.size(); ++i) {
      EXPECT_EQ(res.pareto_front[i].x, base.pareto_front[i].x);
      EXPECT_EQ(res.pareto_front[i].objectives,
                base.pareto_front[i].objectives);
    }
    ASSERT_EQ(res.final_population.size(), base.final_population.size());
    for (size_t i = 0; i < base.final_population.size(); ++i) {
      EXPECT_EQ(res.final_population[i].x, base.final_population[i].x);
    }
    EXPECT_EQ(res.evaluations, base.evaluations);
  }
}

TEST(Nsga2WarmStartTest, EmptySeedPopulationIsAColdStart) {
  // An explicitly empty seed list must reproduce the cold run exactly.
  Nsga2Config cfg;
  cfg.population_size = 20;
  cfg.generations = 10;
  cfg.seed = 13;
  auto cold = Nsga2(cfg).Solve(SchafferProblem());
  cfg.seed_population.clear();
  auto warm = Nsga2(cfg).Solve(SchafferProblem());
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(cold->pareto_front.size(), warm->pareto_front.size());
  for (size_t i = 0; i < cold->pareto_front.size(); ++i) {
    EXPECT_EQ(cold->pareto_front[i].x, warm->pareto_front[i].x);
  }
}

TEST(Nsga2EarlyExitTest, StallExitStopsConvergedRunEarly) {
  // Schaffer converges in tens of generations; with a 200-generation
  // budget and the stall exit armed the run must stop well short of the
  // budget and say so in the result.
  Nsga2Config cfg;
  cfg.population_size = 40;
  cfg.generations = 200;
  cfg.seed = 3;
  cfg.stall_generations = 5;
  auto res = Nsga2(cfg).Solve(SchafferProblem());
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->early_exit);
  EXPECT_LT(res->generations_run, 200u);
  EXPECT_GE(res->generations_run, 1u);
  // Evaluations account exactly for the generations actually run.
  EXPECT_EQ(res->evaluations, 40u * (res->generations_run + 1));
  // The front is still converged (Pareto set is x in [0, 2]).
  for (const Solution& s : res->pareto_front) {
    EXPECT_GE(s.x[0], -0.2);
    EXPECT_LE(s.x[0], 2.2);
  }
}

TEST(Nsga2EarlyExitTest, DisabledStallRunsFullBudget) {
  Nsga2Config cfg;
  cfg.population_size = 20;
  cfg.generations = 30;
  cfg.stall_generations = 0;
  auto res = Nsga2(cfg).Solve(SchafferProblem());
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->early_exit);
  EXPECT_EQ(res->generations_run, 30u);
}

TEST(Nsga2EarlyExitTest, ExitGenerationIsThreadCountInvariant) {
  // The stall detector runs on the coordinator thread over the
  // deterministic front, so the exit generation must not move with the
  // thread count.
  auto run = [](size_t threads) {
    Nsga2Config cfg;
    cfg.population_size = 40;
    cfg.generations = 150;
    cfg.seed = 21;
    cfg.num_threads = threads;
    cfg.stall_generations = 4;
    auto res = Nsga2(cfg).Solve(SchafferProblem());
    EXPECT_TRUE(res.ok());
    return *res;
  };
  Nsga2Result base = run(1);
  EXPECT_TRUE(base.early_exit);
  for (size_t threads : {4u, 16u}) {
    Nsga2Result res = run(threads);
    EXPECT_EQ(res.early_exit, base.early_exit) << threads << " threads";
    EXPECT_EQ(res.generations_run, base.generations_run)
        << threads << " threads";
    EXPECT_EQ(res.evaluations, base.evaluations);
    ASSERT_EQ(res.pareto_front.size(), base.pareto_front.size());
    for (size_t i = 0; i < base.pareto_front.size(); ++i) {
      EXPECT_EQ(res.pareto_front[i].x, base.pareto_front[i].x);
    }
  }
}

TEST(Nsga2EarlyExitTest, ObserverReportsStalledGenerations) {
  Nsga2Config cfg;
  cfg.population_size = 40;
  cfg.generations = 200;
  cfg.seed = 3;
  cfg.stall_generations = 5;
  std::vector<Nsga2GenerationStats> seen;
  cfg.on_generation = [&](const Nsga2GenerationStats& s) {
    seen.push_back(s);
  };
  auto res = Nsga2(cfg).Solve(SchafferProblem());
  ASSERT_TRUE(res.ok());
  ASSERT_TRUE(res->early_exit);
  ASSERT_EQ(seen.size(), res->generations_run);
  // The last reported generation carries the full stall streak.
  EXPECT_EQ(seen.back().stalled_generations, 5u);
  // The streak only ever grows by one or resets.
  for (size_t i = 1; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i].stalled_generations ==
                    seen[i - 1].stalled_generations + 1 ||
                seen[i].stalled_generations == 0)
        << "generation " << i;
  }
}

}  // namespace
}  // namespace flower::opt
