#include "storm/cluster.h"

#include <gtest/gtest.h>

#include <deque>

namespace flower::storm {
namespace {

ec2::InstanceType SmallVm() {
  // 10,000 work units/s per VM keeps the arithmetic easy.
  return {"test.small", 1, 1.0e4, 0.05};
}

ClusterConfig TestConfig() {
  ClusterConfig cfg;
  cfg.name = "storm";
  cfg.tick_period_sec = 1.0;
  cfg.spout_batch_limit = 10000;
  cfg.max_pending_tuples = 100000;
  cfg.usable_capacity_fraction = 1.0;
  return cfg;
}

// A spout backed by an explicit queue the test controls.
struct QueueSpout {
  std::deque<Tuple> q;
  SpoutFn Fn() {
    return [this](size_t max, std::vector<Tuple>* out) {
      size_t limit = out->size() + max;
      while (!q.empty() && out->size() < limit) {
        out->push_back(q.front());
        q.pop_front();
      }
    };
  }
  void Push(int n, double cost_hint = 0.0) {
    (void)cost_hint;
    for (int i = 0; i < n; ++i) q.push_back(Tuple{});
  }
};

std::shared_ptr<Topology> OneBoltTopology(QueueSpout* spout,
                                          double bolt_cost,
                                          double spout_cost = 0.0) {
  auto topo = std::make_shared<Topology>("t");
  EXPECT_TRUE(topo->SetSpout("spout", spout->Fn(), spout_cost).ok());
  BoltSpec spec;
  spec.name = "work";
  spec.cpu_cost_per_tuple = bolt_cost;
  spec.logic = std::make_shared<StatelessBolt>(1.0);
  EXPECT_TRUE(topo->AddBolt(std::move(spec)).ok());
  return topo;
}

TEST(ClusterTest, SubmitValidation) {
  sim::Simulation sim;
  ec2::Fleet fleet(&sim, SmallVm(), 1, 10.0);
  Cluster cluster(&sim, nullptr, &fleet, TestConfig());
  EXPECT_FALSE(cluster.Submit(nullptr).ok());
  auto no_spout = std::make_shared<Topology>("empty");
  EXPECT_FALSE(cluster.Submit(no_spout).ok());
  QueueSpout spout;
  ASSERT_TRUE(cluster.Submit(OneBoltTopology(&spout, 100.0)).ok());
  EXPECT_EQ(cluster.Submit(OneBoltTopology(&spout, 100.0)).code(),
            StatusCode::kAlreadyExists);
}

TEST(ClusterTest, ProcessesAllTuplesUnderLightLoad) {
  sim::Simulation sim;
  ec2::Fleet fleet(&sim, SmallVm(), 2, 10.0);  // 20k wu/s.
  Cluster cluster(&sim, nullptr, &fleet, TestConfig());
  QueueSpout spout;
  ASSERT_TRUE(cluster.Submit(OneBoltTopology(&spout, 100.0)).ok());
  spout.Push(50);  // 5k wu: fits in one tick.
  sim.RunUntil(3.0);
  EXPECT_EQ(cluster.total_executed(), 50u);
  EXPECT_EQ(cluster.total_acked(), 50u);
  EXPECT_EQ(cluster.topology()->PendingTuples(), 0u);
}

TEST(ClusterTest, CpuUtilizationReflectsOfferedLoad) {
  sim::Simulation sim;
  ec2::Fleet fleet(&sim, SmallVm(), 1, 10.0);  // 10k wu/s.
  Cluster cluster(&sim, nullptr, &fleet, TestConfig());
  QueueSpout spout;
  ASSERT_TRUE(cluster.Submit(OneBoltTopology(&spout, 100.0)).ok());
  // 50 tuples/s * 100 wu = 5k wu/s against 10k budget → ~50% CPU.
  ASSERT_TRUE(sim.SchedulePeriodic(0.5, 1.0, [&] {
    spout.Push(50);
    return sim.Now() < 20.0;
  }).ok());
  sim.RunUntil(20.0);
  EXPECT_NEAR(cluster.LastTickCpuUtilizationPct(), 50.0, 5.0);
}

TEST(ClusterTest, OverloadSaturatesCpuAndGrowsQueue) {
  sim::Simulation sim;
  ec2::Fleet fleet(&sim, SmallVm(), 1, 10.0);  // 10k wu/s.
  Cluster cluster(&sim, nullptr, &fleet, TestConfig());
  QueueSpout spout;
  ASSERT_TRUE(cluster.Submit(OneBoltTopology(&spout, 100.0)).ok());
  // 300 tuples/s * 100 wu = 30k wu/s against 10k: 3x overload.
  ASSERT_TRUE(sim.SchedulePeriodic(0.5, 1.0, [&] {
    spout.Push(300);
    return sim.Now() < 30.0;
  }).ok());
  sim.RunUntil(30.0);
  EXPECT_GT(cluster.LastTickCpuUtilizationPct(), 95.0);
  EXPECT_GT(cluster.topology()->PendingTuples(), 1000u);
}

TEST(ClusterTest, ScalingOutRestoresThroughput) {
  sim::Simulation sim;
  ec2::Fleet fleet(&sim, SmallVm(), 1, 5.0);
  Cluster cluster(&sim, nullptr, &fleet, TestConfig());
  QueueSpout spout;
  ASSERT_TRUE(cluster.Submit(OneBoltTopology(&spout, 100.0)).ok());
  ASSERT_TRUE(sim.SchedulePeriodic(0.5, 1.0, [&] {
    spout.Push(300);  // Needs 3 VMs.
    return sim.Now() < 60.0;
  }).ok());
  sim.RunUntil(20.0);
  EXPECT_GT(cluster.LastTickCpuUtilizationPct(), 95.0);
  ASSERT_TRUE(cluster.SetWorkerCount(5).ok());
  sim.RunUntil(60.0);
  // 5 VMs → 50k wu/s against 30k offered: below saturation, queue
  // drains.
  EXPECT_LT(cluster.LastTickCpuUtilizationPct(), 90.0);
  EXPECT_LT(cluster.topology()->PendingTuples(), 500u);
}

TEST(ClusterTest, BackpressureStopsSpoutPull) {
  sim::Simulation sim;
  ec2::Fleet fleet(&sim, SmallVm(), 1, 10.0);
  ClusterConfig cfg = TestConfig();
  cfg.max_pending_tuples = 200;
  Cluster cluster(&sim, nullptr, &fleet, cfg);
  QueueSpout spout;
  ASSERT_TRUE(cluster.Submit(OneBoltTopology(&spout, 1000.0)).ok());
  spout.Push(100000);
  sim.RunUntil(5.0);
  // The topology never holds much more than max_pending; the rest stays
  // in the spout's source.
  EXPECT_LE(cluster.topology()->PendingTuples(), 400u);
  EXPECT_GT(spout.q.size(), 90000u);
}

TEST(ClusterTest, ZeroWorkersMeansFullSaturation) {
  sim::Simulation sim;
  ec2::Fleet fleet(&sim, SmallVm(), 0, 10.0);
  Cluster cluster(&sim, nullptr, &fleet, TestConfig());
  QueueSpout spout;
  ASSERT_TRUE(cluster.Submit(OneBoltTopology(&spout, 100.0)).ok());
  spout.Push(10);
  sim.RunUntil(3.0);
  EXPECT_DOUBLE_EQ(cluster.LastTickCpuUtilizationPct(), 100.0);
  EXPECT_EQ(cluster.total_executed(), 0u);
}

TEST(ClusterTest, SetWorkerCountValidation) {
  sim::Simulation sim;
  ec2::Fleet fleet(&sim, SmallVm(), 1, 10.0);
  Cluster cluster(&sim, nullptr, &fleet, TestConfig());
  EXPECT_FALSE(cluster.SetWorkerCount(0).ok());
  EXPECT_TRUE(cluster.SetWorkerCount(3).ok());
}

TEST(ClusterTest, MultiSpoutTuplesTaggedWithSource) {
  // A recording bolt that tallies tuples per source stream.
  class SourceTally final : public BoltLogic {
   public:
    Status Execute(const Tuple& t, SimTime,
                   const std::function<void(Tuple)>&) override {
      if (t.source == 0) ++from0_;
      else ++from1_;
      return Status::OK();
    }
    int from0_ = 0, from1_ = 0;
  };
  sim::Simulation sim;
  ec2::Fleet fleet(&sim, SmallVm(), 4, 10.0);
  Cluster cluster(&sim, nullptr, &fleet, TestConfig());
  auto topo = std::make_shared<Topology>("join");
  QueueSpout clicks, impressions;
  ASSERT_TRUE(topo->AddSpout("clicks", clicks.Fn(), 0.0).ok());
  ASSERT_TRUE(topo->AddSpout("impressions", impressions.Fn(), 0.0).ok());
  auto tally = std::make_shared<SourceTally>();
  BoltSpec spec;
  spec.name = "tally";
  spec.cpu_cost_per_tuple = 10.0;
  spec.logic = tally;
  ASSERT_TRUE(topo->AddBolt(std::move(spec),
                            std::vector<std::string>{"clicks",
                                                     "impressions"}).ok());
  ASSERT_TRUE(cluster.Submit(topo).ok());
  clicks.Push(30);
  impressions.Push(70);
  sim.RunUntil(5.0);
  EXPECT_EQ(tally->from0_, 30);
  EXPECT_EQ(tally->from1_, 70);
  EXPECT_EQ(cluster.total_acked(), 100u);
}

TEST(ClusterTest, FanOutDeliversToAllChildren) {
  sim::Simulation sim;
  ec2::Fleet fleet(&sim, SmallVm(), 4, 10.0);
  Cluster cluster(&sim, nullptr, &fleet, TestConfig());
  auto topo = std::make_shared<Topology>("fanout");
  QueueSpout spout;
  ASSERT_TRUE(topo->AddSpout("src", spout.Fn(), 0.0).ok());
  BoltSpec a;
  a.name = "branch-a";
  a.cpu_cost_per_tuple = 10.0;
  a.logic = std::make_shared<StatelessBolt>(1.0);
  ASSERT_TRUE(topo->AddBolt(std::move(a), "src").ok());
  BoltSpec b;
  b.name = "branch-b";
  b.cpu_cost_per_tuple = 10.0;
  b.logic = std::make_shared<StatelessBolt>(1.0);
  ASSERT_TRUE(topo->AddBolt(std::move(b), "src").ok());
  ASSERT_TRUE(cluster.Submit(topo).ok());
  spout.Push(25);
  sim.RunUntil(5.0);
  // Every tuple runs through both branches: 50 executions, 50 acks.
  EXPECT_EQ(cluster.total_executed(), 50u);
  EXPECT_EQ(cluster.total_acked(), 50u);
}

TEST(ClusterTest, SinkThrottleRequeuesTuple) {
  // Bolt logic that throttles the first 5 calls.
  class FlakySink final : public BoltLogic {
   public:
    Status Execute(const Tuple&, SimTime,
                   const std::function<void(Tuple)>&) override {
      if (++calls_ <= 5) return Status::Throttled("sink full");
      return Status::OK();
    }
    int calls_ = 0;
  };
  sim::Simulation sim;
  ec2::Fleet fleet(&sim, SmallVm(), 2, 10.0);
  Cluster cluster(&sim, nullptr, &fleet, TestConfig());
  auto topo = std::make_shared<Topology>("t");
  QueueSpout spout;
  ASSERT_TRUE(topo->SetSpout("spout", spout.Fn(), 0.0).ok());
  BoltSpec spec;
  spec.name = "sink";
  spec.cpu_cost_per_tuple = 10.0;
  spec.logic = std::make_shared<FlakySink>();
  ASSERT_TRUE(topo->AddBolt(std::move(spec)).ok());
  ASSERT_TRUE(cluster.Submit(topo).ok());
  spout.Push(3);
  sim.RunUntil(10.0);
  // All 3 tuples eventually processed despite 5 throttled attempts.
  EXPECT_EQ(cluster.total_acked(), 3u);
  EXPECT_EQ(cluster.total_sink_throttles(), 5u);
}

TEST(ClusterTest, PublishesPerBoltMetrics) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  ec2::Fleet fleet(&sim, SmallVm(), 2, 10.0);
  ClusterConfig cfg = TestConfig();
  cfg.metrics_period_sec = 60.0;
  cfg.cost_jitter = 0.0;
  Cluster cluster(&sim, &metrics, &fleet, cfg);
  QueueSpout spout;
  ASSERT_TRUE(cluster.Submit(OneBoltTopology(&spout, 100.0)).ok());
  ASSERT_TRUE(sim.SchedulePeriodic(0.5, 1.0, [&] {
    spout.Push(50);
    return sim.Now() < 180.0;
  }).ok());
  sim.RunUntil(181.0);
  cloudwatch::MetricId executed{"Flower/Storm", "BoltExecuted",
                                "storm.work"};
  auto sum = metrics.GetStatistic(executed, 0, 181,
                                  cloudwatch::Statistic::kSum);
  ASSERT_TRUE(sum.ok());
  EXPECT_NEAR(*sum, 180.0 * 50.0, 200.0);
  cloudwatch::MetricId capacity{"Flower/Storm", "BoltCapacity",
                                "storm.work"};
  auto cap = metrics.GetStatistic(capacity, 0, 181,
                                  cloudwatch::Statistic::kAverage);
  ASSERT_TRUE(cap.ok());
  // 50 tuples * 100 wu per 20k budget/tick = 25% of the budget.
  EXPECT_NEAR(*cap, 0.25, 0.05);
  cloudwatch::MetricId qlen{"Flower/Storm", "BoltQueueLength",
                            "storm.work"};
  EXPECT_TRUE(metrics
                  .GetStatistic(qlen, 0, 181,
                                cloudwatch::Statistic::kMaximum)
                  .ok());
}

TEST(ClusterTest, PublishesMetrics) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  ec2::Fleet fleet(&sim, SmallVm(), 2, 10.0);
  ClusterConfig cfg = TestConfig();
  cfg.metrics_period_sec = 60.0;
  Cluster cluster(&sim, &metrics, &fleet, cfg);
  QueueSpout spout;
  ASSERT_TRUE(cluster.Submit(OneBoltTopology(&spout, 100.0)).ok());
  ASSERT_TRUE(sim.SchedulePeriodic(0.5, 1.0, [&] {
    spout.Push(50);
    return sim.Now() < 300.0;
  }).ok());
  sim.RunUntil(301.0);
  cloudwatch::MetricId cpu{"Flower/Storm", "CpuUtilization", "storm"};
  auto avg = metrics.GetStatistic(cpu, 0, 301, cloudwatch::Statistic::kAverage);
  ASSERT_TRUE(avg.ok());
  EXPECT_NEAR(*avg, 25.0, 5.0);  // 5k wu/s on 20k capacity.
  cloudwatch::MetricId workers{"Flower/Storm", "WorkerCount", "storm"};
  EXPECT_DOUBLE_EQ(
      *metrics.GetStatistic(workers, 0, 301, cloudwatch::Statistic::kMaximum),
      2.0);
}

}  // namespace
}  // namespace flower::storm
