#include "storm/topology.h"

#include <gtest/gtest.h>

namespace flower::storm {
namespace {

SpoutFn EmptySpout() {
  return [](size_t, std::vector<Tuple>*) {};
}

BoltSpec Spec(const std::string& name, double selectivity = 1.0) {
  BoltSpec spec;
  spec.name = name;
  spec.cpu_cost_per_tuple = 100.0;
  spec.logic = std::make_shared<StatelessBolt>(selectivity);
  return spec;
}

TEST(TopologyTest, SetSpoutOnce) {
  Topology topo("t");
  EXPECT_FALSE(topo.HasSpout());
  ASSERT_TRUE(topo.SetSpout("spout", EmptySpout()).ok());
  EXPECT_TRUE(topo.HasSpout());
  EXPECT_EQ(topo.SetSpout("again", EmptySpout()).code(),
            StatusCode::kAlreadyExists);
}

TEST(TopologyTest, NullSpoutRejected) {
  Topology topo("t");
  EXPECT_EQ(topo.SetSpout("s", nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(TopologyTest, AddBoltChain) {
  Topology topo("t");
  ASSERT_TRUE(topo.SetSpout("spout", EmptySpout()).ok());
  ASSERT_TRUE(topo.AddBolt(Spec("a")).ok());
  ASSERT_TRUE(topo.AddBolt(Spec("b"), "a").ok());
  ASSERT_TRUE(topo.AddBolt(Spec("c"), "b").ok());
  EXPECT_EQ(topo.bolt_count(), 3u);
}

TEST(TopologyTest, DuplicateAndUnknownNamesRejected) {
  Topology topo("t");
  ASSERT_TRUE(topo.SetSpout("spout", EmptySpout()).ok());
  ASSERT_TRUE(topo.AddBolt(Spec("a")).ok());
  EXPECT_EQ(topo.AddBolt(Spec("a")).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(topo.AddBolt(Spec("spout")).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(topo.AddBolt(Spec("b"), "nope").code(), StatusCode::kNotFound);
}

TEST(TopologyTest, BoltWithoutLogicRejected) {
  Topology topo("t");
  BoltSpec spec;
  spec.name = "broken";
  EXPECT_EQ(topo.AddBolt(std::move(spec)).code(),
            StatusCode::kInvalidArgument);
}

TEST(TopologyTest, NegativeCostRejected) {
  Topology topo("t");
  BoltSpec spec = Spec("x");
  spec.cpu_cost_per_tuple = -1.0;
  EXPECT_FALSE(topo.AddBolt(std::move(spec)).ok());
}

TEST(TopologyTest, QueueLengthsInitiallyZero) {
  Topology topo("t");
  ASSERT_TRUE(topo.SetSpout("spout", EmptySpout()).ok());
  ASSERT_TRUE(topo.AddBolt(Spec("a")).ok());
  EXPECT_EQ(topo.PendingTuples(), 0u);
  auto lens = topo.QueueLengths();
  ASSERT_EQ(lens.size(), 1u);
  EXPECT_EQ(lens[0].first, "a");
  EXPECT_EQ(lens[0].second, 0u);
}

TEST(TopologyTest, MultipleSpoutsSupported) {
  Topology topo("t");
  ASSERT_TRUE(topo.AddSpout("clicks", EmptySpout()).ok());
  ASSERT_TRUE(topo.AddSpout("impressions", EmptySpout()).ok());
  EXPECT_EQ(topo.spout_count(), 2u);
  // Duplicate spout name rejected.
  EXPECT_EQ(topo.AddSpout("clicks", EmptySpout()).code(),
            StatusCode::kAlreadyExists);
  // SetSpout refuses once any spout exists.
  EXPECT_EQ(topo.SetSpout("another", EmptySpout()).code(),
            StatusCode::kAlreadyExists);
}

TEST(TopologyTest, FanInBoltWithMultipleParents) {
  Topology topo("t");
  ASSERT_TRUE(topo.AddSpout("clicks", EmptySpout()).ok());
  ASSERT_TRUE(topo.AddSpout("impressions", EmptySpout()).ok());
  BoltSpec join = Spec("join");
  ASSERT_TRUE(topo.AddBolt(std::move(join),
                           std::vector<std::string>{"clicks",
                                                    "impressions"}).ok());
  EXPECT_EQ(topo.bolt_count(), 1u);
}

TEST(TopologyTest, EmptyParentRequiresExactlyOneSpout) {
  Topology topo("t");
  ASSERT_TRUE(topo.AddSpout("a", EmptySpout()).ok());
  ASSERT_TRUE(topo.AddSpout("b", EmptySpout()).ok());
  EXPECT_EQ(topo.AddBolt(Spec("x")).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(topo.AddBolt(Spec("y"), "a").ok());
}

TEST(TopologyTest, BoltNeedsAtLeastOneParent) {
  Topology topo("t");
  ASSERT_TRUE(topo.AddSpout("a", EmptySpout()).ok());
  EXPECT_EQ(topo.AddBolt(Spec("x"), std::vector<std::string>{}).code(),
            StatusCode::kInvalidArgument);
}

TEST(TopologyTest, MixedSpoutAndBoltParents) {
  Topology topo("t");
  ASSERT_TRUE(topo.AddSpout("raw", EmptySpout()).ok());
  ASSERT_TRUE(topo.AddBolt(Spec("enrich"), "raw").ok());
  // A bolt can consume both the raw stream and the enriched one.
  ASSERT_TRUE(topo.AddBolt(Spec("audit"),
                           std::vector<std::string>{"raw", "enrich"}).ok());
  EXPECT_EQ(topo.bolt_count(), 2u);
}

TEST(TopologyTest, NegativeSpoutCostRejected) {
  Topology topo("t");
  EXPECT_FALSE(topo.AddSpout("s", EmptySpout(), -5.0).ok());
}

TEST(StatelessBoltTest, UnitSelectivityEmitsEveryTuple) {
  StatelessBolt bolt(1.0);
  int emitted = 0;
  Tuple t;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(bolt.Execute(t, 0.0, [&](Tuple) { ++emitted; }).ok());
  }
  EXPECT_EQ(emitted, 10);
}

TEST(StatelessBoltTest, FractionalSelectivityAccumulates) {
  StatelessBolt bolt(0.25);
  int emitted = 0;
  Tuple t;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(bolt.Execute(t, 0.0, [&](Tuple) { ++emitted; }).ok());
  }
  EXPECT_EQ(emitted, 25);
}

TEST(StatelessBoltTest, AmplifyingSelectivity) {
  StatelessBolt bolt(3.0);
  int emitted = 0;
  Tuple t;
  ASSERT_TRUE(bolt.Execute(t, 0.0, [&](Tuple) { ++emitted; }).ok());
  EXPECT_EQ(emitted, 3);
}

}  // namespace
}  // namespace flower::storm
