// End-to-end flow-health scenario (the PR's acceptance script): rising
// Kinesis arrivals push DynamoDB write demand past a starved capacity
// cap; throttled writes trip the flow SLO's fast-burn alert, and the
// resulting HealthReport must rank storage first, with the learned
// Eq. 1 ingestion→storage edge cited as the causal story — identically
// at one thread and at four.

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cloudwatch/metric_store.h"
#include "core/dependency_analyzer.h"
#include "obs/health/health_monitor.h"
#include "obs/telemetry.h"

namespace flower {
namespace {

using obs::health::HealthMonitor;
using obs::health::HealthMonitorConfig;
using obs::health::HealthReport;
using obs::health::SliKind;
using obs::health::SloSpec;
using obs::health::SloStatus;

constexpr double kTick = 60.0;
constexpr SimTime kLearnEnd = 3600.0;    // Healthy ramp: learn Eq. 1 here.
constexpr SimTime kStarveAt = 3600.0;    // WCU capacity yanked from here on.
constexpr SimTime kHorizon = 7200.0;
constexpr double kHealthyWcuCap = 800.0;
constexpr double kStarvedWcuCap = 500.0;  // Scripted starvation ceiling.
constexpr double kWcuPerRecord = 0.4;

// Arrivals climb all run long; demand reaches the healthy cap exactly
// at kStarveAt (2000 rec/s * 0.4 = 800 WCU) and keeps rising while the
// scripted starvation yanks capacity down to 500.
double ArrivalRate(SimTime t) { return 500.0 + t * (1500.0 / 3600.0); }

double WcuCap(SimTime t) {
  return t < kStarveAt ? kHealthyWcuCap : kStarvedWcuCap;
}

// Drives the scripted scenario at the given anomaly-bank thread count
// and returns the monitor's full serialized state plus assertions'
// inputs. Everything is a pure function of the tick index — no RNG, no
// wall clock — so any two runs must serialize identically.
struct ScenarioResult {
  std::string jsonl;
  SloStatus flow_slo;
  std::vector<HealthReport> reports;
  std::vector<std::string> active_alerts;
};

ScenarioResult RunScenario(size_t num_threads) {
  obs::Telemetry telemetry;
  cloudwatch::MetricStore store;

  HealthMonitorConfig config;
  config.eval_period_sec = kTick;
  config.num_threads = num_threads;
  HealthMonitor monitor(&telemetry, config);

  // The flow objective: 99% of writes unthrottled, fast window 5 min.
  SloSpec slo;
  slo.id = "flow/write-availability";
  slo.layer = "storage";
  slo.kind = SliKind::kCounterRatio;
  slo.metric = {"storage.writes_throttled", {}};
  slo.total = {"storage.writes_total", {}};
  slo.objective = 0.99;
  slo.fast_window_sec = 300.0;
  slo.slow_window_sec = 900.0;
  slo.budget_window_sec = 7200.0;
  EXPECT_TRUE(monitor.AddSlo(slo).ok());

  // Watched streams: one per layer so the thread pool has real fan-out.
  for (const char* layer : {"ingestion", "analytics", "storage"}) {
    EXPECT_TRUE(monitor
                    .Watch(obs::health::AnomalyBank::Source::kGauge,
                           {"loop.sensed_y", {{"loop", layer}}}, layer)
                    .ok());
  }
  EXPECT_TRUE(monitor
                  .Watch(obs::health::AnomalyBank::Source::kCounterRate,
                         {"storage.writes_throttled", {}}, "storage")
                  .ok());

  obs::MetricsRegistry& reg = telemetry.metrics();
  obs::Counter* writes_total = reg.GetCounter("storage.writes_total");
  obs::Counter* writes_throttled =
      reg.GetCounter("storage.writes_throttled");
  obs::Gauge* y_ingestion =
      reg.GetGauge("loop.sensed_y", {{"loop", "ingestion"}});
  obs::Gauge* y_analytics =
      reg.GetGauge("loop.sensed_y", {{"loop", "analytics"}});
  obs::Gauge* y_storage =
      reg.GetGauge("loop.sensed_y", {{"loop", "storage"}});

  const cloudwatch::MetricId kArrivalsId{"Flower/Kinesis",
                                         "IncomingRecords", "clickstream"};
  const cloudwatch::MetricId kWcuId{
      "Flower/DynamoDB", "ConsumedWriteCapacityUnits", "aggregates"};

  bool edges_learned = false;
  core::DependencyAnalyzer analyzer;

  for (SimTime t = kTick; t <= kHorizon; t += kTick) {
    double arrivals = ArrivalRate(t);
    double cap = WcuCap(t);
    double demand_wcu = arrivals * kWcuPerRecord;
    double consumed_wcu = std::min(demand_wcu, cap);

    // Platform metrics (the Eq. 1 learning substrate).
    EXPECT_TRUE(store.Put(kArrivalsId, t, arrivals).ok());
    EXPECT_TRUE(store.Put(kWcuId, t, consumed_wcu).ok());

    // Write traffic: everything past the cap throttles.
    double writes = arrivals * kTick;
    double throttled =
        demand_wcu > cap ? writes * (demand_wcu - cap) / demand_wcu : 0.0;
    writes_total->Increment(static_cast<uint64_t>(writes));
    writes_throttled->Increment(static_cast<uint64_t>(throttled));

    // Loop telemetry: utilizations plus one decision record per layer.
    // Ingestion and analytics hold flat (their loops keep up all run);
    // storage saturates (raw demand above the clamp) once starved.
    y_ingestion->Set(50.0);
    y_analytics->Set(40.0);
    y_storage->Set(100.0 * consumed_wcu / kHealthyWcuCap);
    for (const char* layer : {"ingestion", "analytics", "storage"}) {
      obs::ControlDecisionRecord rec;
      rec.time = t;
      rec.loop = layer;
      rec.layer = layer;
      rec.law = "scripted";
      rec.outcome = obs::StepOutcome::kActuated;
      if (std::string(layer) == "storage") {
        rec.raw_u = demand_wcu;
        rec.clamped_u = consumed_wcu;
      } else {
        rec.raw_u = 10.0;
        rec.clamped_u = 10.0;
      }
      telemetry.decisions().Append(rec);
    }

    // Learn the dependency graph from the healthy ramp, exactly once.
    if (!edges_learned && t >= kLearnEnd) {
      std::vector<core::Dependency> deps = analyzer.AnalyzeAll(
          store,
          {{core::Layer::kIngestion, kArrivalsId},
           {core::Layer::kStorage, kWcuId}},
          0.0, kLearnEnd);
      EXPECT_FALSE(deps.empty());
      monitor.SetDependencyEdges(core::ToHealthEdges(deps));
      edges_learned = true;
    }

    monitor.Evaluate(t);
  }
  EXPECT_TRUE(edges_learned);

  ScenarioResult out;
  std::ostringstream os;
  monitor.WriteJsonl(os);
  out.jsonl = os.str();
  out.flow_slo = monitor.Statuses().front();
  out.reports.assign(monitor.reports().begin(), monitor.reports().end());
  out.active_alerts = monitor.ActiveAlerts();
  return out;
}

TEST(FlowHealthE2eTest, StarvationTripsSloAndStorageRanksFirst) {
  ScenarioResult r = RunScenario(1);

  // The alert fired and never cleared (starvation persists to horizon).
  const SloStatus& slo = r.flow_slo;
  EXPECT_TRUE(slo.breached);
  EXPECT_GE(slo.alerts_fired, 1u);
  ASSERT_FALSE(r.active_alerts.empty());
  EXPECT_EQ(r.active_alerts.front(), "flow/write-availability");

  // Fast-burn alert within two evaluation (fast) windows of onset.
  EXPECT_GE(slo.breach_since, kStarveAt);
  EXPECT_LE(slo.breach_since, kStarveAt + 2.0 * 300.0);
  EXPECT_GT(slo.burn_fast, 14.4);

  // The report ranks storage first, and its evidence cites both the
  // saturation symptom and the learned Eq. 1 edge from ingestion.
  ASSERT_FALSE(r.reports.empty());
  const HealthReport& report = r.reports.front();
  ASSERT_FALSE(report.ranking.empty());
  EXPECT_EQ(report.ranking.front().layer, "storage");
  bool saw_saturation = false;
  bool saw_dependency = false;
  for (const auto& ev : report.ranking.front().evidence) {
    if (ev.kind == "saturation") saw_saturation = true;
    if (ev.kind == "dependency") {
      saw_dependency = true;
      EXPECT_NE(ev.detail.find("Eq. 1"), std::string::npos);
      EXPECT_NE(ev.detail.find("ingestion"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_saturation);
  EXPECT_TRUE(saw_dependency);
  EXPECT_NE(report.summary.find("storage"), std::string::npos);
}

TEST(FlowHealthE2eTest, IdenticalAtOneAndFourThreads) {
  ScenarioResult a = RunScenario(1);
  ScenarioResult b = RunScenario(4);
  EXPECT_EQ(a.jsonl, b.jsonl);
  EXPECT_EQ(a.flow_slo.breach_since, b.flow_slo.breach_since);
  EXPECT_EQ(a.reports.size(), b.reports.size());
  ASSERT_FALSE(a.reports.empty());
  ASSERT_FALSE(b.reports.empty());
  EXPECT_EQ(a.reports.front().summary, b.reports.front().summary);
}

}  // namespace
}  // namespace flower
