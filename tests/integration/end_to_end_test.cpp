// Full-system integration tests: the managed click-stream flow under
// dynamic load, exercising workload generation, all three simulated
// services, metric publication, dependency analysis, resource-share
// optimization, and the per-layer control loops together.

#include <gtest/gtest.h>

#include "core/dependency_analyzer.h"
#include "core/flow_builder.h"
#include "core/monitor.h"
#include "core/resource_share.h"
#include "stats/correlation.h"

namespace flower::core {
namespace {

flow::FlowConfig BaseFlow() {
  flow::FlowConfig cfg;
  cfg.stream.initial_shards = 2;
  cfg.stream.max_shards = 64;
  cfg.initial_workers = 2;
  cfg.instance_type = {"test.vm", 2, 1.0e6, 0.10};
  cfg.worker_boot_delay_sec = 60.0;
  cfg.table.initial_wcu = 100.0;
  cfg.table.max_wcu = 5000.0;
  return cfg;
}

workload::ClickStreamConfig Wl() {
  workload::ClickStreamConfig cfg;
  cfg.num_users = 20000;
  cfg.num_urls = 200;
  return cfg;
}

TEST(EndToEndTest, ManagedFlowTracksDiurnalLoadOnAllLayers) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  // Diurnal load: 400 ± 300 rec/s over a compressed 2-hour "day".
  auto arrival = std::make_shared<workload::DiurnalArrival>(400.0, 300.0,
                                                            2.0 * kHour);
  auto mf = FlowBuilder()
                .WithFlowConfig(BaseFlow())
                .WithWorkload(arrival, Wl())
                .WithSeed(17)
                .Build(&sim, &metrics);
  ASSERT_TRUE(mf.ok());
  sim.RunUntil(4.0 * kHour);

  // 1) No layer's controller got stuck: every layer actuated.
  for (Layer layer :
       {Layer::kIngestion, Layer::kAnalytics, Layer::kStorage}) {
    auto state = mf->manager->GetState(layer);
    ASSERT_TRUE(state.ok()) << LayerToString(layer);
    EXPECT_GT((*state)->actuations.size(), 50u) << LayerToString(layer);
  }

  // 2) Analytics utilization stays in a sane band on average (the
  //    reference is 60%).
  auto analytics = mf->manager->GetState(Layer::kAnalytics);
  auto sensed = (*analytics)->sensed.Window(kHour, 4.0 * kHour);
  ASSERT_GT(sensed.size(), 10u);
  double sum = 0.0;
  for (const Sample& s : sensed.samples()) sum += s.value;
  double mean_cpu = sum / static_cast<double>(sensed.size());
  EXPECT_GT(mean_cpu, 30.0);
  EXPECT_LT(mean_cpu, 85.0);

  // 3) Data keeps flowing end to end: aggregates persisted, few drops.
  EXPECT_GT(mf->flow->table().ItemCount(), 100u);
  double drop_rate =
      static_cast<double>(mf->flow->generator()->total_dropped()) /
      static_cast<double>(mf->flow->generator()->total_generated());
  EXPECT_LT(drop_rate, 0.05);
}

TEST(EndToEndTest, ElasticityFollowsLoadUpAndDown) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  // Step load: low → high at t=1h → low again at t=2h.
  auto arrival = std::make_shared<workload::StepArrival>(
      std::vector<std::pair<SimTime, double>>{
          {0.0, 200.0}, {1.0 * kHour, 1200.0}, {2.0 * kHour, 200.0}});
  auto mf = FlowBuilder()
                .WithFlowConfig(BaseFlow())
                .WithWorkload(arrival, Wl())
                .WithSeed(23)
                .Build(&sim, &metrics);
  ASSERT_TRUE(mf.ok());

  sim.RunUntil(3.5 * kHour);

  // Compare time-averaged analytics actuations per phase: at low load
  // the loop limit-cycles around the quantization floor (worker counts
  // bounce between ~1 and ~10), so instantaneous worker counts are
  // phase-sensitive; the phase averages are not.
  auto state = mf->manager->GetState(Layer::kAnalytics);
  ASSERT_TRUE(state.ok());
  auto mean_u = [&](SimTime t0, SimTime t1) {
    TimeSeries w = (*state)->actuations.Window(t0, t1);
    EXPECT_GT(w.size(), 5u);
    double sum = 0.0;
    for (const Sample& s : w.samples()) sum += s.value;
    return sum / std::max<double>(1.0, static_cast<double>(w.size()));
  };
  double workers_low1 = mean_u(0.4 * kHour, 0.9 * kHour);
  double workers_high = mean_u(1.4 * kHour, 1.9 * kHour);
  double workers_low2 = mean_u(2.8 * kHour, 3.5 * kHour);

  EXPECT_GT(workers_high, 1.5 * workers_low1);  // Scaled out under load...
  EXPECT_LT(workers_low2, 0.7 * workers_high);  // ...and back in afterwards.
}

TEST(EndToEndTest, DependencyAnalysisFindsIngestionAnalyticsCoupling) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  flow::FlowConfig cfg = BaseFlow();
  cfg.stream.initial_shards = 8;  // Static, ample.
  cfg.initial_workers = 24;  // Below CPU saturation even at peak load.
  // Observation run (paper Fig. 2): elasticity off, workload varying.
  auto flow = flow::DataAnalyticsFlow::Create(&sim, &metrics, cfg)
                  .MoveValueOrDie();
  auto arrival = std::make_shared<workload::DiurnalArrival>(
      1500.0, 1200.0, 1.5 * kHour);
  ASSERT_TRUE(flow->AttachWorkload(arrival, Wl(), 31).ok());
  sim.RunUntil(3.0 * kHour);

  DependencyAnalyzer analyzer;
  LayerMetric in{Layer::kIngestion,
                 {"Flower/Kinesis", "IncomingRecords", "clickstream"}};
  LayerMetric cpu{Layer::kAnalytics,
                  {"Flower/Storm", "CpuUtilization", "storm"}};
  auto dep = analyzer.Analyze(metrics, in, cpu, 0.0, 3.0 * kHour);
  ASSERT_TRUE(dep.ok());
  EXPECT_TRUE(dep->significant);
  EXPECT_GT(dep->fit.correlation, 0.9);  // Paper reports 0.95.
  EXPECT_GT(dep->fit.slope, 0.0);
}

TEST(EndToEndTest, ShareBoundsFromOptimizerCapTheControllers) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  auto mf = FlowBuilder()
                .WithFlowConfig(BaseFlow())
                .WithWorkload(
                    std::make_shared<workload::ConstantArrival>(3000.0), Wl())
                .WithSeed(41)
                .Build(&sim, &metrics);
  ASSERT_TRUE(mf.ok());

  // Resource-share analysis (Eq. 3–5) on a tight budget.
  ResourceShareRequest req;
  req.hourly_budget_usd = 0.8;
  req.bounds[0] = {1.0, 40.0};
  req.bounds[1] = {1.0, 20.0};
  req.bounds[2] = {1.0, 400.0};
  ResourceShareAnalyzer analyzer;
  auto res = analyzer.AnalyzeExhaustive(req);
  ASSERT_TRUE(res.ok());
  auto max_shares = ResourceShareAnalyzer::MaxShares(*res);
  ASSERT_TRUE(max_shares.ok());
  for (int i = 0; i < kNumLayers; ++i) {
    ASSERT_TRUE(mf->manager
                    ->SetShareUpperBound(static_cast<Layer>(i),
                                         max_shares->shares[i])
                    .ok());
  }
  sim.RunUntil(2.0 * kHour);
  // The analytics layer is overloaded but must respect the share cap.
  EXPECT_LE(mf->flow->cluster().requested_worker_count(),
            static_cast<int>(max_shares->analytics()));
}

TEST(EndToEndTest, MonitorShowsAllThreePlatformsInOneView) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  auto mf = FlowBuilder()
                .WithFlowConfig(BaseFlow())
                .WithWorkload(
                    std::make_shared<workload::ConstantArrival>(400.0), Wl())
                .Build(&sim, &metrics);
  ASSERT_TRUE(mf.ok());
  sim.RunUntil(20.0 * 60.0);
  CrossPlatformMonitor monitor(&metrics);
  monitor.WatchNamespace("Flower/Kinesis");
  monitor.WatchNamespace("Flower/Storm");
  monitor.WatchNamespace("Flower/DynamoDB");
  EXPECT_GE(monitor.watched_count(), 15u);
  std::ostringstream os;
  monitor.RenderDashboard(os, 0.0, 20.0 * 60.0);
  std::string s = os.str();
  EXPECT_NE(s.find("Flower/Kinesis"), std::string::npos);
  EXPECT_NE(s.find("Flower/Storm"), std::string::npos);
  EXPECT_NE(s.find("Flower/DynamoDB"), std::string::npos);
}

TEST(EndToEndTest, DayLongSoakStaysHealthy) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  // 24 simulated hours of diurnal load with a nightly trough.
  auto arrival =
      std::make_shared<workload::DiurnalArrival>(300.0, 250.0, kDay);
  workload::ClickStreamConfig wl = Wl();
  auto mf = FlowBuilder()
                .WithFlowConfig(BaseFlow())
                .WithWorkload(arrival, wl)
                .WithSeed(2026)
                .Build(&sim, &metrics);
  ASSERT_TRUE(mf.ok());
  sim.RunUntil(kDay);

  // The flow is still live and healthy after a full day:
  // (1) bounded ingestion backlog (the pipeline keeps up);
  EXPECT_LT(mf->flow->stream().BacklogRecords(), 200000u);
  EXPECT_LT(mf->flow->stream().OldestRecordAgeSec(), 10.0 * kMinute);
  // (2) negligible data loss across the whole day;
  double drop_rate =
      static_cast<double>(mf->flow->generator()->total_dropped()) /
      std::max<double>(1.0, static_cast<double>(
                                mf->flow->generator()->total_generated()));
  EXPECT_LT(drop_rate, 0.02);
  // (3) the controllers kept working to the end (actuations in the
  //     final hour) with few failures;
  auto analytics = mf->manager->GetState(Layer::kAnalytics);
  ASSERT_TRUE(analytics.ok());
  EXPECT_FALSE(
      (*analytics)->actuations.Window(23.0 * kHour, kDay).empty());
  EXPECT_EQ((*analytics)->actuation_failures(), 0u);
  // (4) metric storage grows linearly with time, not with load: each
  //     service publishes a fixed set of series once per period.
  double periods = kDay / 60.0;
  EXPECT_LT(static_cast<double>(metrics.total_datapoints()),
            40.0 * periods);
}

TEST(EndToEndTest, FullPipelineIsDeterministic) {
  auto run = [] {
    sim::Simulation sim;
    cloudwatch::MetricStore metrics;
    auto mf = FlowBuilder()
                  .WithFlowConfig(BaseFlow())
                  .WithWorkload(
                      std::make_shared<workload::ConstantArrival>(600.0),
                      Wl())
                  .WithSeed(77)
                  .Build(&sim, &metrics);
    EXPECT_TRUE(mf.ok());
    sim.RunUntil(kHour);
    return std::make_tuple(mf->flow->generator()->total_generated(),
                           mf->flow->cluster().total_acked(),
                           mf->flow->cluster().worker_count(),
                           mf->flow->table().ItemCount());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace flower::core
