#include "stats/rolling.h"

#include <gtest/gtest.h>

#include <cmath>
#include <deque>

#include "common/random.h"

namespace flower::stats {
namespace {

// Two-pass reference: exact mean, then exact sum of squared deviations.
double TwoPassVariance(const std::deque<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double m2 = 0.0;
  for (double x : xs) m2 += (x - mean) * (x - mean);
  return m2 / static_cast<double>(xs.size() - 1);
}

TEST(EmaTest, FirstObservationInitializes) {
  Ema ema(0.5);
  EXPECT_FALSE(ema.initialized());
  EXPECT_DOUBLE_EQ(ema.Update(10.0), 10.0);
  EXPECT_TRUE(ema.initialized());
}

TEST(EmaTest, ConvergesToConstantInput) {
  Ema ema(0.3);
  ema.Update(0.0);
  double v = 0.0;
  for (int i = 0; i < 100; ++i) v = ema.Update(5.0);
  EXPECT_NEAR(v, 5.0, 1e-9);
}

TEST(EmaTest, AlphaOneTracksExactly) {
  Ema ema(1.0);
  ema.Update(1.0);
  EXPECT_DOUBLE_EQ(ema.Update(42.0), 42.0);
}

TEST(EmaTest, RecurrenceIsExact) {
  Ema ema(0.25);
  ema.Update(8.0);
  EXPECT_DOUBLE_EQ(ema.Update(4.0), 0.25 * 4.0 + 0.75 * 8.0);
}

TEST(EmaTest, ResetClearsState) {
  Ema ema(0.5);
  ema.Update(10.0);
  ema.Reset();
  EXPECT_FALSE(ema.initialized());
  EXPECT_DOUBLE_EQ(ema.Update(2.0), 2.0);
}

TEST(RollingWindowTest, MeanOverPartialAndFullWindow) {
  RollingWindow w(3);
  w.Add(3.0);
  EXPECT_DOUBLE_EQ(w.Mean(), 3.0);
  EXPECT_FALSE(w.full());
  w.Add(6.0);
  w.Add(9.0);
  EXPECT_TRUE(w.full());
  EXPECT_DOUBLE_EQ(w.Mean(), 6.0);
}

TEST(RollingWindowTest, EvictsOldest) {
  RollingWindow w(2);
  w.Add(1.0);
  w.Add(2.0);
  w.Add(10.0);  // Evicts 1.0.
  EXPECT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w.Mean(), 6.0);
  EXPECT_DOUBLE_EQ(w.Min(), 2.0);
  EXPECT_DOUBLE_EQ(w.Max(), 10.0);
  EXPECT_DOUBLE_EQ(w.Last(), 10.0);
}

TEST(RollingWindowTest, EmptyWindowIsZero) {
  RollingWindow w(4);
  EXPECT_EQ(w.size(), 0u);
  EXPECT_DOUBLE_EQ(w.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.Min(), 0.0);
  EXPECT_DOUBLE_EQ(w.Max(), 0.0);
}

TEST(RollingWindowTest, ClearResets) {
  RollingWindow w(3);
  w.Add(5.0);
  w.Clear();
  EXPECT_EQ(w.size(), 0u);
  w.Add(1.0);
  EXPECT_DOUBLE_EQ(w.Mean(), 1.0);
}

TEST(RollingWindowTest, LongStreamSumStaysAccurate) {
  RollingWindow w(10);
  for (int i = 0; i < 100000; ++i) w.Add(1.0);
  EXPECT_NEAR(w.Mean(), 1.0, 1e-9);
}

TEST(RollingWindowTest, VarianceOfSmallWindowIsExact) {
  RollingWindow w(5);
  for (double x : {2.0, 4.0, 4.0, 4.0, 6.0}) w.Add(x);
  // Sample variance of {2,4,4,4,6}: mean 4, m2 = 8, / 4 = 2.
  EXPECT_DOUBLE_EQ(w.Variance(), 2.0);
  EXPECT_DOUBLE_EQ(w.StdDev(), std::sqrt(2.0));
}

TEST(RollingWindowTest, VarianceIsZeroBelowTwoSamples) {
  RollingWindow w(4);
  EXPECT_DOUBLE_EQ(w.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.StdDev(), 0.0);
  w.Add(123.0);
  EXPECT_DOUBLE_EQ(w.Variance(), 0.0);
}

TEST(RollingWindowTest, VarianceSurvivesCatastrophicCancellation) {
  // Regression for the Welford rewrite: a DynamoDB-style counter near
  // 1e9 with unit jitter. The naive E[x²] − E[x]² update loses all 17
  // significant digits to cancellation and can go negative, turning the
  // stddev into NaN; Welford keeps the full relative precision.
  RollingWindow w(16);
  for (int i = 0; i < 200; ++i) {
    w.Add(1.0e9 + ((i % 2 == 0) ? 1.0 : -1.0));
  }
  // The full window alternates 1e9+1 / 1e9−1: mean 1e9, sample
  // variance 16/15.
  EXPECT_GE(w.Variance(), 0.0);
  EXPECT_NEAR(w.Variance(), 16.0 / 15.0, 1e-6);
  EXPECT_FALSE(std::isnan(w.StdDev()));
  EXPECT_NEAR(w.StdDev(), std::sqrt(16.0 / 15.0), 1e-6);
}

TEST(RollingWindowTest, SlidingVarianceMatchesTwoPassRecompute) {
  // Property check: after arbitrary add/evict sequences, the O(1)
  // Welford state must agree with an exact two-pass recompute of the
  // window contents.
  RollingWindow w(7);
  std::deque<double> shadow;
  Rng rng(2026);
  for (int i = 0; i < 500; ++i) {
    double x = rng.Uniform(-50.0, 50.0);
    w.Add(x);
    shadow.push_back(x);
    if (shadow.size() > 7) shadow.pop_front();
    ASSERT_NEAR(w.Variance(), TwoPassVariance(shadow), 1e-7) << "step " << i;
  }
}

TEST(RollingWindowTest, SlidingVarianceTracksRegimeChange) {
  // Once the noisy prefix is fully evicted, the window must see only
  // the constant regime and report (near-)zero variance.
  RollingWindow w(8);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) w.Add(rng.Uniform(0.0, 100.0));
  EXPECT_GT(w.Variance(), 1.0);
  for (int i = 0; i < 8; ++i) w.Add(42.0);
  EXPECT_NEAR(w.Variance(), 0.0, 1e-6);
  EXPECT_GE(w.Variance(), 0.0);
}

TEST(RollingWindowTest, ClearResetsVarianceState) {
  RollingWindow w(4);
  for (double x : {1.0, 100.0, 1.0, 100.0}) w.Add(x);
  EXPECT_GT(w.Variance(), 0.0);
  w.Clear();
  EXPECT_DOUBLE_EQ(w.Variance(), 0.0);
  for (double x : {5.0, 5.0, 5.0}) w.Add(x);
  EXPECT_DOUBLE_EQ(w.Variance(), 0.0);
}

}  // namespace
}  // namespace flower::stats
