#include "stats/rolling.h"

#include <gtest/gtest.h>

namespace flower::stats {
namespace {

TEST(EmaTest, FirstObservationInitializes) {
  Ema ema(0.5);
  EXPECT_FALSE(ema.initialized());
  EXPECT_DOUBLE_EQ(ema.Update(10.0), 10.0);
  EXPECT_TRUE(ema.initialized());
}

TEST(EmaTest, ConvergesToConstantInput) {
  Ema ema(0.3);
  ema.Update(0.0);
  double v = 0.0;
  for (int i = 0; i < 100; ++i) v = ema.Update(5.0);
  EXPECT_NEAR(v, 5.0, 1e-9);
}

TEST(EmaTest, AlphaOneTracksExactly) {
  Ema ema(1.0);
  ema.Update(1.0);
  EXPECT_DOUBLE_EQ(ema.Update(42.0), 42.0);
}

TEST(EmaTest, RecurrenceIsExact) {
  Ema ema(0.25);
  ema.Update(8.0);
  EXPECT_DOUBLE_EQ(ema.Update(4.0), 0.25 * 4.0 + 0.75 * 8.0);
}

TEST(EmaTest, ResetClearsState) {
  Ema ema(0.5);
  ema.Update(10.0);
  ema.Reset();
  EXPECT_FALSE(ema.initialized());
  EXPECT_DOUBLE_EQ(ema.Update(2.0), 2.0);
}

TEST(RollingWindowTest, MeanOverPartialAndFullWindow) {
  RollingWindow w(3);
  w.Add(3.0);
  EXPECT_DOUBLE_EQ(w.Mean(), 3.0);
  EXPECT_FALSE(w.full());
  w.Add(6.0);
  w.Add(9.0);
  EXPECT_TRUE(w.full());
  EXPECT_DOUBLE_EQ(w.Mean(), 6.0);
}

TEST(RollingWindowTest, EvictsOldest) {
  RollingWindow w(2);
  w.Add(1.0);
  w.Add(2.0);
  w.Add(10.0);  // Evicts 1.0.
  EXPECT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w.Mean(), 6.0);
  EXPECT_DOUBLE_EQ(w.Min(), 2.0);
  EXPECT_DOUBLE_EQ(w.Max(), 10.0);
  EXPECT_DOUBLE_EQ(w.Last(), 10.0);
}

TEST(RollingWindowTest, EmptyWindowIsZero) {
  RollingWindow w(4);
  EXPECT_EQ(w.size(), 0u);
  EXPECT_DOUBLE_EQ(w.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.Min(), 0.0);
  EXPECT_DOUBLE_EQ(w.Max(), 0.0);
}

TEST(RollingWindowTest, ClearResets) {
  RollingWindow w(3);
  w.Add(5.0);
  w.Clear();
  EXPECT_EQ(w.size(), 0u);
  w.Add(1.0);
  EXPECT_DOUBLE_EQ(w.Mean(), 1.0);
}

TEST(RollingWindowTest, LongStreamSumStaysAccurate) {
  RollingWindow w(10);
  for (int i = 0; i < 100000; ++i) w.Add(1.0);
  EXPECT_NEAR(w.Mean(), 1.0, 1e-9);
}

}  // namespace
}  // namespace flower::stats
