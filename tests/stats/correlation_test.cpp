#include "stats/correlation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace flower::stats {
namespace {

TEST(PearsonTest, PerfectPositiveAndNegative) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(*PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> ny{10, 8, 6, 4, 2};
  EXPECT_NEAR(*PearsonCorrelation(x, ny), -1.0, 1e-12);
}

TEST(PearsonTest, InvariantToAffineTransform) {
  Rng rng(5);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    double xi = rng.Uniform(0, 10);
    x.push_back(xi);
    y.push_back(3.0 * xi + rng.Normal(0, 1));
  }
  double r1 = *PearsonCorrelation(x, y);
  std::vector<double> x2;
  for (double xi : x) x2.push_back(100.0 - 7.0 * xi);  // Negative scale.
  double r2 = *PearsonCorrelation(x2, y);
  EXPECT_NEAR(r1, -r2, 1e-12);
}

TEST(PearsonTest, IndependentSeriesNearZero) {
  Rng rng(9);
  std::vector<double> x, y;
  for (int i = 0; i < 5000; ++i) {
    x.push_back(rng.Normal());
    y.push_back(rng.Normal());
  }
  EXPECT_LT(std::fabs(*PearsonCorrelation(x, y)), 0.05);
}

TEST(PearsonTest, Errors) {
  EXPECT_EQ(PearsonCorrelation({1, 2}, {1}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(PearsonCorrelation({1}, {1}).status().code(),
            StatusCode::kFailedPrecondition);
  // Zero variance.
  EXPECT_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SpearmanTest, MonotonicNonlinearIsOne) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{1, 8, 27, 64, 125};  // x^3: nonlinear, monotonic.
  EXPECT_NEAR(*SpearmanCorrelation(x, y), 1.0, 1e-12);
  // Pearson is < 1 on the same data.
  EXPECT_LT(*PearsonCorrelation(x, y), 1.0);
}

TEST(SpearmanTest, TiesGetAverageRanks) {
  std::vector<double> x{1, 2, 2, 3};
  std::vector<double> y{10, 20, 20, 30};
  EXPECT_NEAR(*SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(CrossCorrelationTest, DetectsKnownLag) {
  // y[t] = x[t - 3]: x predicts y at lag +3.
  Rng rng(21);
  std::vector<double> x;
  for (int i = 0; i < 300; ++i) x.push_back(rng.Normal());
  std::vector<double> y(x.size(), 0.0);
  for (size_t i = 3; i < x.size(); ++i) y[i] = x[i - 3];
  auto lc = CrossCorrelation(x, y, 10);
  ASSERT_TRUE(lc.ok());
  EXPECT_EQ(lc->best_lag, 3);
  EXPECT_GT(lc->best_r, 0.95);
  EXPECT_EQ(lc->r_by_lag.size(), 21u);
}

TEST(CrossCorrelationTest, ZeroLagForSynchronousSeries) {
  std::vector<double> x, y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(std::sin(i * 0.1));
    y.push_back(2.0 * std::sin(i * 0.1) + 1.0);
  }
  auto lc = CrossCorrelation(x, y, 5);
  ASSERT_TRUE(lc.ok());
  EXPECT_EQ(lc->best_lag, 0);
  EXPECT_NEAR(lc->best_r, 1.0, 1e-9);
}

TEST(CrossCorrelationTest, Errors) {
  EXPECT_FALSE(CrossCorrelation({1, 2}, {1}, 1).ok());
  EXPECT_FALSE(CrossCorrelation({1, 2, 3}, {1, 2, 3}, -1).ok());
  EXPECT_FALSE(CrossCorrelation({1, 2}, {3, 4}, 0).ok());
}

}  // namespace
}  // namespace flower::stats
