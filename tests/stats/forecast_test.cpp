#include "stats/forecast.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "common/units.h"

namespace flower::stats {
namespace {

TEST(NaiveForecasterTest, RepeatsLastValue) {
  NaiveForecaster f;
  EXPECT_FALSE(f.Forecast(60.0).ok());
  f.Observe(0.0, 5.0);
  f.Observe(60.0, 7.0);
  EXPECT_DOUBLE_EQ(*f.Forecast(60.0), 7.0);
  EXPECT_DOUBLE_EQ(*f.Forecast(3600.0), 7.0);
}

TEST(EmaForecasterTest, SmoothsTowardsRecentValues) {
  EmaForecaster f(0.5);
  EXPECT_FALSE(f.Forecast(60.0).ok());
  f.Observe(0.0, 0.0);
  f.Observe(60.0, 10.0);
  EXPECT_DOUBLE_EQ(*f.Forecast(60.0), 5.0);
  f.Observe(120.0, 10.0);
  EXPECT_DOUBLE_EQ(*f.Forecast(60.0), 7.5);
}

TEST(HoltForecasterTest, ExtrapolatesLinearTrend) {
  HoltForecaster f(0.8, 0.8);
  // Ramp: value = 2 * t / 60.
  for (int i = 0; i < 50; ++i) {
    f.Observe(60.0 * i, 2.0 * i);
  }
  // One step ahead should be close to 2 * 50 = 100.
  auto next = f.Forecast(60.0);
  ASSERT_TRUE(next.ok());
  EXPECT_NEAR(*next, 100.0, 2.0);
  // Five steps ahead ~108.
  EXPECT_NEAR(*f.Forecast(300.0), 108.0, 4.0);
}

TEST(HoltForecasterTest, NeedsTwoObservations) {
  HoltForecaster f(0.5, 0.5);
  f.Observe(0.0, 1.0);
  EXPECT_FALSE(f.Forecast(60.0).ok());
  f.Observe(60.0, 2.0);
  EXPECT_TRUE(f.Forecast(60.0).ok());
}

TEST(SeasonalNaiveForecasterTest, RepeatsLastSeason) {
  // Season of 4 samples at 60 s cadence.
  SeasonalNaiveForecaster f(240.0, 60.0);
  EXPECT_FALSE(f.Forecast(60.0).ok());  // Less than one season.
  double season[4] = {10.0, 20.0, 30.0, 40.0};
  for (int i = 0; i < 4; ++i) f.Observe(60.0 * i, season[i]);
  // Forecast h=60 (one slot ahead): one season ago that slot held 10...
  // history back = [10,20,30,40]; slot index 1 % 4 -> history_[1] = 20?
  // The contract: Forecast(h) returns the value observed season-h
  // before. Verify periodic consistency instead of a fixed slot:
  auto f1 = f.Forecast(60.0);
  auto f4 = f.Forecast(240.0 + 60.0);  // One full season later: same slot.
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f4.ok());
  EXPECT_DOUBLE_EQ(*f1, *f4);
}

TEST(SeasonalNaiveForecasterTest, TracksPeriodicSignalExactly) {
  const double period = kDay;
  const double step = kHour;
  SeasonalNaiveForecaster f(period, step);
  auto signal = [&](double t) {
    return 100.0 + 50.0 * std::sin(2.0 * M_PI * t / period);
  };
  // Feed two full seasons; afterwards every one-step forecast must be
  // exact because the signal is perfectly periodic.
  double t = 0.0;
  for (; t < 2.0 * period; t += step) f.Observe(t, signal(t));
  for (int i = 0; i < 24; ++i) {
    auto pred = f.Forecast(step);
    ASSERT_TRUE(pred.ok());
    EXPECT_NEAR(*pred, signal(t), 1e-9);
    f.Observe(t, signal(t));
    t += step;
  }
}

TEST(BacktestTest, SeasonalBeatsNaiveOnDiurnalSignal) {
  TimeSeries series("rate");
  Rng rng(3);
  const double step = 10.0 * kMinute;
  for (double t = 0.0; t < 5.0 * kDay; t += step) {
    double v = 1000.0 + 600.0 * std::sin(2.0 * M_PI * t / kDay) +
               rng.Normal(0.0, 20.0);
    series.AppendUnchecked(t, v);
  }
  NaiveForecaster naive;
  SeasonalNaiveForecaster seasonal(kDay, step);
  auto mae_naive = BacktestOneStepMae(&naive, series);
  auto mae_seasonal = BacktestOneStepMae(&seasonal, series);
  ASSERT_TRUE(mae_naive.ok());
  ASSERT_TRUE(mae_seasonal.ok());
  EXPECT_LT(*mae_seasonal, *mae_naive);
}

TEST(BacktestTest, HoltBeatsNaiveOnTrendingSignal) {
  TimeSeries series("rate");
  for (int i = 0; i < 200; ++i) {
    series.AppendUnchecked(60.0 * i, 100.0 + 5.0 * i);
  }
  NaiveForecaster naive;
  HoltForecaster holt(0.5, 0.3);
  auto mae_naive = BacktestOneStepMae(&naive, series);
  auto mae_holt = BacktestOneStepMae(&holt, series);
  ASSERT_TRUE(mae_naive.ok());
  ASSERT_TRUE(mae_holt.ok());
  EXPECT_LT(*mae_holt, *mae_naive);
}

TEST(BacktestTest, RejectsTinySeries) {
  TimeSeries series("x");
  series.AppendUnchecked(0.0, 1.0);
  series.AppendUnchecked(1.0, 2.0);
  NaiveForecaster naive;
  EXPECT_FALSE(BacktestOneStepMae(&naive, series).ok());
}

}  // namespace
}  // namespace flower::stats
