#include "stats/robust.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "stats/linreg.h"

namespace flower::stats {
namespace {

TEST(TheilSenTest, ExactLineRecovered) {
  std::vector<double> x{0, 1, 2, 3, 4, 5};
  std::vector<double> y;
  for (double xi : x) y.push_back(4.8 + 0.2 * xi);
  auto fit = FitTheilSen(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 0.2, 1e-12);
  EXPECT_NEAR(fit->intercept, 4.8, 1e-12);
  EXPECT_EQ(fit->pairs_used, 15u);
}

TEST(TheilSenTest, SurvivesGrossOutliersWhereOlsBreaks) {
  Rng rng(3);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    double xi = rng.Uniform(0, 100);
    x.push_back(xi);
    y.push_back(2.0 + 0.5 * xi + rng.Normal(0, 0.2));
  }
  // Corrupt 15% of the samples with monitoring glitches (zeros and
  // absurd spikes).
  for (int i = 0; i < 30; ++i) {
    y[static_cast<size_t>(i * 6)] = (i % 2 == 0) ? 0.0 : 5000.0;
  }
  auto robust = FitTheilSen(x, y);
  auto ols = FitSimple(x, y);
  ASSERT_TRUE(robust.ok());
  ASSERT_TRUE(ols.ok());
  EXPECT_NEAR(robust->slope, 0.5, 0.05);
  EXPECT_NEAR(robust->intercept, 2.0, 1.5);
  // OLS slope is dragged far off by the spikes.
  EXPECT_GT(std::fabs(ols->slope - 0.5), 0.5);
}

TEST(TheilSenTest, SubsamplingKicksInForLargeN) {
  Rng rng(7);
  std::vector<double> x, y;
  for (int i = 0; i < 3000; ++i) {
    double xi = rng.Uniform(0, 10);
    x.push_back(xi);
    y.push_back(1.0 + 3.0 * xi + rng.Normal(0, 0.1));
  }
  // 3000 choose 2 ≈ 4.5M pairs > 100k cap → subsample.
  auto fit = FitTheilSen(x, y, /*max_pairs=*/100000, /*seed=*/5);
  ASSERT_TRUE(fit.ok());
  EXPECT_LE(fit->pairs_used, 100000u);
  EXPECT_NEAR(fit->slope, 3.0, 0.05);
  EXPECT_NEAR(fit->intercept, 1.0, 0.3);
}

TEST(TheilSenTest, DeterministicForSeed) {
  Rng rng(9);
  std::vector<double> x, y;
  for (int i = 0; i < 2000; ++i) {
    double xi = rng.Uniform(0, 10);
    x.push_back(xi);
    y.push_back(xi + rng.Normal(0, 1));
  }
  auto a = FitTheilSen(x, y, 50000, 11);
  auto b = FitTheilSen(x, y, 50000, 11);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->slope, b->slope);
  EXPECT_DOUBLE_EQ(a->intercept, b->intercept);
}

TEST(TheilSenTest, Validation) {
  EXPECT_FALSE(FitTheilSen({1, 2}, {1}).ok());
  EXPECT_FALSE(FitTheilSen({1, 2}, {1, 2}).ok());
  EXPECT_EQ(FitTheilSen({3, 3, 3}, {1, 2, 3}).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace flower::stats
