#include "stats/linreg.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace flower::stats {
namespace {

TEST(FitSimpleTest, ExactLineRecovered) {
  std::vector<double> x{0, 1, 2, 3, 4};
  std::vector<double> y;
  for (double xi : x) y.push_back(4.8 + 0.0002 * xi);  // The paper's Eq. 2.
  auto fit = FitSimple(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 0.0002, 1e-12);
  EXPECT_NEAR(fit->intercept, 4.8, 1e-12);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-9);
  EXPECT_NEAR(fit->correlation, 1.0, 1e-9);
  EXPECT_NEAR(fit->Predict(10.0), 4.802, 1e-9);
}

TEST(FitSimpleTest, NoisyLineRecoveredApproximately) {
  Rng rng(3);
  std::vector<double> x, y;
  for (int i = 0; i < 2000; ++i) {
    double xi = rng.Uniform(0, 50000);
    x.push_back(xi);
    y.push_back(4.8 + 0.0002 * xi + rng.Normal(0, 0.5));
  }
  auto fit = FitSimple(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 0.0002, 2e-6);
  EXPECT_NEAR(fit->intercept, 4.8, 0.1);
  EXPECT_GT(fit->r_squared, 0.95);
  EXPECT_GT(fit->slope_t, 50.0);  // Hugely significant slope.
  EXPECT_NEAR(fit->residual_std, 0.5, 0.05);
}

TEST(FitSimpleTest, ZeroSlopeHasSmallTStatistic) {
  Rng rng(7);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    x.push_back(rng.Uniform(0, 100));
    y.push_back(rng.Normal(10, 1));  // Independent of x.
  }
  auto fit = FitSimple(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(std::fabs(fit->slope_t), 4.0);
  EXPECT_LT(fit->r_squared, 0.05);
}

TEST(FitSimpleTest, Errors) {
  EXPECT_EQ(FitSimple({1, 2}, {1}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FitSimple({1, 2}, {1, 2}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(FitSimple({3, 3, 3}, {1, 2, 3}).status().code(),
            StatusCode::kFailedPrecondition);  // Zero variance in x.
}

TEST(FitMultipleTest, ExactPlaneRecovered) {
  // y = 1 + 2*x1 - 3*x2.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    double x1 = rng.Uniform(-5, 5), x2 = rng.Uniform(-5, 5);
    rows.push_back({x1, x2});
    y.push_back(1.0 + 2.0 * x1 - 3.0 * x2);
  }
  auto fit = FitMultiple(rows, y);
  ASSERT_TRUE(fit.ok());
  ASSERT_EQ(fit->coefficients.size(), 3u);
  EXPECT_NEAR(fit->coefficients[0], 1.0, 1e-9);
  EXPECT_NEAR(fit->coefficients[1], 2.0, 1e-9);
  EXPECT_NEAR(fit->coefficients[2], -3.0, 1e-9);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-9);
  EXPECT_NEAR(fit->Predict({1.0, 1.0}), 0.0, 1e-9);
}

TEST(FitMultipleTest, MatchesSimpleFitWithOneRegressor) {
  Rng rng(13);
  std::vector<double> x, y;
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 100; ++i) {
    double xi = rng.Uniform(0, 10);
    x.push_back(xi);
    rows.push_back({xi});
    y.push_back(2.0 + 0.5 * xi + rng.Normal(0, 0.2));
  }
  auto simple = FitSimple(x, y);
  auto multiple = FitMultiple(rows, y);
  ASSERT_TRUE(simple.ok());
  ASSERT_TRUE(multiple.ok());
  EXPECT_NEAR(simple->intercept, multiple->coefficients[0], 1e-9);
  EXPECT_NEAR(simple->slope, multiple->coefficients[1], 1e-9);
  EXPECT_NEAR(simple->r_squared, multiple->r_squared, 1e-9);
}

TEST(FitMultipleTest, CollinearRegressorsRejected) {
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    double x = static_cast<double>(i);
    rows.push_back({x, 2.0 * x});  // Perfectly collinear.
    y.push_back(x);
  }
  EXPECT_EQ(FitMultiple(rows, y).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(FitMultipleTest, Errors) {
  EXPECT_FALSE(FitMultiple({{1.0}}, {1.0, 2.0}).ok());          // Size mismatch.
  EXPECT_FALSE(FitMultiple({}, {}).ok());                        // Empty.
  EXPECT_FALSE(FitMultiple({{1.0}, {1.0, 2.0}}, {1, 2}).ok());   // Ragged.
  EXPECT_FALSE(FitMultiple({{1.0}, {2.0}}, {1, 2}).ok());        // n <= p.
}

TEST(FitMultipleTest, AdjustedR2BelowR2WithNoise) {
  Rng rng(17);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 40; ++i) {
    double x1 = rng.Uniform(0, 1), x2 = rng.Uniform(0, 1);
    rows.push_back({x1, x2});
    y.push_back(x1 + rng.Normal(0, 0.3));
  }
  auto fit = FitMultiple(rows, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(fit->adjusted_r_squared, fit->r_squared);
}

}  // namespace
}  // namespace flower::stats
