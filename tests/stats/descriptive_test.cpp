#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>

namespace flower::stats {
namespace {

TEST(DescriptiveTest, SummarizeBasics) {
  Summary s = Summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.variance, 32.0 / 7.0, 1e-12);  // Unbiased.
  EXPECT_EQ(s.min, 2.0);
  EXPECT_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.sum, 40.0);
}

TEST(DescriptiveTest, SummarizeEmptyAndSingle) {
  Summary e = Summarize({});
  EXPECT_EQ(e.count, 0u);
  EXPECT_EQ(e.variance, 0.0);
  Summary one = Summarize({5.0});
  EXPECT_EQ(one.count, 1u);
  EXPECT_EQ(one.mean, 5.0);
  EXPECT_EQ(one.variance, 0.0);
  EXPECT_EQ(one.min, 5.0);
  EXPECT_EQ(one.max, 5.0);
}

TEST(DescriptiveTest, WelfordStableForLargeOffset) {
  // Naive two-pass sum-of-squares loses precision at offset 1e9.
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(1e9 + (i % 2));
  Summary s = Summarize(xs);
  EXPECT_NEAR(s.variance, 0.25025, 1e-3);
}

TEST(DescriptiveTest, PercentileInterpolates) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(*Percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(*Percentile(xs, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(*Percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(*Percentile(xs, 25.0), 2.0);
  EXPECT_DOUBLE_EQ(*Percentile(xs, 62.5), 3.5);
}

TEST(DescriptiveTest, PercentileUnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(*Percentile({5, 1, 3, 2, 4}, 50.0), 3.0);
}

TEST(DescriptiveTest, PercentileErrors) {
  EXPECT_EQ(Percentile({}, 50.0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Percentile({1.0}, -1.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Percentile({1.0}, 101.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_DOUBLE_EQ(*Percentile({7.0}, 99.0), 7.0);
}

TEST(DescriptiveTest, RmseAndMae) {
  std::vector<double> a{1, 2, 3}, b{1, 4, 3};
  EXPECT_NEAR(*Rmse(a, b), std::sqrt(4.0 / 3.0), 1e-12);
  EXPECT_NEAR(*MeanAbsoluteError(a, b), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(*Rmse(a, a), 0.0);
}

TEST(DescriptiveTest, RmseErrors) {
  EXPECT_FALSE(Rmse({1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(Rmse({}, {}).ok());
  EXPECT_FALSE(MeanAbsoluteError({1.0}, {}).ok());
}

}  // namespace
}  // namespace flower::stats
