#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fleet/budget_mailbox.h"
#include "fleet/fleet_manager.h"
#include "obs/span.h"

namespace flower::fleet {
namespace {

/// Small fleet tuned for test speed: coarse ticks, short periods.
FleetConfig SweepTestConfig(size_t num_threads,
                            FleetConfig::SweepMode mode) {
  FleetConfig c;
  c.sweep_mode = mode;
  c.fleet_budget_usd_per_hour = 2.0;  // Tight: forces contention.
  c.arbitration_period_sec = 300.0;
  c.num_threads = num_threads;
  c.partition.workload_emit_period_sec = 10.0;
  c.partition.storm_tick_period_sec = 10.0;
  c.partition.horizon_sec = 3600.0;
  c.arbiter_solver.population_size = 16;
  c.arbiter_solver.generations = 8;
  c.partition.flow_solver.population_size = 8;
  c.partition.flow_solver.generations = 4;
  return c;
}

std::unique_ptr<FleetManager> MakeHomogeneousFleet(
    size_t tenants, size_t num_threads, FleetConfig::SweepMode mode) {
  auto fleet =
      std::make_unique<FleetManager>(SweepTestConfig(num_threads, mode));
  for (TenantConfig& t : MakeTenantFleet(tenants, /*seed=*/7)) {
    t.monitoring_period_sec = 60.0;
    EXPECT_TRUE(fleet->AddTenant(std::move(t)).ok());
  }
  EXPECT_TRUE(fleet->Start().ok());
  return fleet;
}

/// Three tenants on co-prime-ish horizons (30/45/60 s): boundaries
/// coincide only at common multiples (90, 120, 180, ...), which is
/// exactly the partial-overlap regime the event engine must order
/// deterministically.
std::unique_ptr<FleetManager> MakeHeterogeneousFleet(size_t num_threads) {
  auto fleet = std::make_unique<FleetManager>(
      SweepTestConfig(num_threads, FleetConfig::SweepMode::kWorkStealing));
  const double periods[3] = {30.0, 45.0, 60.0};
  std::vector<TenantConfig> tenants = MakeTenantFleet(3, /*seed=*/11);
  for (size_t i = 0; i < tenants.size(); ++i) {
    tenants[i].monitoring_period_sec = 30.0;
    tenants[i].arbitration_period_sec = periods[i];
    EXPECT_TRUE(fleet->AddTenant(std::move(tenants[i])).ok());
  }
  EXPECT_TRUE(fleet->Start().ok());
  return fleet;
}

TEST(WorkStealSweepTest, HomogeneousDigestMatchesLockStepByteForByte) {
  // The acceptance bar of the sweep rewrite: for a homogeneous fleet the
  // work-stealing engine must reproduce the legacy barrier sweep's
  // merged digest exactly — same windows, same grants, same partition
  // decision logs, same bytes.
  std::unique_ptr<FleetManager> lockstep = MakeHomogeneousFleet(
      5, 1, FleetConfig::SweepMode::kLockStep);
  std::unique_ptr<FleetManager> ws1 = MakeHomogeneousFleet(
      5, 1, FleetConfig::SweepMode::kWorkStealing);
  std::unique_ptr<FleetManager> ws4 = MakeHomogeneousFleet(
      5, 4, FleetConfig::SweepMode::kWorkStealing);
  ASSERT_TRUE(lockstep->RunFor(900.0).ok());
  ASSERT_TRUE(ws1->RunFor(900.0).ok());
  ASSERT_TRUE(ws4->RunFor(900.0).ok());
  std::string reference = lockstep->ControlDigest();
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(ws1->ControlDigest(), reference);
  EXPECT_EQ(ws4->ControlDigest(), reference);
  // Merged reports agree structurally too.
  ASSERT_EQ(ws1->reports().size(), lockstep->reports().size());
  for (size_t i = 0; i < lockstep->reports().size(); ++i) {
    const FleetPeriodReport& a = lockstep->reports()[i];
    const FleetPeriodReport& b = ws1->reports()[i];
    EXPECT_DOUBLE_EQ(a.start, b.start);
    EXPECT_DOUBLE_EQ(a.end, b.end);
    EXPECT_EQ(a.total_granted_usd, b.total_granted_usd);
    ASSERT_EQ(a.tenants.size(), b.tenants.size());
    for (size_t j = 0; j < a.tenants.size(); ++j) {
      EXPECT_EQ(a.tenants[j].tenant, b.tenants[j].tenant);
      EXPECT_EQ(a.tenants[j].grant_usd, b.tenants[j].grant_usd);
      EXPECT_EQ(a.tenants[j].steps, b.tenants[j].steps);
    }
  }
}

TEST(WorkStealSweepTest, HeterogeneousDigestIdenticalAcrossThreadCounts) {
  std::string digests[3];
  const size_t thread_counts[3] = {1, 4, 16};
  for (int i = 0; i < 3; ++i) {
    std::unique_ptr<FleetManager> fleet =
        MakeHeterogeneousFleet(thread_counts[i]);
    ASSERT_TRUE(fleet->RunFor(360.0).ok());
    digests[i] = fleet->ControlDigest();
    EXPECT_EQ(fleet->sweep_stats().conservation_violations, 0u)
        << thread_counts[i] << " threads";
    EXPECT_DOUBLE_EQ(fleet->Now(), 360.0);
  }
  ASSERT_FALSE(digests[0].empty());
  EXPECT_EQ(digests[0], digests[1]);  // 1 vs 4 threads.
  EXPECT_EQ(digests[0], digests[2]);  // ... and 16.
}

TEST(WorkStealSweepTest, HeterogeneousWindowsConserveBudgetAtEveryInstant) {
  std::unique_ptr<FleetManager> fleet = MakeHeterogeneousFleet(4);
  ASSERT_TRUE(fleet->RunFor(360.0).ok());
  const std::vector<FleetPeriodReport>& reports = fleet->reports();
  ASSERT_FALSE(reports.empty());
  for (const FleetPeriodReport& r : reports) {
    EXPECT_TRUE(r.conservation_ok)
        << "window [" << r.start << ", " << r.end << ")";
    EXPECT_LT(r.start, r.end);
  }
  // Stronger: reconstruct per-tenant grant intervals and check that the
  // *simultaneously active* grants never exceed the fleet budget, at
  // every window-open instant. This is the overlapping-window invariant
  // the per-window flag alone cannot see.
  struct Interval {
    double start, end, grant;
    std::string tenant;
  };
  std::vector<Interval> intervals;
  std::set<double> instants;
  for (const FleetPeriodReport& r : reports) {
    instants.insert(r.start);
    for (const TenantPeriodOutcome& row : r.tenants) {
      intervals.push_back({r.start, r.end, row.grant_usd, row.tenant});
    }
  }
  for (double t : instants) {
    double active = 0.0;
    for (const Interval& iv : intervals) {
      if (iv.start <= t && t < iv.end) active += iv.grant;
    }
    EXPECT_LE(active, 2.0 * (1.0 + 1e-9) + 1e-12) << "at t=" << t;
  }
  // Each tenant's own windows tile [0, 360) without gaps or overlaps.
  for (size_t i = 0; i < fleet->num_tenants(); ++i) {
    const std::string& id = fleet->partition(i)->tenant().id;
    std::vector<Interval> own;
    for (const Interval& iv : intervals) {
      if (iv.tenant == id) own.push_back(iv);
    }
    std::sort(own.begin(), own.end(),
              [](const Interval& a, const Interval& b) {
                return a.start < b.start;
              });
    ASSERT_FALSE(own.empty());
    EXPECT_DOUBLE_EQ(own.front().start, 0.0);
    EXPECT_DOUBLE_EQ(own.back().end, 360.0);
    for (size_t k = 1; k < own.size(); ++k) {
      EXPECT_DOUBLE_EQ(own[k].start, own[k - 1].end) << "tenant " << id;
    }
  }
}

TEST(WorkStealSweepTest, RepeatedRunForMatchesOneShotDigest) {
  // Two 300 s sweeps arbitrate at t=0 and t=300 — exactly the
  // boundaries one 600 s sweep hits — so the decision stream must be
  // byte-identical however the horizon is sliced.
  std::unique_ptr<FleetManager> split = MakeHomogeneousFleet(
      4, 2, FleetConfig::SweepMode::kWorkStealing);
  std::unique_ptr<FleetManager> whole = MakeHomogeneousFleet(
      4, 2, FleetConfig::SweepMode::kWorkStealing);
  ASSERT_TRUE(split->RunFor(300.0).ok());
  ASSERT_TRUE(split->RunFor(300.0).ok());
  ASSERT_TRUE(whole->RunFor(600.0).ok());
  EXPECT_EQ(split->ControlDigest(), whole->ControlDigest());
  EXPECT_EQ(split->reports().size(), whole->reports().size());
}

TEST(WorkStealSweepTest, SweepStatsDescribeScheduleNotResults) {
  std::unique_ptr<FleetManager> fleet = MakeHeterogeneousFleet(4);
  ASSERT_TRUE(fleet->RunFor(360.0).ok());
  FleetSweepStats stats = fleet->sweep_stats();
  // Every boundary event ran: 30 s lattice has 12 boundaries in
  // [0, 360), 45 s adds 45/135/225/315, 60 s adds none new.
  EXPECT_EQ(stats.arbitration_events, 16u);
  EXPECT_GT(stats.tasks_executed, 0u);
  EXPECT_EQ(stats.conservation_violations, 0u);
  EXPECT_GT(stats.busy_sec, 0.0);
  EXPECT_GT(stats.wall_sec, 0.0);
  EXPECT_GT(stats.overlap_ratio(), 0.0);
}

TEST(WorkStealSweepTest, ReportsCapacityIsReservedOnce) {
  // The sweep sizes reports_ up front; steady-state appends must not
  // reallocate (the perf_micro guard asserts the same on the hot path).
  std::unique_ptr<FleetManager> fleet = MakeHomogeneousFleet(
      3, 1, FleetConfig::SweepMode::kWorkStealing);
  ASSERT_TRUE(fleet->RunFor(900.0).ok());
  EXPECT_EQ(fleet->reports().capacity(), fleet->reports().size());
  size_t after_first = fleet->reports().size();
  ASSERT_TRUE(fleet->RunFor(900.0).ok());
  EXPECT_GT(fleet->reports().size(), after_first);
  EXPECT_EQ(fleet->reports().capacity(), fleet->reports().size());
}

TEST(WorkStealSweepTest, LockStepRejectsHeterogeneousTenants) {
  FleetManager fleet(
      SweepTestConfig(1, FleetConfig::SweepMode::kLockStep));
  std::vector<TenantConfig> tenants = MakeTenantFleet(2, 3);
  tenants[1].arbitration_period_sec = 150.0;  // != fleet 300 s.
  for (TenantConfig& t : tenants) {
    ASSERT_TRUE(fleet.AddTenant(std::move(t)).ok());
  }
  Status s = fleet.Start();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(WorkStealSweepTest, InvalidArbitrationPeriodRejectedAtAddTenant) {
  FleetManager fleet(
      SweepTestConfig(1, FleetConfig::SweepMode::kWorkStealing));
  TenantConfig t;
  t.id = "bad";
  t.arbitration_period_sec = -30.0;
  EXPECT_FALSE(fleet.AddTenant(t).ok());
}

TEST(WorkStealSweepTest, ArbitrationSpansLiveInFleetNamespace) {
  FleetConfig config =
      SweepTestConfig(2, FleetConfig::SweepMode::kWorkStealing);
  config.partition.record_spans = true;
  FleetManager fleet(config);
  const double periods[3] = {100.0, 150.0, 300.0};
  std::vector<TenantConfig> tenants = MakeTenantFleet(3, 7);
  for (size_t i = 0; i < tenants.size(); ++i) {
    tenants[i].monitoring_period_sec = 60.0;
    tenants[i].arbitration_period_sec = periods[i];
    ASSERT_TRUE(fleet.AddTenant(std::move(tenants[i])).ok());
  }
  ASSERT_TRUE(fleet.Start().ok());
  ASSERT_TRUE(fleet.RunFor(300.0).ok());
  obs::SpanCollector* spans = fleet.arbitration_spans();
  ASSERT_NE(spans, nullptr);
  // One kArbitrate span per event, ids in the namespace right above the
  // last partition's (deterministic: events serialize in virtual-time
  // order).
  EXPECT_EQ(spans->id_offset(), 3 * obs::SpanCollector::kIdStride);
  EXPECT_EQ(spans->total_started(), fleet.sweep_stats().arbitration_events);
  for (obs::SpanId id = spans->first_retained();
       id != 0 && id < spans->end_id(); ++id) {
    const obs::SpanRecord* r = spans->Find(id);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->kind, obs::SpanKind::kArbitrate);
    EXPECT_GE(r->value, 0.0);  // Total USD granted at the boundary.
  }
}

TEST(WorkStealSweepTest, ApplyPeriodJitterIsDeterministicDivisorSpread) {
  std::vector<TenantConfig> a = MakeTenantFleet(16, 5);
  std::vector<TenantConfig> b = MakeTenantFleet(16, 5);
  ApplyPeriodJitter(&a, 900.0, 13);
  ApplyPeriodJitter(&b, 900.0, 13);
  std::set<double> distinct;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arbitration_period_sec, b[i].arbitration_period_sec);
    double p = a[i].arbitration_period_sec;
    EXPECT_TRUE(p == 900.0 || p == 450.0 || p == 300.0 || p == 225.0)
        << "tenant " << i << " period " << p;
    distinct.insert(p);
  }
  // 16 tenants over 4 divisors: a genuinely mixed fleet.
  EXPECT_GT(distinct.size(), 1u);
}

TEST(BudgetMailboxTest, SequencePairsDemandsWithGrants) {
  BudgetMailbox box;
  EXPECT_EQ(box.demand_seq(), 0u);
  EXPECT_EQ(box.grant_seq(), 0u);

  BudgetMailbox::Demand d;
  d.boundary = 300.0;
  d.demand_usd = 1.5;
  d.spend_usd = 0.25;
  d.steps = 7;
  box.PostDemand(d);
  EXPECT_EQ(box.demand_seq(), 1u);
  EXPECT_DOUBLE_EQ(box.demand().demand_usd, 1.5);
  EXPECT_EQ(box.demand().steps, 7u);

  // The grant for seq 1 has not been posted: the partition must park.
  BudgetMailbox::Grant out;
  EXPECT_FALSE(box.TryReceiveGrant(1, &out));

  BudgetMailbox::Grant g;
  g.boundary = 300.0;
  g.demand_usd = 1.5;
  g.grant_usd = 0.75;
  box.PostGrant(g);
  EXPECT_EQ(box.grant_seq(), 1u);
  ASSERT_TRUE(box.TryReceiveGrant(1, &out));
  EXPECT_DOUBLE_EQ(out.grant_usd, 0.75);
  EXPECT_DOUBLE_EQ(out.boundary, 300.0);

  // A stale consumer asking for the *next* boundary's grant is told to
  // wait rather than handed the old payload.
  EXPECT_FALSE(box.TryReceiveGrant(2, &out));
}

TEST(BudgetMailboxTest, WaitCounterIsScheduleNoiseOnly) {
  BudgetMailbox box;
  EXPECT_EQ(box.waits(), 0u);
  box.RecordWait();
  box.RecordWait();
  EXPECT_EQ(box.waits(), 2u);
}

}  // namespace
}  // namespace flower::fleet
