#include "fleet/budget_arbiter.h"

#include <gtest/gtest.h>

#include <numeric>

namespace flower::fleet {
namespace {

ArbiterConfig SmallConfig(double budget) {
  ArbiterConfig c;
  c.fleet_budget_usd_per_hour = budget;
  c.starvation_floor_frac = 0.05;
  c.solver.population_size = 24;
  c.solver.generations = 12;
  return c;
}

TEST(BudgetArbiterTest, UncontendedDemandGrantedOutright) {
  BudgetArbiter arbiter(SmallConfig(100.0));
  std::vector<double> demands = {10.0, 20.0, 0.0, 30.0};
  std::vector<double> weights = {1.0, 1.0, 1.0, 1.0};
  BudgetSplit split = arbiter.Arbitrate(demands, weights).ValueOrDie();
  EXPECT_TRUE(split.uncontended);
  EXPECT_TRUE(split.conserved);
  EXPECT_EQ(split.grants_usd, demands);
  EXPECT_DOUBLE_EQ(split.total_granted_usd, 60.0);
}

TEST(BudgetArbiterTest, ConservationUnderContention) {
  // Demand is 3x the budget; every grant vector the arbiter can return
  // must still sum within it.
  BudgetArbiter arbiter(SmallConfig(50.0));
  std::vector<double> demands = {60.0, 40.0, 30.0, 20.0};
  std::vector<double> weights = {1.0, 2.0, 0.5, 1.0};
  BudgetSplit split = arbiter.Arbitrate(demands, weights).ValueOrDie();
  EXPECT_FALSE(split.uncontended);
  EXPECT_TRUE(split.conserved);
  double sum =
      std::accumulate(split.grants_usd.begin(), split.grants_usd.end(), 0.0);
  EXPECT_LE(sum, 50.0 * (1.0 + 1e-9));
  EXPECT_DOUBLE_EQ(sum, split.total_granted_usd);
  // No tenant is granted more than it asked for.
  for (size_t i = 0; i < demands.size(); ++i) {
    EXPECT_LE(split.grants_usd[i], demands[i] + 1e-12) << "tenant " << i;
  }
}

TEST(BudgetArbiterTest, StarvationFloorHolds) {
  // A tiny-weight tenant competing against heavyweights must still get
  // its floor: floor_frac * min(demand, budget / n_active).
  ArbiterConfig config = SmallConfig(40.0);
  BudgetArbiter arbiter(config);
  std::vector<double> demands = {100.0, 100.0, 100.0, 8.0};
  std::vector<double> weights = {10.0, 10.0, 10.0, 0.01};
  BudgetSplit split = arbiter.Arbitrate(demands, weights).ValueOrDie();
  EXPECT_TRUE(split.conserved);
  double floor = config.starvation_floor_frac * std::min(8.0, 40.0 / 4.0);
  EXPECT_GE(split.grants_usd[3], floor - 1e-12);
  // Every demanding tenant gets strictly more than zero.
  for (size_t i = 0; i < demands.size(); ++i) {
    EXPECT_GT(split.grants_usd[i], 0.0) << "tenant " << i;
  }
}

TEST(BudgetArbiterTest, ZeroDemandTenantsGetNothing) {
  BudgetArbiter arbiter(SmallConfig(10.0));
  std::vector<double> demands = {30.0, 0.0, 20.0};
  std::vector<double> weights = {1.0, 1.0, 1.0};
  BudgetSplit split = arbiter.Arbitrate(demands, weights).ValueOrDie();
  EXPECT_DOUBLE_EQ(split.grants_usd[1], 0.0);
  EXPECT_TRUE(split.conserved);
}

TEST(BudgetArbiterTest, AllIdleFleetGrantsAllZeros) {
  BudgetArbiter arbiter(SmallConfig(10.0));
  std::vector<double> zeros(5, 0.0);
  std::vector<double> weights(5, 1.0);
  BudgetSplit split = arbiter.Arbitrate(zeros, weights).ValueOrDie();
  EXPECT_TRUE(split.uncontended);
  EXPECT_EQ(split.grants_usd, zeros);
}

TEST(BudgetArbiterTest, SplitsDeterministicAcrossThreadCounts) {
  std::vector<double> demands = {55.0, 35.0, 25.0, 45.0, 15.0, 65.0};
  std::vector<double> weights = {1.0, 1.5, 0.7, 2.0, 1.0, 0.5};
  std::vector<std::vector<double>> runs;
  for (size_t threads : {1u, 4u, 16u}) {
    ArbiterConfig config = SmallConfig(80.0);
    config.solver.num_threads = threads;
    BudgetArbiter arbiter(config);
    BudgetSplit split = arbiter.Arbitrate(demands, weights).ValueOrDie();
    EXPECT_TRUE(split.conserved);
    runs.push_back(split.grants_usd);
  }
  // Bit-identical grants, not approximately equal: the solver is
  // thread-count-invariant and the final pick is deterministic.
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(BudgetArbiterTest, RepeatedArbitrationIsStable) {
  // Same inputs, same arbiter, back-to-back calls: identical splits
  // (arbitration holds no hidden cross-call state).
  BudgetArbiter arbiter(SmallConfig(30.0));
  std::vector<double> demands = {25.0, 35.0, 15.0};
  std::vector<double> weights = {1.0, 1.0, 1.0};
  BudgetSplit a = arbiter.Arbitrate(demands, weights).ValueOrDie();
  BudgetSplit b = arbiter.Arbitrate(demands, weights).ValueOrDie();
  EXPECT_EQ(a.grants_usd, b.grants_usd);
}

TEST(BudgetArbiterTest, RejectsMalformedInput) {
  BudgetArbiter arbiter(SmallConfig(10.0));
  EXPECT_FALSE(arbiter.Arbitrate({1.0, 2.0}, {1.0}).ok());
  EXPECT_FALSE(arbiter.Arbitrate({-1.0}, {1.0}).ok());
  EXPECT_FALSE(arbiter.Arbitrate({1.0}, {-1.0}).ok());
}

TEST(FleetBudgetProblemTest, DecodeConservesForEveryGenome) {
  ArbiterConfig config = SmallConfig(20.0);
  std::vector<double> demands = {30.0, 10.0, 25.0};
  std::vector<double> weights = {3.0, 1.0, 2.0};
  FleetBudgetProblem problem(config, demands, weights);
  for (const std::vector<double>& x :
       {std::vector<double>{0.0, 0.0, 0.0}, std::vector<double>{1.0, 1.0, 1.0},
        std::vector<double>{1.0, 0.0, 0.5}, std::vector<double>{0.2, 0.9, 0.4}}) {
    std::vector<double> grants = problem.Decode(x);
    double sum = std::accumulate(grants.begin(), grants.end(), 0.0);
    EXPECT_LE(sum, 20.0 + 1e-9);
    for (size_t i = 0; i < grants.size(); ++i) {
      EXPECT_LE(grants[i], demands[i] + 1e-12);
      EXPECT_GT(grants[i], 0.0);  // Floor: all three have demand.
    }
  }
}

}  // namespace
}  // namespace flower::fleet
