#include "fleet/fleet_manager.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace flower::fleet {
namespace {

/// Small fleet tuned for test speed: coarse ticks, short periods.
FleetConfig TestConfig(size_t num_threads) {
  FleetConfig c;
  c.fleet_budget_usd_per_hour = 2.0;  // Tight: forces contention.
  c.arbitration_period_sec = 300.0;
  c.num_threads = num_threads;
  c.partition.workload_emit_period_sec = 10.0;
  c.partition.storm_tick_period_sec = 10.0;
  c.partition.horizon_sec = 3600.0;
  c.arbiter_solver.population_size = 16;
  c.arbiter_solver.generations = 8;
  c.partition.flow_solver.population_size = 8;
  c.partition.flow_solver.generations = 4;
  return c;
}

std::unique_ptr<FleetManager> MakeStartedFleet(size_t tenants,
                                               size_t num_threads) {
  auto fleet = std::make_unique<FleetManager>(TestConfig(num_threads));
  for (TenantConfig& t : MakeTenantFleet(tenants, /*seed=*/7)) {
    // Short monitoring period so a 300 s test period sees steps.
    t.monitoring_period_sec = 60.0;
    EXPECT_TRUE(fleet->AddTenant(std::move(t)).ok());
  }
  EXPECT_TRUE(fleet->Start().ok());
  return fleet;
}

TEST(FleetManagerTest, LifecycleErrors) {
  FleetManager fleet(TestConfig(1));
  EXPECT_FALSE(fleet.Start().ok());  // No tenants.
  TenantConfig t;
  t.id = "dup";
  ASSERT_TRUE(fleet.AddTenant(t).ok());
  EXPECT_FALSE(fleet.AddTenant(t).ok());  // Duplicate id.
  t.id = "other";
  ASSERT_TRUE(fleet.AddTenant(t).ok());
  ASSERT_TRUE(fleet.Start().ok());
  EXPECT_FALSE(fleet.Start().ok());              // Double start.
  EXPECT_FALSE(fleet.AddTenant(t).ok());         // Add after start.
  EXPECT_FALSE(fleet.RunFor(-1.0).ok());         // Negative horizon.
  FleetManager unstarted(TestConfig(1));
  EXPECT_FALSE(unstarted.RunFor(10.0).ok());     // Run before start.
}

TEST(FleetManagerTest, PeriodsReportAndConserveBudget) {
  std::unique_ptr<FleetManager> fleet = MakeStartedFleet(4, 1);
  ASSERT_TRUE(fleet->RunFor(600.0).ok());
  ASSERT_EQ(fleet->reports().size(), 2u);
  for (const FleetPeriodReport& report : fleet->reports()) {
    EXPECT_TRUE(report.conservation_ok);
    ASSERT_EQ(report.tenants.size(), 4u);
    double sum = 0.0;
    for (const TenantPeriodOutcome& row : report.tenants) {
      EXPECT_GE(row.grant_usd, 0.0);
      EXPECT_LE(row.grant_usd, row.demand_usd + 1e-9);
      sum += row.grant_usd;
    }
    EXPECT_LE(sum, 2.0 * (1.0 + 1e-9));
    EXPECT_NEAR(sum, report.total_granted_usd, 1e-9);
  }
  EXPECT_DOUBLE_EQ(fleet->Now(), 600.0);
  // Controllers actually stepped during the run.
  uint64_t total_steps = 0;
  for (const TenantPeriodOutcome& row : fleet->reports()[1].tenants) {
    total_steps += row.steps;
  }
  EXPECT_GT(total_steps, 0u);
}

TEST(FleetManagerTest, MergedControlIdenticalAcrossThreadCounts) {
  std::unique_ptr<FleetManager> fleet1 = MakeStartedFleet(6, 1);
  std::unique_ptr<FleetManager> fleet4 = MakeStartedFleet(6, 4);
  ASSERT_TRUE(fleet1->RunFor(600.0).ok());
  ASSERT_TRUE(fleet4->RunFor(600.0).ok());
  std::string d1 = fleet1->ControlDigest();
  std::string d4 = fleet4->ControlDigest();
  EXPECT_FALSE(d1.empty());
  EXPECT_EQ(d1, d4);  // Byte-identical merged control decisions.
}

TEST(FleetManagerTest, RollupKeepsTenantsDistinct) {
  // Two tenants run identical topologies with identical layer names;
  // the fleet rollup must still report them as separate series.
  std::unique_ptr<FleetManager> fleet = MakeStartedFleet(2, 1);
  ASSERT_TRUE(fleet->RunFor(300.0).ok());
  obs::MetricsSnapshot snap = fleet->registry().AggregateSnapshot();
  size_t grant_series = 0;
  for (const obs::CounterSample& c : snap.counters) {
    if (c.name == "fleet.steps") ++grant_series;
  }
  size_t gauge_series = 0;
  for (const obs::GaugeSample& g : snap.gauges) {
    if (g.name == "fleet.grant_usd") ++gauge_series;
  }
  EXPECT_EQ(grant_series, 2u) << "tenant step counters merged";
  EXPECT_EQ(gauge_series, 2u) << "tenant grant gauges merged";
}

TEST(FleetManagerTest, PerFlowPlannerCountersAreTenantScoped) {
  // The managers share nothing, but their planner.* series must carry
  // the tenant label so any cross-flow aggregation stays per-tenant.
  std::unique_ptr<FleetManager> fleet = MakeStartedFleet(2, 1);
  ASSERT_TRUE(fleet->RunFor(300.0).ok());
  for (size_t i = 0; i < 2; ++i) {
    obs::MetricsSnapshot snap =
        fleet->partition(i)->telemetry().metrics().Snapshot();
    bool found = false;
    for (const obs::CounterSample& c : snap.counters) {
      if (c.name.rfind("planner.", 0) != 0) continue;
      for (const auto& [key, value] : c.labels) {
        if (key == "tenant" &&
            value == fleet->partition(i)->tenant().id) {
          found = true;
        }
      }
    }
    EXPECT_TRUE(found) << "partition " << i;
  }
}

TEST(FleetManagerTest, SpanNamespacesAreDisjointAndDeterministic) {
  FleetConfig config = TestConfig(1);
  config.partition.record_spans = true;
  FleetManager fleet(config);
  for (TenantConfig& t : MakeTenantFleet(3, /*seed=*/7)) {
    t.monitoring_period_sec = 60.0;
    ASSERT_TRUE(fleet.AddTenant(std::move(t)).ok());
  }
  ASSERT_TRUE(fleet.Start().ok());
  ASSERT_TRUE(fleet.RunFor(300.0).ok());
  for (size_t i = 0; i < 3; ++i) {
    const obs::SpanCollector& spans = fleet.partition(i)->telemetry().spans();
    EXPECT_EQ(spans.id_offset(),
              static_cast<obs::SpanId>(i) * obs::SpanCollector::kIdStride);
    EXPECT_GT(spans.total_started(), 0u) << "partition " << i;
    // Every retained id lives inside this partition's namespace.
    for (obs::SpanId id = spans.first_retained();
         id != 0 && id < spans.end_id(); ++id) {
      const obs::SpanRecord* r = spans.Find(id);
      if (r == nullptr) continue;
      EXPECT_GT(r->id, spans.id_offset());
      EXPECT_LE(r->id, spans.id_offset() + obs::SpanCollector::kIdStride);
    }
  }
}

}  // namespace
}  // namespace flower::fleet
