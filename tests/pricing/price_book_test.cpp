#include "pricing/price_book.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace flower::pricing {
namespace {

TEST(PriceBookTest, DefaultsArePositiveAndOrdered) {
  PriceBook book;
  double shard = book.HourlyPrice(ResourceKind::kKinesisShard);
  double vm = book.HourlyPrice(ResourceKind::kEc2Instance);
  double wcu = book.HourlyPrice(ResourceKind::kDynamoWcu);
  double rcu = book.HourlyPrice(ResourceKind::kDynamoRcu);
  EXPECT_GT(shard, 0.0);
  EXPECT_GT(vm, shard);   // A VM costs more than a shard.
  EXPECT_GT(shard, wcu);  // A shard costs more than one WCU.
  EXPECT_GT(wcu, rcu);    // Writes cost more than reads.
}

TEST(PriceBookTest, OverridePrice) {
  PriceBook book;
  book.SetHourlyPrice(ResourceKind::kEc2Instance, 0.25);
  EXPECT_DOUBLE_EQ(book.HourlyPrice(ResourceKind::kEc2Instance), 0.25);
}

TEST(PriceBookTest, CostScalesWithUnitsAndTime) {
  PriceBook book;
  book.SetHourlyPrice(ResourceKind::kEc2Instance, 0.10);
  // 4 instances for 30 minutes = 4 * 0.5 h * 0.10.
  EXPECT_NEAR(book.Cost(ResourceKind::kEc2Instance, 4, 1800.0), 0.20, 1e-12);
  EXPECT_DOUBLE_EQ(book.Cost(ResourceKind::kEc2Instance, 0, 3600.0), 0.0);
}

TEST(ResourceKindToStringTest, AllKinds) {
  EXPECT_EQ(ResourceKindToString(ResourceKind::kKinesisShard),
            "kinesis-shard");
  EXPECT_EQ(ResourceKindToString(ResourceKind::kEc2Instance),
            "ec2-instance");
  EXPECT_EQ(ResourceKindToString(ResourceKind::kDynamoWcu), "dynamodb-wcu");
  EXPECT_EQ(ResourceKindToString(ResourceKind::kDynamoRcu), "dynamodb-rcu");
}

TEST(CostAccumulatorTest, IntegratesStepChanges) {
  PriceBook book;
  book.SetHourlyPrice(ResourceKind::kKinesisShard, 1.0);  // $1/shard-hour.
  CostAccumulator acc(&book, ResourceKind::kKinesisShard);
  ASSERT_TRUE(acc.SetQuantity(0.0, 2.0).ok());
  ASSERT_TRUE(acc.SetQuantity(kHour, 4.0).ok());  // 2 shard-hours accrued.
  EXPECT_NEAR(acc.CostUpTo(kHour), 2.0, 1e-12);
  // One more hour at 4 shards.
  EXPECT_NEAR(acc.CostUpTo(2 * kHour), 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.current_quantity(), 4.0);
}

TEST(CostAccumulatorTest, CostBeforeAnyQuantityIsZero) {
  PriceBook book;
  CostAccumulator acc(&book, ResourceKind::kEc2Instance);
  EXPECT_DOUBLE_EQ(acc.CostUpTo(1000.0), 0.0);
}

TEST(CostAccumulatorTest, RejectsInvalidUpdates) {
  PriceBook book;
  CostAccumulator acc(&book, ResourceKind::kEc2Instance);
  EXPECT_FALSE(acc.SetQuantity(0.0, -1.0).ok());
  ASSERT_TRUE(acc.SetQuantity(100.0, 1.0).ok());
  EXPECT_FALSE(acc.SetQuantity(50.0, 2.0).ok());  // Time backwards.
}

}  // namespace
}  // namespace flower::pricing
