#include "control/stability.h"

#include <gtest/gtest.h>

#include <cmath>

namespace flower::control {
namespace {

TEST(StabilityTest, BoundShrinksWithDelay) {
  auto g0 = MaxStableIntegralGain(5.0, 0);
  auto g1 = MaxStableIntegralGain(5.0, 1);
  auto g3 = MaxStableIntegralGain(5.0, 3);
  ASSERT_TRUE(g0.ok());
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g3.ok());
  EXPECT_DOUBLE_EQ(*g0, 0.2);
  EXPECT_DOUBLE_EQ(*g1, 0.1);
  EXPECT_DOUBLE_EQ(*g3, 0.05);
}

TEST(StabilityTest, BoundShrinksWithSensitivity) {
  EXPECT_GT(*MaxStableIntegralGain(1.0), *MaxStableIntegralGain(10.0));
}

TEST(StabilityTest, InvalidInputsRejected) {
  EXPECT_FALSE(MaxStableIntegralGain(0.0).ok());
  EXPECT_FALSE(MaxStableIntegralGain(-1.0).ok());
  EXPECT_FALSE(MaxStableIntegralGain(1.0, -1).ok());
  EXPECT_FALSE(UtilizationPlantSensitivity(0.0, 5.0).ok());
  EXPECT_FALSE(UtilizationPlantSensitivity(60.0, 0.0).ok());
}

TEST(StabilityTest, UtilizationPlantSensitivityIsYOverU) {
  auto b = UtilizationPlantSensitivity(60.0, 12.0);
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(*b, 5.0);
}

TEST(StabilityTest, IsGainStablePredicate) {
  EXPECT_TRUE(IsGainStable(0.1, 5.0, 0));   // Bound is 0.2.
  EXPECT_TRUE(IsGainStable(0.2, 5.0, 0));
  EXPECT_FALSE(IsGainStable(0.3, 5.0, 0));
  EXPECT_FALSE(IsGainStable(0.15, 5.0, 1)); // Bound drops to 0.1.
  EXPECT_FALSE(IsGainStable(0.0, 5.0, 0));
  EXPECT_FALSE(IsGainStable(0.1, -1.0, 0));
}

// Empirical check: a gain at the conservative bound converges on the
// undelayed utilization plant; a gain far above the hard limit (2/|b|)
// diverges into oscillation.
TEST(StabilityTest, BoundSeparatesConvergenceFromOscillation) {
  auto run = [](double gain) {
    // Plant: y = 600/u (|b| = y/u ≈ 6 at y=60, u=10).
    double u = 8.0;
    double prev_err = 0.0;
    int sign_flips = 0;
    for (int k = 0; k < 200; ++k) {
      double y = std::min(100.0, 600.0 / u);
      double err = y - 60.0;
      if (k > 150 && err * prev_err < 0.0) ++sign_flips;
      prev_err = err;
      u = std::max(1.0, u + gain * err);
    }
    return sign_flips;
  };
  auto b = UtilizationPlantSensitivity(60.0, 10.0);
  ASSERT_TRUE(b.ok());
  auto safe = MaxStableIntegralGain(*b);
  ASSERT_TRUE(safe.ok());
  EXPECT_LE(run(*safe), 1);          // Converged: no late oscillation.
  EXPECT_GE(run(6.0 * *safe), 10);   // Far past 2/|b|: limit cycles.
}

}  // namespace
}  // namespace flower::control
