#include "control/adaptive_gain.h"

#include <gtest/gtest.h>

#include <cmath>

namespace flower::control {
namespace {

AdaptiveGainConfig BaseConfig() {
  AdaptiveGainConfig cfg;
  cfg.reference = 60.0;
  cfg.initial_gain = 0.05;
  cfg.gain_min = 0.01;
  cfg.gain_max = 0.5;
  cfg.gamma = 0.01;
  cfg.limits.min = 1.0;
  cfg.limits.max = 100.0;
  cfg.limits.integer = false;  // Continuous for exact arithmetic checks.
  return cfg;
}

TEST(AdaptiveGainTest, ImplementsEq6AndEq7Exactly) {
  AdaptiveGainController c(BaseConfig());
  c.Reset(10.0);
  // Step 1: y = 80, error = 20. Eq. 7: l = 0.05 + 0.01*20 = 0.25.
  // Eq. 6: u = 10 + 0.25*20 = 15.
  auto u1 = c.Update(0.0, 80.0);
  ASSERT_TRUE(u1.ok());
  EXPECT_NEAR(c.gain(), 0.25, 1e-12);
  EXPECT_NEAR(*u1, 15.0, 1e-12);
  // Step 2: y = 70, error = 10. l = 0.25 + 0.1 = 0.35. u = 15 + 3.5.
  auto u2 = c.Update(60.0, 70.0);
  ASSERT_TRUE(u2.ok());
  EXPECT_NEAR(c.gain(), 0.35, 1e-12);
  EXPECT_NEAR(*u2, 18.5, 1e-12);
}

TEST(AdaptiveGainTest, GainClampedToBounds) {
  AdaptiveGainConfig cfg = BaseConfig();
  AdaptiveGainController c(cfg);
  c.Reset(10.0);
  // Huge persistent error drives the gain to gain_max, not beyond.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(c.Update(i * 60.0, 100.0).ok());
  }
  EXPECT_DOUBLE_EQ(c.gain(), cfg.gain_max);
  // Now persistent negative error drives it down to gain_min.
  for (int i = 20; i < 200; ++i) {
    ASSERT_TRUE(c.Update(i * 60.0, 0.0).ok());
  }
  EXPECT_DOUBLE_EQ(c.gain(), cfg.gain_min);
}

TEST(AdaptiveGainTest, GainGrowsUnderPersistentError) {
  AdaptiveGainController c(BaseConfig());
  c.Reset(10.0);
  ASSERT_TRUE(c.Update(0.0, 80.0).ok());
  double g1 = c.gain();
  ASSERT_TRUE(c.Update(60.0, 80.0).ok());
  double g2 = c.gain();
  EXPECT_GT(g2, g1);  // Memory: the same error compounds the gain.
}

TEST(AdaptiveGainTest, NoMemoryAblationResetsGain) {
  AdaptiveGainConfig cfg = BaseConfig();
  cfg.reset_gain_each_step = true;
  AdaptiveGainController c(cfg);
  c.Reset(10.0);
  ASSERT_TRUE(c.Update(0.0, 80.0).ok());
  double g1 = c.gain();
  ASSERT_TRUE(c.Update(60.0, 80.0).ok());
  EXPECT_DOUBLE_EQ(c.gain(), g1);  // Same error, same (reset) gain.
  EXPECT_EQ(c.name(), "adaptive-gain(no-memory)");
}

TEST(AdaptiveGainTest, ActuatorClampedToLimits) {
  AdaptiveGainConfig cfg = BaseConfig();
  cfg.limits.max = 12.0;
  AdaptiveGainController c(cfg);
  c.Reset(10.0);
  ASSERT_TRUE(c.Update(0.0, 100.0).ok());
  EXPECT_LE(c.current_u(), 12.0);
  cfg = BaseConfig();
  cfg.limits.min = 8.0;
  AdaptiveGainController c2(cfg);
  c2.Reset(10.0);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(c2.Update(i * 60.0, 0.0).ok());
  EXPECT_GE(c2.current_u(), 8.0);
}

TEST(AdaptiveGainTest, IntegerLimitsRoundOutput) {
  AdaptiveGainConfig cfg = BaseConfig();
  cfg.limits.integer = true;
  AdaptiveGainController c(cfg);
  c.Reset(10.0);
  auto u = c.Update(0.0, 72.0);  // 10 + l*12, fractional.
  ASSERT_TRUE(u.ok());
  EXPECT_DOUBLE_EQ(*u, std::round(*u));
}

TEST(AdaptiveGainTest, AtReferenceHoldsSteady) {
  AdaptiveGainController c(BaseConfig());
  c.Reset(10.0);
  for (int i = 0; i < 5; ++i) {
    auto u = c.Update(i * 60.0, 60.0);
    ASSERT_TRUE(u.ok());
    EXPECT_DOUBLE_EQ(*u, 10.0);
  }
}

TEST(AdaptiveGainTest, TimeMovingBackwardsRejected) {
  AdaptiveGainController c(BaseConfig());
  c.Reset(10.0);
  ASSERT_TRUE(c.Update(100.0, 60.0).ok());
  EXPECT_FALSE(c.Update(50.0, 60.0).ok());
}

TEST(AdaptiveGainTest, ResetRestoresInitialState) {
  AdaptiveGainController c(BaseConfig());
  c.Reset(10.0);
  ASSERT_TRUE(c.Update(0.0, 100.0).ok());
  c.Reset(20.0);
  EXPECT_DOUBLE_EQ(c.current_u(), 20.0);
  EXPECT_DOUBLE_EQ(c.gain(), BaseConfig().initial_gain);
}

TEST(AdaptiveGainTest, SetReferenceChangesTarget) {
  AdaptiveGainController c(BaseConfig());
  c.Reset(10.0);
  c.set_reference(40.0);
  EXPECT_DOUBLE_EQ(c.reference(), 40.0);
  auto u = c.Update(0.0, 40.0);
  ASSERT_TRUE(u.ok());
  EXPECT_DOUBLE_EQ(*u, 10.0);  // No error at the new reference.
}

// Regression: a repeated timestamp must not double-apply Eq. 6–7 (the
// old `now < last_time_` guard let a duplicate tick through).
TEST(AdaptiveGainTest, DuplicateTimestampIsIdempotentNoOp) {
  AdaptiveGainController c(BaseConfig());
  c.Reset(10.0);
  ASSERT_TRUE(c.Update(0.0, 80.0).ok());
  auto dup = c.Update(0.0, 80.0);  // Same instant, repeated.
  ASSERT_TRUE(dup.ok());
  EXPECT_NEAR(*dup, 15.0, 1e-12);      // Unchanged output...
  EXPECT_NEAR(c.gain(), 0.25, 1e-12);  // ...and unchanged gain state.
  // The next real step behaves exactly as if no duplicate happened.
  auto u2 = c.Update(60.0, 70.0);
  ASSERT_TRUE(u2.ok());
  EXPECT_NEAR(c.gain(), 0.35, 1e-12);
  EXPECT_NEAR(*u2, 18.5, 1e-12);
  // Time moving backwards is still rejected.
  EXPECT_FALSE(c.Update(30.0, 70.0).ok());
}

}  // namespace
}  // namespace flower::control
