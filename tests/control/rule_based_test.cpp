#include "control/rule_based.h"

#include <gtest/gtest.h>

namespace flower::control {
namespace {

RuleBasedConfig BaseConfig() {
  RuleBasedConfig cfg;
  cfg.high_threshold = 75.0;
  cfg.low_threshold = 35.0;
  cfg.breach_periods = 2;
  cfg.up_step = 2.0;
  cfg.down_step = 1.0;
  cfg.up_cooldown = 120.0;
  cfg.down_cooldown = 300.0;
  cfg.limits.min = 1.0;
  cfg.limits.max = 100.0;
  cfg.limits.integer = true;
  return cfg;
}

TEST(RuleBasedTest, RequiresConsecutiveBreaches) {
  RuleBasedController c(BaseConfig());
  c.Reset(10.0);
  auto u1 = c.Update(0.0, 90.0);  // First breach: no action yet.
  ASSERT_TRUE(u1.ok());
  EXPECT_DOUBLE_EQ(*u1, 10.0);
  auto u2 = c.Update(60.0, 90.0);  // Second consecutive: scale up.
  ASSERT_TRUE(u2.ok());
  EXPECT_DOUBLE_EQ(*u2, 12.0);
}

TEST(RuleBasedTest, BreachStreakResetByNormalSample) {
  RuleBasedController c(BaseConfig());
  c.Reset(10.0);
  ASSERT_TRUE(c.Update(0.0, 90.0).ok());
  ASSERT_TRUE(c.Update(60.0, 50.0).ok());   // In band: resets streak.
  auto u = c.Update(120.0, 90.0);           // Breach #1 again.
  ASSERT_TRUE(u.ok());
  EXPECT_DOUBLE_EQ(*u, 10.0);  // Still no action.
}

TEST(RuleBasedTest, UpCooldownBlocksRapidScaling) {
  RuleBasedController c(BaseConfig());
  c.Reset(10.0);
  ASSERT_TRUE(c.Update(0.0, 90.0).ok());
  ASSERT_TRUE(c.Update(60.0, 90.0).ok());  // Scales to 12 at t=60.
  // Two more breaches inside the 120 s cooldown: no action.
  ASSERT_TRUE(c.Update(120.0, 95.0).ok());
  auto u = c.Update(150.0, 95.0);
  ASSERT_TRUE(u.ok());
  EXPECT_DOUBLE_EQ(*u, 12.0);
  // After the cooldown expires, the next streak acts.
  ASSERT_TRUE(c.Update(200.0, 95.0).ok());
  auto u2 = c.Update(260.0, 95.0);
  ASSERT_TRUE(u2.ok());
  EXPECT_DOUBLE_EQ(*u2, 14.0);
}

TEST(RuleBasedTest, ScaleDownUsesDownStepAndCooldown) {
  RuleBasedConfig cfg = BaseConfig();
  RuleBasedController c(cfg);
  c.Reset(10.0);
  ASSERT_TRUE(c.Update(0.0, 10.0).ok());
  auto u = c.Update(60.0, 10.0);
  ASSERT_TRUE(u.ok());
  EXPECT_DOUBLE_EQ(*u, 9.0);  // down_step = 1.
  // Down cooldown (300 s) blocks the next decrease.
  ASSERT_TRUE(c.Update(120.0, 10.0).ok());
  auto u2 = c.Update(180.0, 10.0);
  ASSERT_TRUE(u2.ok());
  EXPECT_DOUBLE_EQ(*u2, 9.0);
}

TEST(RuleBasedTest, HoldsInsideBand) {
  RuleBasedController c(BaseConfig());
  c.Reset(10.0);
  for (int i = 0; i < 10; ++i) {
    auto u = c.Update(i * 60.0, 55.0);
    ASSERT_TRUE(u.ok());
    EXPECT_DOUBLE_EQ(*u, 10.0);
  }
}

TEST(RuleBasedTest, RespectsLimits) {
  RuleBasedConfig cfg = BaseConfig();
  cfg.limits.max = 11.0;
  cfg.up_cooldown = 0.0;
  RuleBasedController c(cfg);
  c.Reset(10.0);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(c.Update(i * 60.0, 95.0).ok());
  EXPECT_DOUBLE_EQ(c.current_u(), 11.0);
}

TEST(RuleBasedTest, ReferenceIsBandMidpoint) {
  RuleBasedController c(BaseConfig());
  EXPECT_DOUBLE_EQ(c.reference(), 55.0);
  c.set_reference(65.0);
  EXPECT_DOUBLE_EQ(c.reference(), 65.0);
}

TEST(RuleBasedTest, TimeMovingBackwardsRejected) {
  RuleBasedController c(BaseConfig());
  c.Reset(10.0);
  ASSERT_TRUE(c.Update(60.0, 50.0).ok());
  EXPECT_FALSE(c.Update(30.0, 50.0).ok());
}

// Regression: a repeated timestamp must be an idempotent no-op — it
// must not double-count threshold breaches (twin-trajectory check).
TEST(RuleBasedTest, DuplicateTimestampIsIdempotentNoOp) {
  RuleBasedController a(BaseConfig());
  RuleBasedController b(BaseConfig());
  a.Reset(4.0);
  b.Reset(4.0);
  const double ys[] = {90.0, 90.0, 90.0, 20.0, 20.0, 20.0};
  for (int k = 0; k < 6; ++k) {
    double t = 60.0 * k;
    auto ua = a.Update(t, ys[k]);
    auto dup = a.Update(t, ys[k]);  // Duplicate tick on `a` only.
    auto ub = b.Update(t, ys[k]);
    ASSERT_TRUE(ua.ok() && dup.ok() && ub.ok());
    EXPECT_DOUBLE_EQ(*ua, *ub);
    EXPECT_DOUBLE_EQ(*dup, *ub);
  }
}

}  // namespace
}  // namespace flower::control
