#include "control/metrics.h"

#include <gtest/gtest.h>

namespace flower::control {
namespace {

TimeSeries Series(std::initializer_list<Sample> samples) {
  TimeSeries ts;
  for (const Sample& s : samples) ts.AppendUnchecked(s.time, s.value);
  return ts;
}

TEST(EvaluateControlTest, ViolationFractions) {
  // Reference 60, tolerance 10: in-band is [50, 70].
  TimeSeries y = Series({{0, 60}, {60, 75}, {120, 40}, {180, 65}});
  TimeSeries u = Series({{0, 5}});
  auto q = EvaluateControl(y, u, 60.0, 10.0, 240.0);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->samples, 4u);
  EXPECT_DOUBLE_EQ(q->violation_fraction, 0.5);   // 75 and 40.
  EXPECT_DOUBLE_EQ(q->overload_fraction, 0.25);   // Only 75.
  EXPECT_DOUBLE_EQ(q->mean_abs_error, (0 + 15 + 20 + 5) / 4.0);
}

TEST(EvaluateControlTest, ResourceSecondsIntegratesStepFunction) {
  TimeSeries y = Series({{0, 60}});
  TimeSeries u = Series({{0, 10}, {100, 20}});
  auto q = EvaluateControl(y, u, 60.0, 5.0, 200.0);
  ASSERT_TRUE(q.ok());
  // 10 units for 100 s + 20 units for 100 s.
  EXPECT_DOUBLE_EQ(q->resource_seconds, 1000.0 + 2000.0);
  EXPECT_DOUBLE_EQ(q->mean_resource, 15.0);
  EXPECT_EQ(q->actuation_changes, 1u);
}

TEST(EvaluateControlTest, CountsOnlyRealChanges) {
  TimeSeries y = Series({{0, 60}});
  TimeSeries u = Series({{0, 10}, {60, 10}, {120, 12}, {180, 12}, {240, 10}});
  auto q = EvaluateControl(y, u, 60.0, 5.0, 300.0);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->actuation_changes, 2u);
}

TEST(EvaluateControlTest, HorizonTruncates) {
  TimeSeries y = Series({{0, 100}, {100, 100}, {1000, 100}});
  TimeSeries u = Series({{0, 1}});
  auto q = EvaluateControl(y, u, 60.0, 5.0, 500.0);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->samples, 2u);  // Sample at t=1000 excluded.
}

TEST(EvaluateControlTest, Errors) {
  TimeSeries y = Series({{0, 60}});
  TimeSeries u = Series({{0, 1}});
  EXPECT_FALSE(EvaluateControl(y, u, 60.0, -1.0, 100.0).ok());
  TimeSeries empty;
  EXPECT_FALSE(EvaluateControl(empty, u, 60.0, 1.0, 100.0).ok());
  EXPECT_FALSE(EvaluateControl(y, u, 60.0, 1.0, -5.0).ok());  // No samples.
}

TEST(SettlingTimeTest, FindsFirstStableEntry) {
  // Step at t=100; y oscillates then settles at t=220.
  TimeSeries y = Series({{100, 90}, {160, 75}, {220, 62}, {280, 58},
                         {340, 61}, {400, 60}});
  auto st = SettlingTime(y, 100.0, 60.0, 5.0, 150.0);
  ASSERT_TRUE(st.ok());
  EXPECT_DOUBLE_EQ(*st, 120.0);  // 220 - 100.
}

TEST(SettlingTimeTest, TransientReentryNotCounted) {
  // Enters the band at 160 but leaves again at 220 → settles at 280.
  TimeSeries y = Series({{100, 90}, {160, 62}, {220, 80}, {280, 60},
                         {340, 59}, {400, 61}});
  auto st = SettlingTime(y, 100.0, 60.0, 5.0, 100.0);
  ASSERT_TRUE(st.ok());
  EXPECT_DOUBLE_EQ(*st, 180.0);
}

TEST(SettlingTimeTest, NeverSettlesIsNotFound) {
  TimeSeries y = Series({{0, 90}, {60, 95}, {120, 90}});
  EXPECT_EQ(SettlingTime(y, 0.0, 60.0, 5.0, 60.0).status().code(),
            StatusCode::kNotFound);
}

TEST(SettlingTimeTest, EmptySeriesFails) {
  TimeSeries empty;
  EXPECT_FALSE(SettlingTime(empty, 0.0, 60.0, 5.0, 60.0).ok());
}

TEST(SettlingTimeTest, NegativeToleranceIsInvalidArgument) {
  TimeSeries y = Series({{0, 60}, {60, 60}});
  EXPECT_EQ(SettlingTime(y, 0.0, 60.0, -1.0, 60.0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SettlingTimeTest, NegativeHoldIsInvalidArgument) {
  TimeSeries y = Series({{0, 60}, {60, 60}});
  EXPECT_EQ(SettlingTime(y, 0.0, 60.0, 5.0, -60.0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SettlingTimeTest, SettlesExactlyAtHoldBoundary) {
  // The window [t, t + hold] is inclusive at the far edge: the sample
  // sitting exactly `hold` seconds after the candidate must also be in
  // band for the candidate to count.
  TimeSeries y = Series({{100, 62}, {160, 61}, {200, 80}, {260, 60},
                         {320, 59}, {360, 61}});
  // Candidate t=100: window [100, 200] includes the out-of-band sample
  // at exactly t=200, so it is rejected; t=260 settles.
  auto st = SettlingTime(y, 100.0, 60.0, 5.0, 100.0);
  ASSERT_TRUE(st.ok());
  EXPECT_DOUBLE_EQ(*st, 160.0);  // 260 - 100.
}

TEST(EvaluateControlTest, EmptyActuationSeriesYieldsZeroResource) {
  TimeSeries y = Series({{0, 60}, {60, 65}});
  TimeSeries no_acts;
  auto q = EvaluateControl(y, no_acts, 60.0, 10.0, 120.0);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->samples, 2u);
  EXPECT_DOUBLE_EQ(q->resource_seconds, 0.0);
  EXPECT_DOUBLE_EQ(q->mean_resource, 0.0);
  EXPECT_EQ(q->actuation_changes, 0u);
}

TEST(EvaluateControlTest, HorizonBeforeFirstSampleFails) {
  TimeSeries y = Series({{100, 60}, {160, 65}});
  TimeSeries u = Series({{100, 5}});
  EXPECT_EQ(EvaluateControl(y, u, 60.0, 10.0, 50.0).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace flower::control
