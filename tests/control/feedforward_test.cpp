#include "control/feedforward.h"

#include <gtest/gtest.h>

#include <cmath>

namespace flower::control {
namespace {

FeedforwardConfig BaseConfig() {
  FeedforwardConfig cfg;
  cfg.reference = 60.0;
  cfg.trim_gain = 0.05;
  cfg.limits.min = 1.0;
  cfg.limits.max = 1000.0;
  cfg.limits.integer = false;
  return cfg;
}

// Linear plant: demand W = 5 * x (in %·units); y = W / u, clipped.
struct Plant {
  double x = 100.0;
  double Utilization(double u) const {
    return std::min(100.0, 5.0 * x / std::max(u, 1e-9));
  }
};

TEST(FeedforwardTest, LearnsWorkloadModelAndTracks) {
  Plant plant;
  FeedforwardController c(BaseConfig(),
                          [&](SimTime) -> Result<double> { return plant.x; });
  c.Reset(5.0);
  double u = 5.0;
  for (int k = 0; k < 40; ++k) {
    plant.x = 100.0 + 10.0 * (k % 5);  // Mild excitation.
    double y = plant.Utilization(u);
    auto next = c.Update(60.0 * k, y);
    ASSERT_TRUE(next.ok());
    u = *next;
  }
  // Model: W = y*u = 5x -> slope ~5, intercept ~0.
  EXPECT_NEAR(c.model_slope(), 5.0, 0.5);
  EXPECT_NEAR(c.model_intercept(), 0.0, 20.0);
  // Tracking: u* = 5x/60.
  double y_final = plant.Utilization(u);
  EXPECT_NEAR(y_final, 60.0, 8.0);
  EXPECT_EQ(c.driver_misses(), 0u);
}

TEST(FeedforwardTest, ReactsToSurgeBeforeFeedbackCould) {
  Plant plant;
  FeedforwardController c(BaseConfig(),
                          [&](SimTime) -> Result<double> { return plant.x; });
  c.Reset(10.0);
  double u = 10.0;
  for (int k = 0; k < 20; ++k) {
    plant.x = 100.0 + 5.0 * (k % 4);
    auto next = c.Update(60.0 * k, plant.Utilization(u));
    ASSERT_TRUE(next.ok());
    u = *next;
  }
  // Surge: driver jumps 10x. The next single update must provision for
  // it (the measurement alone, clipped at 100, could only justify
  // u * 100/60 = 1.67x).
  plant.x = 1000.0;
  auto next = c.Update(60.0 * 21, plant.Utilization(u));
  ASSERT_TRUE(next.ok());
  double expected = 5.0 * 1000.0 / 60.0;  // ~83 units.
  EXPECT_GT(*next, 0.7 * expected);
  double y_after = plant.Utilization(*next);
  EXPECT_LT(y_after, 90.0);  // Far from saturation after one step.
}

TEST(FeedforwardTest, SaturatedSamplesDoNotCorruptModel) {
  Plant plant;
  FeedforwardController c(BaseConfig(),
                          [&](SimTime) -> Result<double> { return plant.x; });
  c.Reset(5.0);
  double u = 5.0;
  int k = 0;
  // Warm up with clean samples.
  for (; k < 20; ++k) {
    plant.x = 80.0 + 10.0 * (k % 3);
    auto next = c.Update(60.0 * k, plant.Utilization(u));
    ASSERT_TRUE(next.ok());
    u = *next;
  }
  double slope_before = c.model_slope();
  // Deep saturation where the model already predicts demand above the
  // clipped observation: y=100 only lower-bounds the demand, and the
  // bound (100 * applied) is below the prediction, so the sample
  // carries no information.
  plant.x = 5000.0;
  auto next = c.Update(60.0 * k, 100.0);
  ASSERT_TRUE(next.ok());
  // Slope unchanged: the clipped sample was skipped — and the
  // driver-based feedforward term escaped saturation regardless.
  EXPECT_NEAR(c.model_slope(), slope_before, 1e-9);
  EXPECT_GT(*next, 100.0);
}

TEST(FeedforwardTest, SaturationWithStaleLowModelStillEscapes) {
  // Plant whose per-record cost can drift: demand W = cost * x.
  double cost = 0.5;
  auto utilization = [&](double u) {
    return std::min(100.0, cost * 100.0 / std::max(u, 1e-9));
  };
  FeedforwardController c(BaseConfig(),
                          [](SimTime) -> Result<double> { return 100.0; });
  c.Reset(1.0);
  double u = 1.0;
  int k = 0;
  for (; k < 10; ++k) {
    auto next = c.Update(60.0 * k, utilization(u));
    ASSERT_TRUE(next.ok());
    u = *next;
  }
  // The cost grows 20x: demand jumps far beyond what the clamped
  // feedback trim can cover, and y pins at 100 while the model still
  // predicts the old cheap workload. Regression: the controller used to
  // skip every saturated sample, so the model stayed stale-low and the
  // loop deadlocked at 100% utilization forever. Learning from the
  // clipped lower bound whenever the model predicts below it must pull
  // capacity up until saturation resolves.
  cost = 10.0;
  for (; k < 60; ++k) {
    auto next = c.Update(60.0 * k, utilization(u));
    ASSERT_TRUE(next.ok());
    u = *next;
  }
  EXPECT_NEAR(utilization(u), 60.0, 10.0);
}

TEST(FeedforwardTest, DegradesToFeedbackWithoutDriver) {
  FeedforwardController c(BaseConfig(), nullptr);
  c.Reset(10.0);
  auto u = c.Update(0.0, 80.0);
  ASSERT_TRUE(u.ok());
  // Pure integral: 10 + 0.05 * 20 = 11.
  EXPECT_DOUBLE_EQ(*u, 11.0);
  EXPECT_EQ(c.driver_misses(), 1u);
}

TEST(FeedforwardTest, DriverErrorsFallBackPerStep) {
  bool fail = false;
  Plant plant;
  FeedforwardController c(BaseConfig(), [&](SimTime) -> Result<double> {
    if (fail) return Status::NotFound("metric gap");
    return plant.x;
  });
  c.Reset(5.0);
  double u = 5.0;
  for (int k = 0; k < 20; ++k) {
    plant.x = 100.0 + 10.0 * (k % 5);
    auto next = c.Update(60.0 * k, plant.Utilization(u));
    ASSERT_TRUE(next.ok());
    u = *next;
  }
  fail = true;
  auto next = c.Update(60.0 * 21, plant.Utilization(u));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(c.driver_misses(), 1u);
  fail = false;
  EXPECT_TRUE(c.Update(60.0 * 22, plant.Utilization(*next)).ok());
}

TEST(FeedforwardTest, TrimIsBounded) {
  // Persistent overload with an uninformative driver: the feedback trim
  // must stay within max_trim_fraction of the feedforward term instead
  // of integrating without bound.
  FeedforwardConfig cfg = BaseConfig();
  cfg.max_trim_fraction = 0.5;
  double x = 10.0;
  FeedforwardController c(cfg, [&](SimTime) -> Result<double> { return x; });
  c.Reset(5.0);
  double u = 5.0;
  for (int k = 0; k < 50; ++k) {
    auto next = c.Update(60.0 * k, 95.0);
    ASSERT_TRUE(next.ok());
    u = *next;
    double u_ff = u - c.trim();
    EXPECT_LE(std::fabs(c.trim()),
              cfg.max_trim_fraction * std::max(u_ff, 1.0) + 1e-6);
  }
}

TEST(FeedforwardTest, ResetClearsModel) {
  Plant plant;
  FeedforwardController c(BaseConfig(),
                          [&](SimTime) -> Result<double> { return plant.x; });
  c.Reset(5.0);
  double u = 5.0;
  for (int k = 0; k < 10; ++k) {
    plant.x = 100.0 + 10.0 * (k % 3);
    auto next = c.Update(60.0 * k, plant.Utilization(u));
    ASSERT_TRUE(next.ok());
    u = *next;
  }
  EXPECT_GT(c.model_slope(), 0.1);
  c.Reset(5.0);
  EXPECT_DOUBLE_EQ(c.model_slope(), 0.0);
  EXPECT_DOUBLE_EQ(c.model_intercept(), 0.0);
}

TEST(FeedforwardTest, TimeMovingBackwardsRejected) {
  FeedforwardController c(BaseConfig(), nullptr);
  c.Reset(5.0);
  ASSERT_TRUE(c.Update(60.0, 60.0).ok());
  EXPECT_FALSE(c.Update(30.0, 60.0).ok());
}

// Regression: a repeated timestamp must be an idempotent no-op — no
// double model/trim update (twin-trajectory check).
TEST(FeedforwardTest, DuplicateTimestampIsIdempotentNoOp) {
  auto driver = [](SimTime t) -> Result<double> { return 100.0 + t; };
  FeedforwardController a(BaseConfig(), driver);
  FeedforwardController b(BaseConfig(), driver);
  a.Reset(10.0);
  b.Reset(10.0);
  const double ys[] = {80.0, 75.0, 65.0, 58.0, 62.0};
  for (int k = 0; k < 5; ++k) {
    double t = 60.0 * k;
    auto ua = a.Update(t, ys[k]);
    auto dup = a.Update(t, ys[k]);  // Duplicate tick on `a` only.
    auto ub = b.Update(t, ys[k]);
    ASSERT_TRUE(ua.ok() && dup.ok() && ub.ok());
    EXPECT_DOUBLE_EQ(*ua, *ub);
    EXPECT_DOUBLE_EQ(*dup, *ub);
  }
}

}  // namespace
}  // namespace flower::control
