#include "control/fixed_gain.h"

#include <gtest/gtest.h>

namespace flower::control {
namespace {

FixedGainConfig BaseConfig() {
  FixedGainConfig cfg;
  cfg.reference = 70.0;
  cfg.gain = 0.1;
  cfg.range_width = 40.0;
  cfg.min_range = 2.0;
  cfg.limits.min = 1.0;
  cfg.limits.max = 100.0;
  cfg.limits.integer = false;
  return cfg;
}

TEST(FixedGainTest, IntegralActionAboveHighTarget) {
  FixedGainController c(BaseConfig());
  c.Reset(10.0);
  // y = 90 > y_h = 70: u += 0.1 * (90 - 70) = +2.
  auto u = c.Update(0.0, 90.0);
  ASSERT_TRUE(u.ok());
  EXPECT_DOUBLE_EQ(*u, 12.0);
}

TEST(FixedGainTest, DeadZoneHoldsInsideTargetRange) {
  FixedGainController c(BaseConfig());
  c.Reset(10.0);
  // y_l = 70 - 40/10 = 66. y = 68 is inside [66, 70].
  auto u = c.Update(0.0, 68.0);
  ASSERT_TRUE(u.ok());
  EXPECT_DOUBLE_EQ(*u, 10.0);
}

TEST(FixedGainTest, ScalesDownBelowLowTarget) {
  FixedGainController c(BaseConfig());
  c.Reset(10.0);
  // y_l = 66; y = 30: u += 0.1 * (30 - 66) = -3.6.
  auto u = c.Update(0.0, 30.0);
  ASSERT_TRUE(u.ok());
  EXPECT_DOUBLE_EQ(*u, 6.4);
}

TEST(FixedGainTest, ProportionalThresholdingWidensRangeAtSmallSize) {
  FixedGainConfig cfg = BaseConfig();
  FixedGainController c(cfg);
  c.Reset(2.0);
  // y_l = 70 - 40/2 = 50: wide dead zone at small cluster size.
  EXPECT_DOUBLE_EQ(c.low_target(), 50.0);
  c.Reset(40.0);
  // y_l = 70 - 1 -> clamped by min_range to 70 - 2 = 68.
  EXPECT_DOUBLE_EQ(c.low_target(), 68.0);
}

TEST(FixedGainTest, GainNeverChanges) {
  FixedGainController c(BaseConfig());
  c.Reset(10.0);
  // Two steps with identical overload produce identical increments —
  // unlike the adaptive controller.
  auto u1 = c.Update(0.0, 90.0);
  ASSERT_TRUE(u1.ok());
  double inc1 = *u1 - 10.0;
  auto u2 = c.Update(60.0, 90.0);
  ASSERT_TRUE(u2.ok());
  double inc2 = *u2 - *u1;
  EXPECT_DOUBLE_EQ(inc1, inc2);
}

TEST(FixedGainTest, RespectsActuatorLimits) {
  FixedGainConfig cfg = BaseConfig();
  cfg.limits.max = 11.0;
  FixedGainController c(cfg);
  c.Reset(10.0);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(c.Update(i * 60.0, 100.0).ok());
  EXPECT_DOUBLE_EQ(c.current_u(), 11.0);
}

TEST(FixedGainTest, TimeMovingBackwardsRejected) {
  FixedGainController c(BaseConfig());
  c.Reset(5.0);
  ASSERT_TRUE(c.Update(10.0, 80.0).ok());
  EXPECT_FALSE(c.Update(9.0, 80.0).ok());
}

TEST(FixedGainTest, SetReferenceMovesRange) {
  FixedGainController c(BaseConfig());
  c.Reset(10.0);
  c.set_reference(50.0);
  EXPECT_DOUBLE_EQ(c.reference(), 50.0);
  auto u = c.Update(0.0, 60.0);  // Above the new high target.
  ASSERT_TRUE(u.ok());
  EXPECT_GT(*u, 10.0);
}

// Regression: a repeated timestamp must be an idempotent no-op — the
// twin controller without duplicates must follow the same trajectory.
TEST(FixedGainTest, DuplicateTimestampIsIdempotentNoOp) {
  FixedGainController a(BaseConfig());
  FixedGainController b(BaseConfig());
  a.Reset(10.0);
  b.Reset(10.0);
  const double ys[] = {90.0, 85.0, 20.0, 70.0};
  for (int k = 0; k < 4; ++k) {
    double t = 60.0 * k;
    auto ua = a.Update(t, ys[k]);
    auto dup = a.Update(t, ys[k]);  // Duplicate tick on `a` only.
    auto ub = b.Update(t, ys[k]);
    ASSERT_TRUE(ua.ok() && dup.ok() && ub.ok());
    EXPECT_DOUBLE_EQ(*ua, *ub);
    EXPECT_DOUBLE_EQ(*dup, *ub);  // Duplicate returns the current u.
  }
}

}  // namespace
}  // namespace flower::control
