#include "control/quasi_adaptive.h"

#include <gtest/gtest.h>

#include <cmath>

namespace flower::control {
namespace {

QuasiAdaptiveConfig BaseConfig() {
  QuasiAdaptiveConfig cfg;
  cfg.reference = 60.0;
  cfg.lambda = 0.5;
  cfg.initial_sensitivity = -5.0;
  cfg.sensitivity_min = 0.2;
  cfg.sensitivity_max = 100.0;
  cfg.limits.min = 1.0;
  cfg.limits.max = 200.0;
  cfg.limits.integer = false;
  return cfg;
}

TEST(QuasiAdaptiveTest, FirstStepUsesInitialSensitivity) {
  QuasiAdaptiveController c(BaseConfig());
  c.Reset(10.0);
  // gain = lambda/|b| = 0.5/5 = 0.1; error = 20 → u = 12.
  auto u = c.Update(0.0, 80.0);
  ASSERT_TRUE(u.ok());
  EXPECT_NEAR(*u, 12.0, 1e-12);
}

TEST(QuasiAdaptiveTest, LearnsPlantSensitivity) {
  // Linear plant: y = 100 - 2 * u  (sensitivity b = -2).
  QuasiAdaptiveController c(BaseConfig());
  c.Reset(10.0);
  double u = 10.0;
  for (int i = 0; i < 50; ++i) {
    double y = 100.0 - 2.0 * u;
    auto next = c.Update(i * 60.0, y);
    ASSERT_TRUE(next.ok());
    u = *next;
  }
  EXPECT_NEAR(c.estimated_sensitivity(), -2.0, 0.3);
  // Closed loop should settle near the reference: y = 60 → u = 20.
  EXPECT_NEAR(u, 20.0, 1.0);
}

TEST(QuasiAdaptiveTest, SensitivityMagnitudeClamped) {
  QuasiAdaptiveConfig cfg = BaseConfig();
  cfg.sensitivity_min = 1.0;
  cfg.sensitivity_max = 3.0;
  QuasiAdaptiveController c(cfg);
  c.Reset(10.0);
  // Plant with huge sensitivity (|b|=50) → estimate clamps at 3.
  double u = 10.0;
  for (int i = 0; i < 20; ++i) {
    double y = std::max(0.0, 100.0 - 50.0 * (u - 9.0));
    auto next = c.Update(i * 60.0, y);
    ASSERT_TRUE(next.ok());
    u = *next;
  }
  EXPECT_LE(std::fabs(c.estimated_sensitivity()), 3.0 + 1e-9);
  EXPECT_GE(std::fabs(c.estimated_sensitivity()), 1.0 - 1e-9);
}

TEST(QuasiAdaptiveTest, SensitivityKeptNegative) {
  QuasiAdaptiveController c(BaseConfig());
  c.Reset(10.0);
  ASSERT_TRUE(c.Update(0.0, 80.0).ok());
  ASSERT_TRUE(c.Update(60.0, 85.0).ok());  // Misleading sample (y rose).
  EXPECT_LT(c.estimated_sensitivity(), 0.0);
}

TEST(QuasiAdaptiveTest, NoModelUpdateWithoutActuationChange) {
  QuasiAdaptiveController c(BaseConfig());
  c.Reset(10.0);
  // At reference: u stays 10, so du = 0 and b̂ must stay at initial.
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(c.Update(i * 60.0, 60.0).ok());
  EXPECT_NEAR(c.estimated_sensitivity(), -5.0, 1e-9);
}

TEST(QuasiAdaptiveTest, ResetClearsModel) {
  QuasiAdaptiveController c(BaseConfig());
  c.Reset(10.0);
  double u = 10.0;
  for (int i = 0; i < 20; ++i) {
    auto next = c.Update(i * 60.0, 100.0 - 2.0 * u);
    ASSERT_TRUE(next.ok());
    u = *next;
  }
  c.Reset(10.0);
  EXPECT_NEAR(c.estimated_sensitivity(), -5.0, 1e-9);
  EXPECT_DOUBLE_EQ(c.current_u(), 10.0);
}

TEST(QuasiAdaptiveTest, TimeMovingBackwardsRejected) {
  QuasiAdaptiveController c(BaseConfig());
  c.Reset(10.0);
  ASSERT_TRUE(c.Update(10.0, 80.0).ok());
  EXPECT_FALSE(c.Update(5.0, 80.0).ok());
}

// Regression: a repeated timestamp must be an idempotent no-op — no
// double RLS/integral update (twin-trajectory check).
TEST(QuasiAdaptiveTest, DuplicateTimestampIsIdempotentNoOp) {
  QuasiAdaptiveController a(BaseConfig());
  QuasiAdaptiveController b(BaseConfig());
  a.Reset(10.0);
  b.Reset(10.0);
  const double ys[] = {90.0, 80.0, 65.0, 55.0, 70.0};
  for (int k = 0; k < 5; ++k) {
    double t = 60.0 * k;
    auto ua = a.Update(t, ys[k]);
    auto dup = a.Update(t, ys[k]);  // Duplicate tick on `a` only.
    auto ub = b.Update(t, ys[k]);
    ASSERT_TRUE(ua.ok() && dup.ok() && ub.ok());
    EXPECT_DOUBLE_EQ(*ua, *ub);
    EXPECT_DOUBLE_EQ(*dup, *ub);
  }
}

}  // namespace
}  // namespace flower::control
