// Closed-loop comparison of the controller families on a synthetic
// utilization plant — the unit-level counterpart of the paper's §3.3
// claim that the adaptive-gain controller outperforms fixed-gain [12]
// and quasi-adaptive [14] designs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "control/adaptive_gain.h"
#include "control/fixed_gain.h"
#include "control/metrics.h"
#include "control/quasi_adaptive.h"
#include "control/rule_based.h"

namespace flower::control {
namespace {

// Utilization plant: y = 100 * demand / (u * kUnitCapacity), capped at
// 100%. `demand` is in work-units/s; each resource unit serves
// kUnitCapacity work-units/s.
constexpr double kUnitCapacity = 100.0;

double PlantUtilization(double demand, double u) {
  if (u <= 0.0) return 100.0;
  return std::min(100.0, 100.0 * demand / (u * kUnitCapacity));
}

struct LoopResult {
  TimeSeries y;
  TimeSeries u;
};

// Runs `controller` against a demand profile sampled every 60 s.
LoopResult RunLoop(Controller* controller, double initial_u,
                   const std::function<double(double)>& demand_fn,
                   int steps) {
  LoopResult out;
  controller->Reset(initial_u);
  double u = initial_u;
  for (int k = 0; k < steps; ++k) {
    double t = 60.0 * static_cast<double>(k);
    double y = PlantUtilization(demand_fn(t), u);
    out.y.AppendUnchecked(t, y);
    auto next = controller->Update(t, y);
    if (!next.ok()) break;
    u = *next;
    out.u.AppendUnchecked(t, u);
  }
  return out;
}

ActuatorLimits Limits() {
  ActuatorLimits l;
  l.min = 1.0;
  l.max = 200.0;
  l.integer = true;
  return l;
}

std::unique_ptr<Controller> Adaptive(bool memory = true) {
  AdaptiveGainConfig cfg;
  cfg.reference = 60.0;
  cfg.initial_gain = 0.05;
  cfg.gain_min = 0.01;
  cfg.gain_max = 1.0;
  cfg.gamma = 0.01;
  cfg.reset_gain_each_step = !memory;
  cfg.limits = Limits();
  return std::make_unique<AdaptiveGainController>(cfg);
}

std::unique_ptr<Controller> Fixed() {
  FixedGainConfig cfg;
  cfg.reference = 60.0;
  cfg.gain = 0.05;
  cfg.limits = Limits();
  return std::make_unique<FixedGainController>(cfg);
}

std::unique_ptr<Controller> Quasi() {
  QuasiAdaptiveConfig cfg;
  cfg.reference = 60.0;
  cfg.limits = Limits();
  return std::make_unique<QuasiAdaptiveController>(cfg);
}

std::unique_ptr<Controller> Rules() {
  RuleBasedConfig cfg;
  cfg.high_threshold = 75.0;
  cfg.low_threshold = 35.0;
  cfg.limits = Limits();
  return std::make_unique<RuleBasedController>(cfg);
}

// Demand: steady 2000 wu/s, then an 8000 wu/s surge at t = 1 h.
double StepDemand(double t) { return t < 3600.0 ? 2000.0 : 10000.0; }

TEST(ClosedLoopTest, AllControllersTrackSteadyLoad) {
  for (auto factory : {+[] { return Adaptive(true); },
                       +[] { return Fixed(); }, +[] { return Quasi(); }}) {
    auto controller = factory();
    auto res = RunLoop(controller.get(), 10.0,
                       [](double) { return 3000.0; }, 120);
    // Steady demand 3000 wu/s at 60% reference → u* = 50.
    auto tail = res.y.Window(4000.0, 1e18);
    ASSERT_FALSE(tail.empty()) << controller->name();
    for (const Sample& s : tail.samples()) {
      EXPECT_NEAR(s.value, 60.0, 10.0) << controller->name();
    }
  }
}

TEST(ClosedLoopTest, AdaptiveSettlesFasterThanFixedAfterSurge) {
  auto adaptive = RunLoop(Adaptive(true).get(), 30.0, StepDemand, 300);
  auto fixed = RunLoop(Fixed().get(), 30.0, StepDemand, 300);
  auto t_adaptive = SettlingTime(adaptive.y, 3600.0, 60.0, 8.0, 600.0);
  auto t_fixed = SettlingTime(fixed.y, 3600.0, 60.0, 8.0, 600.0);
  ASSERT_TRUE(t_adaptive.ok());
  // Fixed gain either settles strictly slower or never settles.
  if (t_fixed.ok()) {
    EXPECT_LT(*t_adaptive, *t_fixed);
  }
}

TEST(ClosedLoopTest, AdaptiveBeatsNoMemoryAblationAfterSurge) {
  auto with_memory = RunLoop(Adaptive(true).get(), 30.0, StepDemand, 300);
  auto no_memory = RunLoop(Adaptive(false).get(), 30.0, StepDemand, 300);
  auto q_mem =
      EvaluateControl(with_memory.y, with_memory.u, 60.0, 8.0, 18000.0);
  auto q_nomem =
      EvaluateControl(no_memory.y, no_memory.u, 60.0, 8.0, 18000.0);
  ASSERT_TRUE(q_mem.ok());
  ASSERT_TRUE(q_nomem.ok());
  EXPECT_LE(q_mem->violation_fraction, q_nomem->violation_fraction);
}

TEST(ClosedLoopTest, AdaptiveHasLowerViolationThanRuleBasedUnderSurge) {
  auto adaptive = RunLoop(Adaptive(true).get(), 30.0, StepDemand, 300);
  auto rules = RunLoop(Rules().get(), 30.0, StepDemand, 300);
  auto qa = EvaluateControl(adaptive.y, adaptive.u, 60.0, 10.0, 18000.0);
  auto qr = EvaluateControl(rules.y, rules.u, 60.0, 10.0, 18000.0);
  ASSERT_TRUE(qa.ok());
  ASSERT_TRUE(qr.ok());
  EXPECT_LT(qa->violation_fraction, qr->violation_fraction);
}

TEST(ClosedLoopTest, ControllersScaleDownWhenLoadDrops) {
  // Demand collapses from 8000 to 1000 wu/s at t = 1 h.
  auto demand = [](double t) { return t < 3600.0 ? 8000.0 : 1000.0; };
  for (auto factory : {+[] { return Adaptive(true); },
                       +[] { return Quasi(); }}) {
    auto controller = factory();
    auto res = RunLoop(controller.get(), 140.0, demand, 300);
    // Final resource level should approach u* = 1000/(0.6*100) ≈ 17.
    double final_u = res.u.samples().back().value;
    EXPECT_LT(final_u, 40.0) << controller->name();
    EXPECT_GE(final_u, 10.0) << controller->name();
  }
}

TEST(ClosedLoopTest, NoControllerOscillatesWildlyAtSteadyState) {
  for (auto factory : {+[] { return Adaptive(true); },
                       +[] { return Fixed(); }, +[] { return Quasi(); }}) {
    auto controller = factory();
    auto res = RunLoop(controller.get(), 50.0,
                       [](double) { return 3000.0; }, 200);
    // Over the last 50 steps, actuation changes should be rare.
    auto tail_u = res.u.Window(9000.0, 1e18);
    size_t changes = 0;
    for (size_t i = 1; i < tail_u.size(); ++i) {
      if (tail_u[i].value != tail_u[i - 1].value) ++changes;
    }
    EXPECT_LE(changes, tail_u.size() / 3) << controller->name();
  }
}

}  // namespace
}  // namespace flower::control
