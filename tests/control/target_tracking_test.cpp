#include "control/target_tracking.h"

#include <gtest/gtest.h>

namespace flower::control {
namespace {

TargetTrackingConfig BaseConfig() {
  TargetTrackingConfig cfg;
  cfg.reference = 60.0;
  cfg.scale_out_cooldown = 60.0;
  cfg.scale_in_cooldown = 600.0;
  cfg.scale_in_margin = 0.9;
  cfg.limits.min = 1.0;
  cfg.limits.max = 1000.0;
  cfg.limits.integer = false;
  return cfg;
}

TEST(TargetTrackingTest, JumpsToImpliedCapacity) {
  TargetTrackingController c(BaseConfig());
  c.Reset(10.0);
  // y = 90 at u = 10 implies demand = 900 %, desired = 10 * 90/60 = 15.
  auto u = c.Update(0.0, 90.0);
  ASSERT_TRUE(u.ok());
  EXPECT_DOUBLE_EQ(*u, 15.0);
}

TEST(TargetTrackingTest, ScaleOutCooldownBlocksRepeatedJumps) {
  TargetTrackingController c(BaseConfig());
  c.Reset(10.0);
  ASSERT_TRUE(c.Update(0.0, 90.0).ok());   // -> 15.
  auto u = c.Update(30.0, 90.0);           // Inside 60 s cooldown.
  ASSERT_TRUE(u.ok());
  EXPECT_DOUBLE_EQ(*u, 15.0);
  auto u2 = c.Update(61.0, 90.0);          // Cooldown expired.
  ASSERT_TRUE(u2.ok());
  EXPECT_DOUBLE_EQ(*u2, 22.5);
}

TEST(TargetTrackingTest, ScaleInIsConservative) {
  TargetTrackingConfig cfg = BaseConfig();
  TargetTrackingController c(cfg);
  c.Reset(20.0);
  // y = 57 at u = 20: desired = 19, within the 0.9 margin -> hold.
  auto u = c.Update(0.0, 57.0);
  ASSERT_TRUE(u.ok());
  EXPECT_DOUBLE_EQ(*u, 20.0);
  // y = 30: desired = 10 < 18 -> allowed (no prior scaling action).
  auto u2 = c.Update(60.0, 30.0);
  ASSERT_TRUE(u2.ok());
  EXPECT_DOUBLE_EQ(*u2, 10.0);
  // Another drop right away is blocked by the 600 s scale-in cooldown.
  auto u3 = c.Update(120.0, 30.0);
  ASSERT_TRUE(u3.ok());
  EXPECT_DOUBLE_EQ(*u3, 10.0);
  auto u4 = c.Update(60.0 + 601.0, 30.0);
  ASSERT_TRUE(u4.ok());
  EXPECT_DOUBLE_EQ(*u4, 5.0);
}

TEST(TargetTrackingTest, ScaleInCanBeDisabled) {
  TargetTrackingConfig cfg = BaseConfig();
  cfg.scale_in_enabled = false;
  TargetTrackingController c(cfg);
  c.Reset(20.0);
  auto u = c.Update(0.0, 10.0);
  ASSERT_TRUE(u.ok());
  EXPECT_DOUBLE_EQ(*u, 20.0);
}

TEST(TargetTrackingTest, AtReferenceHolds) {
  TargetTrackingController c(BaseConfig());
  c.Reset(10.0);
  for (int i = 0; i < 5; ++i) {
    auto u = c.Update(i * 60.0, 60.0);
    ASSERT_TRUE(u.ok());
    EXPECT_DOUBLE_EQ(*u, 10.0);
  }
}

TEST(TargetTrackingTest, SaturatedSignalUnderestimatesSurge) {
  // The documented weakness: y clips at 100, so one round only scales
  // by 100/60 even if true demand is 10x.
  TargetTrackingController c(BaseConfig());
  c.Reset(10.0);
  auto u = c.Update(0.0, 100.0);
  ASSERT_TRUE(u.ok());
  EXPECT_NEAR(*u, 16.67, 0.01);
}

TEST(TargetTrackingTest, RespectsLimitsAndQuantization) {
  TargetTrackingConfig cfg = BaseConfig();
  cfg.limits.max = 12.0;
  cfg.limits.integer = true;
  TargetTrackingController c(cfg);
  c.Reset(10.0);
  auto u = c.Update(0.0, 95.0);
  ASSERT_TRUE(u.ok());
  EXPECT_DOUBLE_EQ(*u, 12.0);
}

TEST(TargetTrackingTest, InvalidInputsRejected) {
  TargetTrackingController c(BaseConfig());
  c.Reset(10.0);
  ASSERT_TRUE(c.Update(10.0, 60.0).ok());
  EXPECT_FALSE(c.Update(5.0, 60.0).ok());  // Time backwards.
  TargetTrackingConfig cfg = BaseConfig();
  cfg.reference = 0.0;
  TargetTrackingController bad(cfg);
  bad.Reset(10.0);
  EXPECT_FALSE(bad.Update(0.0, 50.0).ok());
}

// Regression: a repeated timestamp must be an idempotent no-op — it
// must not re-enter the cooldown bookkeeping (twin-trajectory check).
TEST(TargetTrackingTest, DuplicateTimestampIsIdempotentNoOp) {
  TargetTrackingController a(BaseConfig());
  TargetTrackingController b(BaseConfig());
  a.Reset(10.0);
  b.Reset(10.0);
  const double ys[] = {90.0, 95.0, 40.0, 30.0, 60.0};
  for (int k = 0; k < 5; ++k) {
    double t = 120.0 * k;
    auto ua = a.Update(t, ys[k]);
    auto dup = a.Update(t, ys[k]);  // Duplicate tick on `a` only.
    auto ub = b.Update(t, ys[k]);
    ASSERT_TRUE(ua.ok() && dup.ok() && ub.ok());
    EXPECT_DOUBLE_EQ(*ua, *ub);
    EXPECT_DOUBLE_EQ(*dup, *ub);
  }
}

}  // namespace
}  // namespace flower::control
