#include "cloudwatch/metric_store.h"

#include <gtest/gtest.h>

#include <cmath>

namespace flower::cloudwatch {
namespace {

const MetricId kCpu{"Flower/Storm", "CpuUtilization", "storm"};
const MetricId kRecords{"Flower/Kinesis", "IncomingRecords", "clicks"};

TEST(MetricStoreTest, PutAndGetSeries) {
  MetricStore store;
  ASSERT_TRUE(store.Put(kCpu, 0.0, 10.0).ok());
  ASSERT_TRUE(store.Put(kCpu, 60.0, 20.0).ok());
  auto series = store.GetSeries(kCpu);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ((*series)->size(), 2u);
  EXPECT_EQ(store.metric_count(), 1u);
  EXPECT_EQ(store.total_datapoints(), 2u);
}

TEST(MetricStoreTest, UnknownMetricIsNotFound) {
  MetricStore store;
  EXPECT_EQ(store.GetSeries(kCpu).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.GetStatistic(kCpu, 0, 100, Statistic::kAverage)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(MetricStoreTest, NonMonotonicPutRejected) {
  MetricStore store;
  ASSERT_TRUE(store.Put(kCpu, 100.0, 1.0).ok());
  EXPECT_FALSE(store.Put(kCpu, 50.0, 2.0).ok());
}

TEST(MetricStoreTest, StatisticsOverWindow) {
  MetricStore store;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.Put(kCpu, i * 60.0, static_cast<double>(i)).ok());
  }
  // Trailing window (120, 360] covers values 3, 4, 5, 6.
  EXPECT_DOUBLE_EQ(*store.GetStatistic(kCpu, 120, 360, Statistic::kAverage),
                   4.5);
  EXPECT_DOUBLE_EQ(*store.GetStatistic(kCpu, 120, 360, Statistic::kSum),
                   18.0);
  EXPECT_DOUBLE_EQ(*store.GetStatistic(kCpu, 120, 360, Statistic::kMinimum),
                   3.0);
  EXPECT_DOUBLE_EQ(*store.GetStatistic(kCpu, 120, 360, Statistic::kMaximum),
                   6.0);
  EXPECT_DOUBLE_EQ(
      *store.GetStatistic(kCpu, 120, 360, Statistic::kSampleCount), 4.0);
}

// Pins the trailing-window boundary contract: (t0, t1] — a datapoint
// stamped exactly at the window end is included, one stamped exactly at
// the window start is not.
TEST(MetricStoreTest, WindowIsLeftOpenRightClosed) {
  MetricStore store;
  ASSERT_TRUE(store.Put(kCpu, 60.0, 1.0).ok());
  ASSERT_TRUE(store.Put(kCpu, 120.0, 2.0).ok());
  // Sample at t1 == 120 is visible to a query ending at 120.
  EXPECT_DOUBLE_EQ(*store.GetStatistic(kCpu, 60, 120, Statistic::kSum), 2.0);
  // Sample at t0 == 120 is NOT re-counted by the next window.
  EXPECT_DOUBLE_EQ(*store.GetStatistic(kCpu, 0, 120, Statistic::kSum), 3.0);
  EXPECT_EQ(
      store.GetStatistic(kCpu, 120, 180, Statistic::kSum).status().code(),
      StatusCode::kNotFound);
}

// A control loop stepping every `period` with window == period issues
// back-to-back queries (t - period, t]; an edge datapoint must be
// counted by exactly one of them.
TEST(MetricStoreTest, ConsecutiveWindowsCountEdgeDatapointOnce) {
  MetricStore store;
  ASSERT_TRUE(store.Put(kCpu, 120.0, 5.0).ok());
  double counted = 0.0;
  for (double now : {60.0, 120.0, 180.0, 240.0}) {
    counted += store.GetStatistic(kCpu, now - 60.0, now,
                                  Statistic::kSampleCount)
                   .ValueOr(0.0);
  }
  EXPECT_DOUBLE_EQ(counted, 1.0);
}

TEST(MetricStoreTest, PercentileStatistics) {
  MetricStore store;
  for (int i = 1; i <= 100; ++i) {
    ASSERT_TRUE(store.Put(kCpu, i, static_cast<double>(i)).ok());
  }
  EXPECT_NEAR(*store.GetStatistic(kCpu, 0, 1000, Statistic::kP50), 50.5,
              0.01);
  EXPECT_NEAR(*store.GetStatistic(kCpu, 0, 1000, Statistic::kP99), 99.01,
              0.1);
  EXPECT_NEAR(*store.GetStatistic(kCpu, 0, 1000, Statistic::kP90), 90.1,
              0.1);
}

TEST(MetricStoreTest, EmptyWindowIsNotFound) {
  MetricStore store;
  ASSERT_TRUE(store.Put(kCpu, 100.0, 1.0).ok());
  EXPECT_EQ(store.GetStatistic(kCpu, 0, 50, Statistic::kAverage)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(MetricStoreTest, InvalidWindowRejected) {
  MetricStore store;
  ASSERT_TRUE(store.Put(kCpu, 100.0, 1.0).ok());
  EXPECT_EQ(store.GetStatistic(kCpu, 200, 100, Statistic::kAverage)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(MetricStoreTest, StatisticSeriesAggregatesPerPeriod) {
  MetricStore store;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.Put(kCpu, i * 30.0, static_cast<double>(i)).ok());
  }
  // 60 s periods over [0, 300): values (0,1), (2,3), (4,5), (6,7), (8,9).
  auto series = store.GetStatisticSeries(kCpu, 0.0, 300.0, 60.0,
                                         Statistic::kAverage);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->size(), 5u);
  EXPECT_DOUBLE_EQ((*series)[0].time, 0.0);
  EXPECT_DOUBLE_EQ((*series)[0].value, 0.5);
  EXPECT_DOUBLE_EQ((*series)[4].value, 8.5);
  auto maxes = store.GetStatisticSeries(kCpu, 0.0, 300.0, 60.0,
                                        Statistic::kMaximum);
  ASSERT_TRUE(maxes.ok());
  EXPECT_DOUBLE_EQ((*maxes)[2].value, 5.0);
}

TEST(MetricStoreTest, StatisticSeriesSkipsEmptyPeriods) {
  MetricStore store;
  ASSERT_TRUE(store.Put(kCpu, 10.0, 1.0).ok());
  ASSERT_TRUE(store.Put(kCpu, 250.0, 2.0).ok());
  auto series = store.GetStatisticSeries(kCpu, 0.0, 300.0, 60.0,
                                         Statistic::kSum);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->size(), 2u);
  EXPECT_DOUBLE_EQ((*series)[1].time, 240.0);
}

TEST(MetricStoreTest, StatisticSeriesValidation) {
  MetricStore store;
  ASSERT_TRUE(store.Put(kCpu, 0.0, 1.0).ok());
  EXPECT_FALSE(
      store.GetStatisticSeries(kCpu, 0.0, 100.0, 0.0, Statistic::kSum).ok());
  EXPECT_FALSE(
      store.GetStatisticSeries(kCpu, 100.0, 0.0, 60.0, Statistic::kSum).ok());
  EXPECT_EQ(store
                .GetStatisticSeries(kRecords, 0.0, 100.0, 60.0,
                                    Statistic::kSum)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(MetricStoreTest, StatisticSeriesMatchesPerBucketQueries) {
  // Regression for the single-forward-sweep aggregation: for every
  // statistic, GetStatisticSeries must agree with issuing one
  // GetStatistic per bucket. Series buckets are [s, s + p); GetStatistic
  // windows are (t0, t1] — with samples kept clear of bucket edges the
  // shifted window (s - eps, s + p - eps] covers the same datapoints,
  // so the two independent code paths must agree exactly.
  MetricStore store;
  // Irregular timestamps (never within 1 s of a 60 s boundary) and
  // values that exercise min/max/percentile ordering.
  double t = 2.0;
  int i = 0;
  while (t < 900.0) {
    ASSERT_TRUE(store.Put(kCpu, t, 50.0 + 40.0 * std::sin(0.7 * i) +
                                       (i % 7) * 3.0)
                    .ok());
    t += 3.0 + (i % 5) * 4.0;
    if (std::fmod(t, 60.0) < 1.0 || std::fmod(t, 60.0) > 59.0) t += 1.5;
    ++i;
  }
  const double kPeriod = 60.0;
  const double kEps = 0.5;
  for (Statistic stat :
       {Statistic::kAverage, Statistic::kSum, Statistic::kMinimum,
        Statistic::kMaximum, Statistic::kSampleCount, Statistic::kP50,
        Statistic::kP90, Statistic::kP99}) {
    auto series = store.GetStatisticSeries(kCpu, 0.0, 900.0, kPeriod, stat);
    ASSERT_TRUE(series.ok()) << StatisticToString(stat);
    ASSERT_GE(series->size(), 10u) << StatisticToString(stat);
    for (size_t p = 0; p < series->size(); ++p) {
      double start = (*series)[p].time;
      auto ref = store.GetStatistic(kCpu, start - kEps,
                                    start + kPeriod - kEps, stat);
      ASSERT_TRUE(ref.ok())
          << StatisticToString(stat) << " bucket at " << start;
      EXPECT_DOUBLE_EQ((*series)[p].value, *ref)
          << StatisticToString(stat) << " bucket at " << start;
    }
  }
}

TEST(MetricStoreTest, ListMetricsFiltersByNamespace) {
  MetricStore store;
  ASSERT_TRUE(store.Put(kCpu, 0.0, 1.0).ok());
  ASSERT_TRUE(store.Put(kRecords, 0.0, 1.0).ok());
  EXPECT_EQ(store.ListMetrics().size(), 2u);
  auto storm_only = store.ListMetrics("Flower/Storm");
  ASSERT_EQ(storm_only.size(), 1u);
  EXPECT_EQ(storm_only[0].name, "CpuUtilization");
  EXPECT_TRUE(store.ListMetrics("Nope").empty());
}

TEST(MetricStoreTest, DimensionsDistinguishMetrics) {
  MetricStore store;
  MetricId a = kCpu;
  MetricId b = kCpu;
  b.dimension = "other-cluster";
  ASSERT_TRUE(store.Put(a, 0.0, 1.0).ok());
  ASSERT_TRUE(store.Put(b, 0.0, 2.0).ok());
  EXPECT_EQ(store.metric_count(), 2u);
  EXPECT_DOUBLE_EQ(*store.GetStatistic(b, -1, 10, Statistic::kAverage), 2.0);
}

TEST(MetricIdTest, ToStringFormat) {
  EXPECT_EQ(kCpu.ToString(), "Flower/Storm/CpuUtilization{storm}");
}

TEST(StatisticToStringTest, AllNames) {
  EXPECT_EQ(StatisticToString(Statistic::kAverage), "Average");
  EXPECT_EQ(StatisticToString(Statistic::kP99), "p99");
}

}  // namespace
}  // namespace flower::cloudwatch
