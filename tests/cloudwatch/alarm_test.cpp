#include "cloudwatch/alarm.h"

#include <gtest/gtest.h>

namespace flower::cloudwatch {
namespace {

const MetricId kCpu{"Flower/Storm", "CpuUtilization", "storm"};

AlarmConfig HighCpuAlarm(int evaluation_periods = 2) {
  AlarmConfig cfg;
  cfg.name = "high-cpu";
  cfg.metric = kCpu;
  cfg.statistic = Statistic::kAverage;
  cfg.threshold = 80.0;
  cfg.comparison = Comparison::kGreaterThan;
  cfg.period = 60.0;
  cfg.evaluation_periods = evaluation_periods;
  return cfg;
}

TEST(AlarmTest, InsufficientDataWithoutDatapoints) {
  MetricStore store;
  Alarm alarm(HighCpuAlarm());
  EXPECT_EQ(alarm.Evaluate(store, 120.0), AlarmState::kInsufficientData);
}

TEST(AlarmTest, OkWhenBelowThreshold) {
  MetricStore store;
  ASSERT_TRUE(store.Put(kCpu, 30.0, 50.0).ok());
  ASSERT_TRUE(store.Put(kCpu, 90.0, 55.0).ok());
  Alarm alarm(HighCpuAlarm());
  EXPECT_EQ(alarm.Evaluate(store, 120.0), AlarmState::kOk);
}

TEST(AlarmTest, FiresAfterConsecutiveBreaches) {
  MetricStore store;
  ASSERT_TRUE(store.Put(kCpu, 30.0, 90.0).ok());   // Period [0, 60).
  ASSERT_TRUE(store.Put(kCpu, 90.0, 95.0).ok());   // Period [60, 120).
  Alarm alarm(HighCpuAlarm(2));
  EXPECT_EQ(alarm.Evaluate(store, 120.0), AlarmState::kAlarm);
}

TEST(AlarmTest, SingleBreachNotEnoughForTwoPeriods) {
  MetricStore store;
  ASSERT_TRUE(store.Put(kCpu, 30.0, 50.0).ok());
  ASSERT_TRUE(store.Put(kCpu, 90.0, 95.0).ok());
  Alarm alarm(HighCpuAlarm(2));
  EXPECT_EQ(alarm.Evaluate(store, 120.0), AlarmState::kOk);
}

TEST(AlarmTest, LessThanComparison) {
  MetricStore store;
  ASSERT_TRUE(store.Put(kCpu, 30.0, 10.0).ok());
  AlarmConfig cfg = HighCpuAlarm(1);
  cfg.comparison = Comparison::kLessThan;
  cfg.threshold = 20.0;
  Alarm alarm(cfg);
  EXPECT_EQ(alarm.Evaluate(store, 60.0), AlarmState::kAlarm);
}

TEST(AlarmTest, StateChangeCallbackFires) {
  MetricStore store;
  ASSERT_TRUE(store.Put(kCpu, 30.0, 90.0).ok());
  Alarm alarm(HighCpuAlarm(1));
  int transitions = 0;
  AlarmState seen_old = AlarmState::kAlarm, seen_new = AlarmState::kOk;
  alarm.set_on_state_change(
      [&](const Alarm&, AlarmState o, AlarmState n) {
        ++transitions;
        seen_old = o;
        seen_new = n;
      });
  alarm.Evaluate(store, 60.0);
  EXPECT_EQ(transitions, 1);
  EXPECT_EQ(seen_old, AlarmState::kInsufficientData);
  EXPECT_EQ(seen_new, AlarmState::kAlarm);
  // Re-evaluating in the same state does not re-fire the callback.
  alarm.Evaluate(store, 60.0);
  EXPECT_EQ(transitions, 1);
}

TEST(AlarmTest, RecoversToOk) {
  MetricStore store;
  ASSERT_TRUE(store.Put(kCpu, 30.0, 90.0).ok());
  Alarm alarm(HighCpuAlarm(1));
  EXPECT_EQ(alarm.Evaluate(store, 60.0), AlarmState::kAlarm);
  ASSERT_TRUE(store.Put(kCpu, 90.0, 40.0).ok());
  EXPECT_EQ(alarm.Evaluate(store, 120.0), AlarmState::kOk);
}

TEST(AlarmStateToStringTest, Names) {
  EXPECT_EQ(AlarmStateToString(AlarmState::kOk), "OK");
  EXPECT_EQ(AlarmStateToString(AlarmState::kAlarm), "ALARM");
  EXPECT_EQ(AlarmStateToString(AlarmState::kInsufficientData),
            "INSUFFICIENT_DATA");
}

}  // namespace
}  // namespace flower::cloudwatch
