#include "workload/arrival.h"

#include <gtest/gtest.h>

#include <cmath>

namespace flower::workload {
namespace {

TEST(ConstantArrivalTest, RateIsConstant) {
  ConstantArrival a(250.0);
  EXPECT_DOUBLE_EQ(a.RatePerSec(0.0), 250.0);
  EXPECT_DOUBLE_EQ(a.RatePerSec(1e6), 250.0);
}

TEST(DiurnalArrivalTest, OscillatesAroundBase) {
  DiurnalArrival a(1000.0, 500.0, kDay);
  EXPECT_NEAR(a.RatePerSec(0.0), 1000.0, 1e-9);
  EXPECT_NEAR(a.RatePerSec(kDay / 4.0), 1500.0, 1e-9);   // Peak.
  EXPECT_NEAR(a.RatePerSec(3.0 * kDay / 4.0), 500.0, 1e-9);  // Trough.
  EXPECT_NEAR(a.RatePerSec(kDay), 1000.0, 1e-6);
}

TEST(DiurnalArrivalTest, NeverNegative) {
  DiurnalArrival a(100.0, 500.0);  // Amplitude exceeds base.
  for (double t = 0.0; t < kDay; t += 997.0) {
    EXPECT_GE(a.RatePerSec(t), 0.0);
  }
}

TEST(FlashCrowdArrivalTest, SpikeShape) {
  FlashCrowdArrival a(100.0, 900.0, 1000.0, 600.0, 100.0);
  EXPECT_DOUBLE_EQ(a.RatePerSec(0.0), 100.0);        // Before ramp.
  EXPECT_DOUBLE_EQ(a.RatePerSec(950.0), 550.0);      // Mid ramp-up.
  EXPECT_DOUBLE_EQ(a.RatePerSec(1000.0), 1000.0);    // Plateau start.
  EXPECT_DOUBLE_EQ(a.RatePerSec(1500.0), 1000.0);    // On plateau.
  EXPECT_DOUBLE_EQ(a.RatePerSec(1650.0), 550.0);     // Mid ramp-down.
  EXPECT_DOUBLE_EQ(a.RatePerSec(2000.0), 100.0);     // After.
}

TEST(StepArrivalTest, PiecewiseConstant) {
  StepArrival a({{100.0, 50.0}, {0.0, 10.0}, {200.0, 0.0}});  // Unsorted.
  EXPECT_DOUBLE_EQ(a.RatePerSec(-1.0), 0.0);  // Before first step.
  EXPECT_DOUBLE_EQ(a.RatePerSec(0.0), 10.0);
  EXPECT_DOUBLE_EQ(a.RatePerSec(99.0), 10.0);
  EXPECT_DOUBLE_EQ(a.RatePerSec(100.0), 50.0);
  EXPECT_DOUBLE_EQ(a.RatePerSec(500.0), 0.0);
}

TEST(CompositeArrivalTest, SumsComponents) {
  CompositeArrival c;
  c.Add(std::make_shared<ConstantArrival>(100.0));
  c.Add(std::make_shared<ConstantArrival>(50.0));
  EXPECT_DOUBLE_EQ(c.RatePerSec(0.0), 150.0);
  EXPECT_EQ(c.size(), 2u);
}

TEST(CompositeArrivalTest, EmptyIsZero) {
  CompositeArrival c;
  EXPECT_DOUBLE_EQ(c.RatePerSec(42.0), 0.0);
}

TEST(MmppArrivalTest, SwitchesBetweenTwoRates) {
  MmppArrival a(100.0, 1000.0, 300.0, 300.0, 36000.0, 7);
  bool saw_low = false, saw_high = false;
  for (double t = 0.0; t < 36000.0; t += 50.0) {
    double r = a.RatePerSec(t);
    EXPECT_TRUE(r == 100.0 || r == 1000.0);
    saw_low |= r == 100.0;
    saw_high |= r == 1000.0;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

TEST(MmppArrivalTest, DeterministicForSeed) {
  MmppArrival a(1.0, 2.0, 100.0, 100.0, 10000.0, 5);
  MmppArrival b(1.0, 2.0, 100.0, 100.0, 10000.0, 5);
  for (double t = 0.0; t < 10000.0; t += 111.0) {
    EXPECT_DOUBLE_EQ(a.RatePerSec(t), b.RatePerSec(t));
  }
}

TEST(MmppArrivalTest, StartsLow) {
  MmppArrival a(5.0, 50.0, 1000.0, 1000.0, 5000.0, 3);
  EXPECT_DOUBLE_EQ(a.RatePerSec(0.0), 5.0);
}

TEST(TraceArrivalTest, ReplaysWithHold) {
  TimeSeries trace("rate");
  trace.AppendUnchecked(0.0, 100.0);
  trace.AppendUnchecked(600.0, 400.0);
  TraceArrival a(std::move(trace));
  EXPECT_DOUBLE_EQ(a.RatePerSec(0.0), 100.0);
  EXPECT_DOUBLE_EQ(a.RatePerSec(599.0), 100.0);
  EXPECT_DOUBLE_EQ(a.RatePerSec(600.0), 400.0);
  EXPECT_DOUBLE_EQ(a.RatePerSec(-10.0), 0.0);  // Before trace: 0.
}

TEST(TraceArrivalTest, NegativeTraceValuesClampedToZero) {
  TimeSeries trace("rate");
  trace.AppendUnchecked(0.0, -50.0);
  TraceArrival a(std::move(trace));
  EXPECT_DOUBLE_EQ(a.RatePerSec(10.0), 0.0);
}

}  // namespace
}  // namespace flower::workload
