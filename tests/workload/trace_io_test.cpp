#include "workload/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "workload/arrival.h"

namespace flower::workload {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  std::string Path(const char* name) {
    return ::testing::TempDir() + "/" + name;
  }
  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream f(path);
    f << content;
  }
};

TEST_F(TraceIoTest, RoundTrip) {
  TimeSeries ts("rate");
  ts.AppendUnchecked(0.0, 100.0);
  ts.AppendUnchecked(60.0, 250.5);
  ts.AppendUnchecked(120.0, 90.25);
  std::string path = Path("roundtrip.csv");
  ASSERT_TRUE(SaveRateTraceCsv(ts, path).ok());
  auto loaded = LoadRateTraceCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_DOUBLE_EQ((*loaded)[1].time, 60.0);
  EXPECT_DOUBLE_EQ((*loaded)[1].value, 250.5);
  EXPECT_DOUBLE_EQ((*loaded)[2].value, 90.25);
}

TEST_F(TraceIoTest, HeaderAndBlankLinesSkipped) {
  std::string path = Path("header.csv");
  WriteFile(path, "time_sec,rate\n\n0,10\n30,20\n");
  auto loaded = LoadRateTraceCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
}

TEST_F(TraceIoTest, CrlfLineEndingsHandled) {
  std::string path = Path("crlf.csv");
  WriteFile(path, "0,10\r\n30,20\r\n");
  auto loaded = LoadRateTraceCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_DOUBLE_EQ((*loaded)[1].value, 20.0);
}

TEST_F(TraceIoTest, MissingFileIsNotFound) {
  EXPECT_EQ(LoadRateTraceCsv("/nonexistent/x.csv").status().code(),
            StatusCode::kNotFound);
}

TEST_F(TraceIoTest, MalformedRowsRejected) {
  std::string p1 = Path("bad1.csv");
  WriteFile(p1, "0,10\nnot-a-number,5\n");
  EXPECT_EQ(LoadRateTraceCsv(p1).status().code(),
            StatusCode::kInvalidArgument);
  std::string p2 = Path("bad2.csv");
  WriteFile(p2, "0,10\n5\n");
  EXPECT_EQ(LoadRateTraceCsv(p2).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(TraceIoTest, NonMonotonicTimesRejected) {
  std::string path = Path("nonmono.csv");
  WriteFile(path, "60,10\n0,20\n");
  EXPECT_EQ(LoadRateTraceCsv(path).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(TraceIoTest, HeaderOnlyIsFailedPrecondition) {
  std::string path = Path("empty.csv");
  WriteFile(path, "time_sec,rate\n");
  EXPECT_EQ(LoadRateTraceCsv(path).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(TraceIoTest, LoadedTraceDrivesTraceArrival) {
  std::string path = Path("drive.csv");
  WriteFile(path, "0,100\n600,400\n");
  auto loaded = LoadRateTraceCsv(path);
  ASSERT_TRUE(loaded.ok());
  TraceArrival arrival(*loaded);
  EXPECT_DOUBLE_EQ(arrival.RatePerSec(0.0), 100.0);
  EXPECT_DOUBLE_EQ(arrival.RatePerSec(700.0), 400.0);
}

}  // namespace
}  // namespace flower::workload
