#include "workload/clickstream.h"

#include <gtest/gtest.h>

#include <map>

namespace flower::workload {
namespace {

kinesis::StreamConfig BigStream() {
  kinesis::StreamConfig cfg;
  cfg.name = "clicks";
  cfg.initial_shards = 16;  // Ample capacity: no throttling.
  cfg.max_shards = 64;
  return cfg;
}

ClickStreamConfig SmallConfig() {
  ClickStreamConfig cfg;
  cfg.num_users = 1000;
  cfg.num_urls = 50;
  cfg.generator_instances = 4;
  return cfg;
}

TEST(ClickStreamTest, GeneratesApproximatelyExpectedVolume) {
  sim::Simulation sim;
  kinesis::Stream stream(&sim, nullptr, BigStream());
  ClickStreamGenerator gen(&sim, &stream,
                           std::make_shared<ConstantArrival>(500.0),
                           SmallConfig(), 42);
  sim.RunUntil(100.0);
  // ~500 rec/s * 100 s = 50k (Poisson, 4 instances).
  EXPECT_NEAR(static_cast<double>(gen.total_generated()), 50000.0, 2500.0);
  EXPECT_EQ(gen.total_dropped(), 0u);
  EXPECT_EQ(stream.total_incoming(), gen.total_generated());
}

TEST(ClickStreamTest, DeterministicForSeed) {
  auto run = [](uint64_t seed) {
    sim::Simulation sim;
    kinesis::Stream stream(&sim, nullptr, BigStream());
    ClickStreamGenerator gen(&sim, &stream,
                             std::make_shared<ConstantArrival>(200.0),
                             SmallConfig(), seed);
    sim.RunUntil(50.0);
    return gen.total_generated();
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(ClickStreamTest, DropsCountedWhenStreamThrottles) {
  sim::Simulation sim;
  kinesis::StreamConfig cfg;
  cfg.name = "tiny";
  cfg.initial_shards = 1;  // 1000 rec/s capacity.
  kinesis::Stream stream(&sim, nullptr, cfg);
  ClickStreamGenerator gen(&sim, &stream,
                           std::make_shared<ConstantArrival>(3000.0),
                           SmallConfig(), 42);
  sim.RunUntil(60.0);
  EXPECT_GT(gen.total_dropped(), 0u);
  EXPECT_NEAR(static_cast<double>(gen.total_dropped()),
              static_cast<double>(gen.total_generated()) * 2.0 / 3.0,
              static_cast<double>(gen.total_generated()) * 0.15);
}

TEST(ClickStreamTest, UrlPopularityIsSkewed) {
  sim::Simulation sim;
  kinesis::Stream stream(&sim, nullptr, BigStream());
  ClickStreamConfig cfg = SmallConfig();
  cfg.url_zipf_skew = 1.2;
  ClickStreamGenerator gen(&sim, &stream,
                           std::make_shared<ConstantArrival>(2000.0), cfg,
                           42);
  sim.RunUntil(30.0);
  // Drain all shards and tally URLs.
  std::map<int64_t, int> counts;
  for (int s = 0; s < stream.shard_count(); ++s) {
    auto recs = stream.GetRecords(s, 1000000);
    ASSERT_TRUE(recs.ok());
    for (const auto& r : *recs) counts[r.entity_id]++;
  }
  ASSERT_FALSE(counts.empty());
  // Rank-0 URL should dominate the median URL.
  int top = counts.begin()->second;
  for (const auto& [url, c] : counts) top = std::max(top, c);
  int median = 0;
  {
    std::vector<int> v;
    for (const auto& [url, c] : counts) v.push_back(c);
    std::sort(v.begin(), v.end());
    median = v[v.size() / 2];
  }
  EXPECT_GT(top, 5 * median);
}

TEST(ClickStreamTest, StopHaltsEmission) {
  sim::Simulation sim;
  kinesis::Stream stream(&sim, nullptr, BigStream());
  ClickStreamGenerator gen(&sim, &stream,
                           std::make_shared<ConstantArrival>(500.0),
                           SmallConfig(), 42);
  sim.RunUntil(10.0);
  uint64_t at_stop = gen.total_generated();
  EXPECT_GT(at_stop, 0u);
  gen.Stop();
  sim.RunUntil(20.0);
  EXPECT_EQ(gen.total_generated(), at_stop);
}

TEST(ClickStreamTest, ZeroRateGeneratesNothing) {
  sim::Simulation sim;
  kinesis::Stream stream(&sim, nullptr, BigStream());
  ClickStreamGenerator gen(&sim, &stream,
                           std::make_shared<ConstantArrival>(0.0),
                           SmallConfig(), 42);
  sim.RunUntil(20.0);
  EXPECT_EQ(gen.total_generated(), 0u);
}

TEST(ClickStreamTest, RecordSizesWithinJitterBounds) {
  sim::Simulation sim;
  kinesis::Stream stream(&sim, nullptr, BigStream());
  ClickStreamConfig cfg = SmallConfig();
  cfg.record_bytes_mean = 256;
  cfg.record_bytes_jitter = 64;
  ClickStreamGenerator gen(&sim, &stream,
                           std::make_shared<ConstantArrival>(500.0), cfg,
                           42);
  sim.RunUntil(10.0);
  for (int s = 0; s < stream.shard_count(); ++s) {
    auto recs = stream.GetRecords(s, 100000);
    ASSERT_TRUE(recs.ok());
    for (const auto& r : *recs) {
      EXPECT_GE(r.size_bytes, 192);
      EXPECT_LE(r.size_bytes, 320);
    }
  }
}

}  // namespace
}  // namespace flower::workload
