#include "workload/dashboard_reader.h"

#include <gtest/gtest.h>

namespace flower::workload {
namespace {

dynamodb::TableConfig BigTable(double rcu = 1000.0) {
  dynamodb::TableConfig cfg;
  cfg.initial_rcu = rcu;
  cfg.initial_wcu = 1000.0;
  cfg.burst_window_sec = 1.0;
  return cfg;
}

void Seed(dynamodb::Table* table, int64_t n) {
  for (int64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(table->PutItem(k, "42", 100).ok());
  }
}

TEST(DashboardReaderTest, ReadsTopKEveryPeriod) {
  sim::Simulation sim;
  dynamodb::Table table(&sim, nullptr, BigTable());
  Seed(&table, 50);
  DashboardReaderConfig cfg;
  cfg.top_k = 50;
  cfg.period_sec = 5.0;
  DashboardReader reader(&sim, &table, cfg);
  sim.RunUntil(51.0);
  // 10 refreshes x 50 keys.
  EXPECT_EQ(reader.total_reads(), 500u);
  EXPECT_EQ(reader.read_misses(), 0u);
  EXPECT_EQ(reader.throttled_reads(), 0u);
}

TEST(DashboardReaderTest, MissingKeysCountedAsMisses) {
  sim::Simulation sim;
  dynamodb::Table table(&sim, nullptr, BigTable());
  Seed(&table, 10);  // Only 10 of the top 50 exist.
  DashboardReaderConfig cfg;
  cfg.top_k = 50;
  cfg.period_sec = 5.0;
  DashboardReader reader(&sim, &table, cfg);
  sim.RunUntil(6.0);
  EXPECT_EQ(reader.total_reads(), 50u);
  EXPECT_EQ(reader.read_misses(), 40u);
}

TEST(DashboardReaderTest, ThrottleAbandonsRefreshCycle) {
  sim::Simulation sim;
  dynamodb::Table table(&sim, nullptr, BigTable(/*rcu=*/2.0));
  Seed(&table, 50);
  DashboardReaderConfig cfg;
  cfg.top_k = 50;
  cfg.period_sec = 5.0;
  DashboardReader reader(&sim, &table, cfg);
  sim.RunUntil(6.0);
  // ~2 RCU banked + trickle: far fewer than 50 reads succeed; the
  // cycle stops at the first throttle.
  EXPECT_GE(reader.throttled_reads(), 1u);
  EXPECT_LT(reader.total_reads(), 50u);
}

TEST(DashboardReaderTest, MultipleViewersMultiplyLoad) {
  sim::Simulation sim;
  dynamodb::Table table(&sim, nullptr, BigTable());
  Seed(&table, 20);
  DashboardReaderConfig cfg;
  cfg.top_k = 20;
  cfg.period_sec = 10.0;
  cfg.viewers = 4;
  DashboardReader reader(&sim, &table, cfg);
  sim.RunUntil(100.0);
  // ~9-10 refreshes per viewer x 4 viewers x 20 keys.
  EXPECT_NEAR(static_cast<double>(reader.total_reads()), 4 * 9.5 * 20,
              100.0);
}

TEST(DashboardReaderTest, StopHaltsReads) {
  sim::Simulation sim;
  dynamodb::Table table(&sim, nullptr, BigTable());
  Seed(&table, 10);
  DashboardReaderConfig cfg;
  cfg.top_k = 10;
  cfg.period_sec = 5.0;
  DashboardReader reader(&sim, &table, cfg);
  sim.RunUntil(20.0);
  uint64_t at_stop = reader.total_reads();
  reader.Stop();
  sim.RunUntil(60.0);
  EXPECT_EQ(reader.total_reads(), at_stop);
}

}  // namespace
}  // namespace flower::workload
