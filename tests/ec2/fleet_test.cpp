#include "ec2/fleet.h"

#include <gtest/gtest.h>

namespace flower::ec2 {
namespace {

InstanceType TestType() { return {"m4.large", 2, 2.0e6, 0.10}; }

TEST(InstanceCatalogTest, DefaultCatalogLookup) {
  EXPECT_GE(DefaultCatalog().size(), 4u);
  auto t = FindInstanceType("m4.large");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->vcpus, 2);
  EXPECT_EQ(FindInstanceType("nope").status().code(), StatusCode::kNotFound);
}

TEST(FleetTest, InitialCountIsRunningImmediately) {
  sim::Simulation sim;
  Fleet fleet(&sim, TestType(), 3, 90.0);
  EXPECT_EQ(fleet.running_count(), 3);
  EXPECT_EQ(fleet.requested_count(), 3);
  EXPECT_DOUBLE_EQ(fleet.TotalComputeCapacity(), 6.0e6);
}

TEST(FleetTest, ScaleUpTakesBootDelay) {
  sim::Simulation sim;
  Fleet fleet(&sim, TestType(), 2, 90.0);
  ASSERT_TRUE(fleet.SetDesiredCount(5).ok());
  EXPECT_EQ(fleet.requested_count(), 5);
  EXPECT_EQ(fleet.running_count(), 2);
  EXPECT_EQ(fleet.booting_count(), 3);
  sim.RunUntil(89.0);
  EXPECT_EQ(fleet.running_count(), 2);
  sim.RunUntil(91.0);
  EXPECT_EQ(fleet.running_count(), 5);
  EXPECT_EQ(fleet.booting_count(), 0);
}

TEST(FleetTest, ScaleDownIsImmediate) {
  sim::Simulation sim;
  Fleet fleet(&sim, TestType(), 5, 90.0);
  ASSERT_TRUE(fleet.SetDesiredCount(2).ok());
  EXPECT_EQ(fleet.running_count(), 2);
  EXPECT_EQ(fleet.requested_count(), 2);
}

TEST(FleetTest, ScaleDownCancelsInFlightBoots) {
  sim::Simulation sim;
  Fleet fleet(&sim, TestType(), 2, 90.0);
  ASSERT_TRUE(fleet.SetDesiredCount(10).ok());
  sim.RunUntil(10.0);
  ASSERT_TRUE(fleet.SetDesiredCount(1).ok());
  sim.RunUntil(200.0);  // Boot completions must not resurrect capacity.
  EXPECT_EQ(fleet.running_count(), 1);
  EXPECT_EQ(fleet.requested_count(), 1);
}

TEST(FleetTest, ScaleUpAfterCancelledScaleDownWorks) {
  sim::Simulation sim;
  Fleet fleet(&sim, TestType(), 4, 60.0);
  ASSERT_TRUE(fleet.SetDesiredCount(2).ok());
  ASSERT_TRUE(fleet.SetDesiredCount(6).ok());
  sim.RunUntil(100.0);
  EXPECT_EQ(fleet.running_count(), 6);
}

TEST(FleetTest, NegativeTargetRejected) {
  sim::Simulation sim;
  Fleet fleet(&sim, TestType(), 2, 90.0);
  EXPECT_FALSE(fleet.SetDesiredCount(-1).ok());
}

TEST(FleetTest, NoopWhenTargetEqualsRequested) {
  sim::Simulation sim;
  Fleet fleet(&sim, TestType(), 2, 90.0);
  ASSERT_TRUE(fleet.SetDesiredCount(2).ok());
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(FleetTest, CapacityChangeCallbackFires) {
  sim::Simulation sim;
  Fleet fleet(&sim, TestType(), 1, 30.0);
  int calls = 0;
  fleet.set_on_capacity_change([&] { ++calls; });
  ASSERT_TRUE(fleet.SetDesiredCount(3).ok());
  sim.RunUntil(100.0);
  EXPECT_EQ(calls, 2);  // Two instances became running.
  ASSERT_TRUE(fleet.SetDesiredCount(1).ok());
  EXPECT_EQ(calls, 3);  // Immediate scale-down change.
}

TEST(FleetTest, ScaleToZeroAllowed) {
  sim::Simulation sim;
  Fleet fleet(&sim, TestType(), 2, 30.0);
  ASSERT_TRUE(fleet.SetDesiredCount(0).ok());
  EXPECT_EQ(fleet.running_count(), 0);
  EXPECT_DOUBLE_EQ(fleet.TotalComputeCapacity(), 0.0);
}

}  // namespace
}  // namespace flower::ec2
