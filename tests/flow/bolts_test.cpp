#include "flow/bolts.h"

#include <gtest/gtest.h>

#include <vector>

namespace flower::flow {
namespace {

storm::Tuple Click(int64_t url, SimTime origin = 0.0) {
  storm::Tuple t;
  t.entity_id = url;
  t.origin_time = origin;
  t.value = 1.0;
  return t;
}

TEST(WindowCountBoltTest, EmitsAggregatesAtSlideBoundaries) {
  auto counter = SlidingWindowCounter::Create(60.0, 10.0).MoveValueOrDie();
  WindowCountBolt bolt(std::move(counter));
  std::vector<storm::Tuple> emitted;
  auto emit = [&](storm::Tuple t) { emitted.push_back(t); };

  // Three clicks on url 5 and one on url 9 in the first slide.
  ASSERT_TRUE(bolt.Execute(Click(5), 1.0, emit).ok());
  ASSERT_TRUE(bolt.Execute(Click(5), 3.0, emit).ok());
  ASSERT_TRUE(bolt.Execute(Click(9), 7.0, emit).ok());
  ASSERT_TRUE(bolt.Execute(Click(5), 9.0, emit).ok());
  EXPECT_TRUE(emitted.empty());  // No boundary crossed yet.

  // Crossing t=10 triggers one aggregate per tracked url.
  ASSERT_TRUE(bolt.Execute(Click(9), 11.0, emit).ok());
  ASSERT_EQ(emitted.size(), 2u);
  double url5 = 0.0, url9 = 0.0;
  for (const storm::Tuple& t : emitted) {
    if (t.entity_id == 5) url5 = t.value;
    if (t.entity_id == 9) url9 = t.value;
  }
  EXPECT_DOUBLE_EQ(url5, 3.0);
  EXPECT_DOUBLE_EQ(url9, 1.0);
  EXPECT_EQ(bolt.emitted_aggregates(), 2u);
}

TEST(WindowCountBoltTest, AggregateRespectsTupleWeight) {
  auto counter = SlidingWindowCounter::Create(10.0, 10.0).MoveValueOrDie();
  WindowCountBolt bolt(std::move(counter));
  std::vector<storm::Tuple> emitted;
  auto emit = [&](storm::Tuple t) { emitted.push_back(t); };
  storm::Tuple weighted = Click(1);
  weighted.value = 2.5;
  ASSERT_TRUE(bolt.Execute(weighted, 1.0, emit).ok());
  ASSERT_TRUE(bolt.Execute(Click(1), 12.0, emit).ok());
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_DOUBLE_EQ(emitted[0].value, 2.5);
}

TEST(PersistBoltTest, WritesAggregateToTable) {
  sim::Simulation sim;
  dynamodb::TableConfig cfg;
  cfg.initial_wcu = 100.0;
  dynamodb::Table table(&sim, nullptr, cfg);
  PersistBolt bolt(&table, 128);
  storm::Tuple agg = Click(7);
  agg.value = 42.0;
  ASSERT_TRUE(bolt.Execute(agg, 0.0, [](storm::Tuple) {}).ok());
  EXPECT_EQ(bolt.persisted(), 1u);
  auto item = table.GetItem(7, 128);
  ASSERT_TRUE(item.ok());
  EXPECT_DOUBLE_EQ(std::stod(*item), 42.0);
}

TEST(PersistBoltTest, PropagatesThrottleForBackpressure) {
  sim::Simulation sim;
  dynamodb::TableConfig cfg;
  cfg.initial_wcu = 1.0;
  cfg.burst_window_sec = 1.0;
  dynamodb::Table table(&sim, nullptr, cfg);
  PersistBolt bolt(&table, 128);
  ASSERT_TRUE(bolt.Execute(Click(1), 0.0, [](storm::Tuple) {}).ok());
  Status st = bolt.Execute(Click(2), 0.0, [](storm::Tuple) {});
  EXPECT_TRUE(st.IsRetryable());  // The cluster re-queues on this.
  EXPECT_EQ(bolt.persisted(), 1u);
}

}  // namespace
}  // namespace flower::flow
