#include "flow/sliding_window.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace flower::flow {
namespace {

struct Emission {
  int64_t entity;
  double count;
  SimTime window_end;
};

std::vector<Emission> Collect(SlidingWindowCounter* counter, SimTime t) {
  std::vector<Emission> out;
  counter->AdvanceTo(t, [&](int64_t e, double c, SimTime end) {
    out.push_back({e, c, end});
  });
  return out;
}

TEST(SlidingWindowTest, CreateValidatesParameters) {
  EXPECT_FALSE(SlidingWindowCounter::Create(0.0, 10.0).ok());
  EXPECT_FALSE(SlidingWindowCounter::Create(60.0, 0.0).ok());
  EXPECT_FALSE(SlidingWindowCounter::Create(60.0, 45.0).ok());  // Not multiple.
  EXPECT_FALSE(SlidingWindowCounter::Create(5.0, 10.0).ok());   // W < S.
  EXPECT_TRUE(SlidingWindowCounter::Create(60.0, 10.0).ok());
  EXPECT_TRUE(SlidingWindowCounter::Create(10.0, 10.0).ok());   // Tumbling.
}

TEST(SlidingWindowTest, CountsWithinOneWindow) {
  auto counter = SlidingWindowCounter::Create(60.0, 10.0).MoveValueOrDie();
  counter.Add(1, 2.0);
  counter.Add(1, 5.0);
  counter.Add(2, 7.0);
  auto emissions = Collect(&counter, 10.0);  // First slide boundary.
  ASSERT_EQ(emissions.size(), 2u);
  std::map<int64_t, double> got;
  for (const auto& e : emissions) {
    got[e.entity] = e.count;
    EXPECT_DOUBLE_EQ(e.window_end, 10.0);
  }
  EXPECT_DOUBLE_EQ(got[1], 2.0);
  EXPECT_DOUBLE_EQ(got[2], 1.0);
}

TEST(SlidingWindowTest, WindowSlidesAndExpiresOldBuckets) {
  auto counter = SlidingWindowCounter::Create(20.0, 10.0).MoveValueOrDie();
  counter.Add(1, 5.0);    // Bucket [0, 10).
  (void)Collect(&counter, 10.0);
  counter.Add(1, 15.0);   // Bucket [10, 20).
  auto at20 = Collect(&counter, 20.0);  // Window [0, 20): count 2.
  ASSERT_EQ(at20.size(), 1u);
  EXPECT_DOUBLE_EQ(at20[0].count, 2.0);
  // Window [10, 30) at boundary 30: only the t=15 event remains.
  auto at30 = Collect(&counter, 30.0);
  ASSERT_EQ(at30.size(), 1u);
  EXPECT_DOUBLE_EQ(at30[0].count, 1.0);
  // Window [20, 40): empty → no emissions.
  auto at40 = Collect(&counter, 40.0);
  EXPECT_TRUE(at40.empty());
}

TEST(SlidingWindowTest, MultipleBoundariesEmittedInOneAdvance) {
  auto counter = SlidingWindowCounter::Create(20.0, 10.0).MoveValueOrDie();
  counter.Add(1, 5.0);
  auto emissions = Collect(&counter, 35.0);  // Boundaries 10, 20, 30.
  // Entity 1 appears in windows ending at 10 and 20 (bucket [0,10) is
  // inside both), not 30.
  ASSERT_EQ(emissions.size(), 2u);
  EXPECT_DOUBLE_EQ(emissions[0].window_end, 10.0);
  EXPECT_DOUBLE_EQ(emissions[1].window_end, 20.0);
}

TEST(SlidingWindowTest, WeightsAccumulate) {
  auto counter = SlidingWindowCounter::Create(10.0, 10.0).MoveValueOrDie();
  counter.Add(7, 1.0, 2.5);
  counter.Add(7, 2.0, 0.5);
  auto emissions = Collect(&counter, 10.0);
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_DOUBLE_EQ(emissions[0].count, 3.0);
}

TEST(SlidingWindowTest, AdvanceBeforeAnyAddIsNoop) {
  auto counter = SlidingWindowCounter::Create(10.0, 10.0).MoveValueOrDie();
  EXPECT_TRUE(Collect(&counter, 100.0).empty());
}

TEST(SlidingWindowTest, TracksDistinctEntities) {
  auto counter = SlidingWindowCounter::Create(60.0, 10.0).MoveValueOrDie();
  for (int64_t e = 0; e < 25; ++e) counter.Add(e, 1.0);
  EXPECT_EQ(counter.tracked_entities(), 25u);
}

// Regression: a late arrival whose timestamp lands in an
// already-retired slide bucket used to resurrect a dead map bucket
// below `min_needed` — never emitted by any future window and never
// dropped (lost count + unbounded growth). It is now clamped into the
// oldest bucket that still feeds a future window.
TEST(SlidingWindowTest, LateArrivalIsClampedIntoOldestLiveBucket) {
  auto counter = SlidingWindowCounter::Create(20.0, 10.0).MoveValueOrDie();
  counter.Add(1, 5.0);                   // Bucket [0, 10).
  (void)Collect(&counter, 35.0);         // Boundaries 10, 20, 30 retire it.
  EXPECT_EQ(counter.late_clamped(), 0u);
  counter.Add(7, 5.0);                   // Late: bucket [0, 10) is dead.
  EXPECT_EQ(counter.late_clamped(), 1u);
  // The clamped count surfaces in the next window instead of vanishing.
  auto at40 = Collect(&counter, 40.0);
  ASSERT_EQ(at40.size(), 1u);
  EXPECT_EQ(at40[0].entity, 7);
  EXPECT_DOUBLE_EQ(at40[0].count, 1.0);
  // And it expires normally — no immortal bucket keeps it tracked.
  (void)Collect(&counter, 80.0);
  EXPECT_EQ(counter.tracked_entities(), 0u);
}

// tracked_entities() is maintained incrementally (the metrics path
// samples it every period); it must stay consistent through bucket
// expiry and entity reappearance.
TEST(SlidingWindowTest, TrackedEntitiesFollowsBucketLifetimes) {
  auto counter = SlidingWindowCounter::Create(20.0, 10.0).MoveValueOrDie();
  for (int64_t e = 0; e < 10; ++e) counter.Add(e, 1.0);
  EXPECT_EQ(counter.tracked_entities(), 10u);
  counter.Add(3, 12.0);  // Entity 3 spans two buckets: still 10 distinct.
  EXPECT_EQ(counter.tracked_entities(), 10u);
  (void)Collect(&counter, 25.0);  // Bucket [0, 10) dropped after 20.
  EXPECT_EQ(counter.tracked_entities(), 1u);  // Only entity 3 remains.
  (void)Collect(&counter, 60.0);
  EXPECT_EQ(counter.tracked_entities(), 0u);
  counter.Add(42, 65.0);
  EXPECT_EQ(counter.tracked_entities(), 1u);
}

TEST(SlidingWindowTest, TumblingWindowCountsExactlyOnce) {
  auto counter = SlidingWindowCounter::Create(10.0, 10.0).MoveValueOrDie();
  counter.Add(1, 3.0);
  auto first = Collect(&counter, 10.0);
  ASSERT_EQ(first.size(), 1u);
  // The event must not reappear in the next tumbling window.
  auto second = Collect(&counter, 20.0);
  EXPECT_TRUE(second.empty());
}

}  // namespace
}  // namespace flower::flow
