#include "flow/flow.h"

#include <gtest/gtest.h>

#include "workload/arrival.h"

namespace flower::flow {
namespace {

FlowConfig TestConfig() {
  FlowConfig cfg;
  cfg.stream.initial_shards = 4;
  cfg.stream.max_shards = 64;
  cfg.initial_workers = 4;
  cfg.instance_type = {"test.vm", 2, 1.0e6, 0.10};
  cfg.table.initial_wcu = 200.0;
  cfg.table.max_wcu = 5000.0;
  cfg.window_sec = 60.0;
  cfg.slide_sec = 10.0;
  return cfg;
}

workload::ClickStreamConfig Wl() {
  workload::ClickStreamConfig cfg;
  cfg.num_users = 5000;
  cfg.num_urls = 100;
  return cfg;
}

TEST(DataAnalyticsFlowTest, CreateValidates) {
  cloudwatch::MetricStore metrics;
  EXPECT_FALSE(DataAnalyticsFlow::Create(nullptr, &metrics, TestConfig()).ok());
  sim::Simulation sim;
  auto flow = DataAnalyticsFlow::Create(&sim, &metrics, TestConfig());
  ASSERT_TRUE(flow.ok());
  EXPECT_EQ((*flow)->stream().shard_count(), 4);
  EXPECT_EQ((*flow)->cluster().worker_count(), 4);
  EXPECT_DOUBLE_EQ((*flow)->table().provisioned_wcu(), 200.0);
}

TEST(DataAnalyticsFlowTest, WorkloadAttachOnlyOnce) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  auto flow =
      DataAnalyticsFlow::Create(&sim, &metrics, TestConfig()).MoveValueOrDie();
  EXPECT_FALSE(flow->AttachWorkload(nullptr, Wl(), 1).ok());
  ASSERT_TRUE(flow->AttachWorkload(
      std::make_shared<workload::ConstantArrival>(500.0), Wl(), 1).ok());
  EXPECT_EQ(flow->AttachWorkload(
      std::make_shared<workload::ConstantArrival>(500.0), Wl(), 1).code(),
      StatusCode::kAlreadyExists);
}

TEST(DataAnalyticsFlowTest, EndToEndRecordsReachStorage) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  auto flow =
      DataAnalyticsFlow::Create(&sim, &metrics, TestConfig()).MoveValueOrDie();
  ASSERT_TRUE(flow->AttachWorkload(
      std::make_shared<workload::ConstantArrival>(800.0), Wl(), 42).ok());
  sim.RunUntil(600.0);  // 10 simulated minutes.
  // Events were generated and none dropped (4 shards ≫ 800 rec/s).
  EXPECT_GT(flow->generator()->total_generated(), 400000u);
  EXPECT_EQ(flow->generator()->total_dropped(), 0u);
  // The topology processed tuples end to end.
  EXPECT_GT(flow->cluster().total_executed(), 0u);
  EXPECT_GT(flow->cluster().total_acked(), 0u);
  // Sliding-window aggregates were persisted: one item per active URL.
  EXPECT_GT(flow->table().ItemCount(), 50u);
  EXPECT_LE(flow->table().ItemCount(), 100u);
  EXPECT_GT(flow->table().total_writes(), 100u);
}

TEST(DataAnalyticsFlowTest, AggregateValuesAreWindowCounts) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  FlowConfig cfg = TestConfig();
  auto flow = DataAnalyticsFlow::Create(&sim, &metrics, cfg).MoveValueOrDie();
  workload::ClickStreamConfig wl = Wl();
  wl.num_urls = 1;  // Every click hits one URL.
  ASSERT_TRUE(flow->AttachWorkload(
      std::make_shared<workload::ConstantArrival>(100.0), wl, 42).ok());
  sim.RunUntil(300.0);
  // Item 0 holds the latest 60 s window count for URL 0: ~6000 clicks.
  auto item = flow->table().GetItem(0, 128);
  ASSERT_TRUE(item.ok());
  double count = std::stod(*item);
  EXPECT_NEAR(count, 6000.0, 1200.0);
}

TEST(DataAnalyticsFlowTest, UndersizedClusterSaturates) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  FlowConfig cfg = TestConfig();
  cfg.initial_workers = 1;
  cfg.instance_type.compute_units_per_sec = 2.0e5;  // Tiny VM.
  auto flow = DataAnalyticsFlow::Create(&sim, &metrics, cfg).MoveValueOrDie();
  ASSERT_TRUE(flow->AttachWorkload(
      std::make_shared<workload::ConstantArrival>(1000.0), Wl(), 42).ok());
  sim.RunUntil(300.0);
  EXPECT_GT(flow->cluster().LastTickCpuUtilizationPct(), 95.0);
}

TEST(DataAnalyticsFlowTest, MetricsPublishedForAllThreeLayers) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  auto flow =
      DataAnalyticsFlow::Create(&sim, &metrics, TestConfig()).MoveValueOrDie();
  ASSERT_TRUE(flow->AttachWorkload(
      std::make_shared<workload::ConstantArrival>(500.0), Wl(), 42).ok());
  sim.RunUntil(300.0);
  EXPECT_FALSE(metrics.ListMetrics("Flower/Kinesis").empty());
  EXPECT_FALSE(metrics.ListMetrics("Flower/Storm").empty());
  EXPECT_FALSE(metrics.ListMetrics("Flower/DynamoDB").empty());
}

TEST(DataAnalyticsFlowTest, SurvivesReshardMidRun) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  auto flow =
      DataAnalyticsFlow::Create(&sim, &metrics, TestConfig()).MoveValueOrDie();
  ASSERT_TRUE(flow->AttachWorkload(
      std::make_shared<workload::ConstantArrival>(600.0), Wl(), 42).ok());
  sim.RunUntil(120.0);
  uint64_t acked_before = flow->cluster().total_acked();
  // Grow then shrink the stream while traffic flows; the spout must
  // keep draining every shard through both transitions.
  ASSERT_TRUE(flow->stream().UpdateShardCount(16).ok());
  sim.RunUntil(300.0);
  EXPECT_EQ(flow->stream().shard_count(), 16);
  ASSERT_TRUE(flow->stream().UpdateShardCount(2).ok());
  sim.RunUntil(600.0);
  EXPECT_EQ(flow->stream().shard_count(), 2);
  EXPECT_GT(flow->cluster().total_acked(), acked_before);
  EXPECT_EQ(flow->generator()->total_dropped(), 0u);
  // The pipeline kept up: bounded end-of-run backlog.
  EXPECT_LT(flow->stream().BacklogRecords(), 30000u);
}

TEST(DataAnalyticsFlowTest, DeterministicAcrossRuns) {
  auto run = [] {
    sim::Simulation sim;
    cloudwatch::MetricStore metrics;
    auto flow = DataAnalyticsFlow::Create(&sim, &metrics, TestConfig())
                    .MoveValueOrDie();
    EXPECT_TRUE(flow->AttachWorkload(
        std::make_shared<workload::ConstantArrival>(500.0), Wl(), 42).ok());
    sim.RunUntil(300.0);
    return std::make_pair(flow->generator()->total_generated(),
                          flow->cluster().total_acked());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace flower::flow
