// Parameterized property suites: invariants that must hold across a
// sweep of configurations, not just hand-picked examples.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/random.h"
#include "common/units.h"
#include "core/controller_factory.h"
#include "core/resource_share.h"
#include "core/windowed_share.h"
#include "stats/forecast.h"
#include "dynamodb/table.h"
#include "flow/sliding_window.h"
#include "kinesis/stream.h"
#include "opt/grid_search.h"
#include "opt/nsga2.h"
#include "opt/pareto.h"
#include "stats/descriptive.h"

namespace flower {
namespace {

// ---------------------------------------------------------------------
// Property: every controller family, across demand levels, eventually
// drives a delay-free utilization plant into a stable neighbourhood of
// the reference, and never leaves the actuator limits.
// ---------------------------------------------------------------------

using ControllerPlantParam = std::tuple<core::ControllerKind, double>;

class ControllerPlantProperty
    : public ::testing::TestWithParam<ControllerPlantParam> {};

TEST_P(ControllerPlantProperty, ConvergesAndRespectsLimits) {
  auto [kind, demand] = GetParam();
  control::ActuatorLimits limits;
  limits.min = 1.0;
  limits.max = 400.0;
  auto controller = core::MakeController(kind, 60.0, limits);
  ASSERT_TRUE(controller.ok());
  (*controller)->Reset(10.0);
  // Plant: y = 100 * demand / (u * 100), clipped to [0, 100].
  double u = 10.0;
  double y_final = 0.0;
  for (int k = 0; k < 400; ++k) {
    double y = std::min(100.0, demand / u);
    y_final = y;
    auto next = (*controller)->Update(60.0 * k, y);
    ASSERT_TRUE(next.ok());
    EXPECT_GE(*next, limits.min);
    EXPECT_LE(*next, limits.max);
    u = *next;
  }
  // u* = demand / 60; integer actuators can sit one unit off, so accept
  // the band implied by +/-1.5 units around u*.
  double u_star = demand / 60.0;
  double tolerance =
      std::max(25.0, 100.0 * 1.5 / std::max(1.0, u_star));
  EXPECT_NEAR(y_final, 60.0, tolerance)
      << core::ControllerKindToString(kind) << " demand=" << demand;
}

INSTANTIATE_TEST_SUITE_P(
    AllFamiliesAcrossDemands, ControllerPlantProperty,
    ::testing::Combine(
        ::testing::Values(core::ControllerKind::kAdaptiveGain,
                          core::ControllerKind::kAdaptiveGainNoMemory,
                          core::ControllerKind::kFixedGain,
                          core::ControllerKind::kQuasiAdaptive,
                          core::ControllerKind::kTargetTracking),
        ::testing::Values(500.0, 2000.0, 12000.0)),
    [](const ::testing::TestParamInfo<ControllerPlantParam>& info) {
      std::string name = core::ControllerKindToString(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-' || c == '(' || c == ')') c = '_';
      }
      return name + "_d" +
             std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

// ---------------------------------------------------------------------
// Property: steady-state resource usage is monotone in demand for every
// integral-control family (more load never ends with fewer resources).
// ---------------------------------------------------------------------

class ControllerMonotonicityProperty
    : public ::testing::TestWithParam<core::ControllerKind> {};

TEST_P(ControllerMonotonicityProperty, MoreDemandMoreResources) {
  core::ControllerKind kind = GetParam();
  auto run = [&](double demand) {
    control::ActuatorLimits limits;
    limits.min = 1.0;
    limits.max = 400.0;
    auto controller = core::MakeController(kind, 60.0, limits);
    EXPECT_TRUE(controller.ok());
    (*controller)->Reset(5.0);
    double u = 5.0;
    for (int k = 0; k < 300; ++k) {
      double y = std::min(100.0, demand / u);
      auto next = (*controller)->Update(60.0 * k, y);
      EXPECT_TRUE(next.ok());
      u = *next;
    }
    return u;
  };
  double u_low = run(1000.0);
  double u_mid = run(4000.0);
  double u_high = run(16000.0);
  EXPECT_LE(u_low, u_mid) << core::ControllerKindToString(kind);
  EXPECT_LE(u_mid, u_high) << core::ControllerKindToString(kind);
}

INSTANTIATE_TEST_SUITE_P(
    IntegralFamilies, ControllerMonotonicityProperty,
    ::testing::Values(core::ControllerKind::kAdaptiveGain,
                      core::ControllerKind::kFixedGain,
                      core::ControllerKind::kQuasiAdaptive,
                      core::ControllerKind::kTargetTracking),
    [](const ::testing::TestParamInfo<core::ControllerKind>& info) {
      std::string name = core::ControllerKindToString(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------
// Property: Kinesis never admits more than the provisioned write rate
// plus the initial token bank, for any shard count and offered load.
// ---------------------------------------------------------------------

using KinesisParam = std::tuple<int, double>;  // (shards, overload factor)

class KinesisAdmissionProperty
    : public ::testing::TestWithParam<KinesisParam> {};

TEST_P(KinesisAdmissionProperty, NeverExceedsProvisionedRate) {
  auto [shards, factor] = GetParam();
  sim::Simulation sim;
  kinesis::StreamConfig cfg;
  cfg.initial_shards = shards;
  cfg.max_shards = 64;
  kinesis::Stream stream(&sim, nullptr, cfg);
  double capacity = shards * kKinesisShardWriteRecordsPerSec;
  double offered_per_sec = capacity * factor;
  const double kDur = 30.0;
  Rng rng(11);
  uint64_t offered = 0;
  ASSERT_TRUE(sim.SchedulePeriodic(1.0, 1.0, [&] {
    auto n = static_cast<int64_t>(offered_per_sec);
    for (int64_t i = 0; i < n; ++i) {
      kinesis::Record r;
      r.partition_key = static_cast<uint64_t>(rng.UniformInt(0, 1 << 30));
      r.size_bytes = 64;
      ++offered;
      (void)stream.PutRecord(r);
    }
    return sim.Now() < kDur;
  }).ok());
  sim.RunUntil(kDur);
  // Admission bound: rate * duration + one bucket of banked tokens.
  double bound = capacity * kDur + capacity;
  EXPECT_LE(static_cast<double>(stream.total_incoming()), bound * 1.001);
  if (factor <= 0.8) {
    // Under capacity nothing may throttle.
    EXPECT_EQ(stream.total_throttled(), 0u);
    EXPECT_EQ(stream.total_incoming(), offered);
  } else if (factor >= 1.5) {
    EXPECT_GT(stream.total_throttled(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShardAndLoadSweep, KinesisAdmissionProperty,
    ::testing::Combine(::testing::Values(1, 2, 8),
                       ::testing::Values(0.5, 0.8, 1.5, 3.0)),
    [](const ::testing::TestParamInfo<KinesisParam>& info) {
      return "s" + std::to_string(std::get<0>(info.param)) + "_x" +
             std::to_string(
                 static_cast<int>(std::get<1>(info.param) * 10.0));
    });

// ---------------------------------------------------------------------
// Property: DynamoDB admission over any run never exceeds provisioned
// rate x time + the burst bank, for any capacity/burst setting.
// ---------------------------------------------------------------------

using DynamoParam = std::tuple<double, double>;  // (wcu, burst window)

class DynamoAdmissionProperty : public ::testing::TestWithParam<DynamoParam> {
};

TEST_P(DynamoAdmissionProperty, RespectsCapacityContract) {
  auto [wcu, burst] = GetParam();
  sim::Simulation sim;
  dynamodb::TableConfig cfg;
  cfg.initial_wcu = wcu;
  cfg.burst_window_sec = burst;
  dynamodb::Table table(&sim, nullptr, cfg);
  const double kDur = 20.0;
  int64_t key = 0;
  ASSERT_TRUE(sim.SchedulePeriodic(1.0, 1.0, [&] {
    for (int i = 0; i < 1000; ++i) {
      (void)table.PutItem(key++, "v", 100);  // 1 WCU each.
    }
    return sim.Now() < kDur;
  }).ok());
  sim.RunUntil(kDur);
  double bound = wcu * kDur + wcu * burst;
  EXPECT_LE(static_cast<double>(table.total_writes()), bound * 1.001);
  EXPECT_GT(table.total_throttled_writes(), 0u);  // 1000/s >> any cfg.
}

INSTANTIATE_TEST_SUITE_P(
    CapacityAndBurstSweep, DynamoAdmissionProperty,
    ::testing::Combine(::testing::Values(5.0, 50.0, 200.0),
                       ::testing::Values(1.0, 30.0, 300.0)),
    [](const ::testing::TestParamInfo<DynamoParam>& info) {
      return "w" + std::to_string(static_cast<int>(std::get<0>(info.param))) +
             "_b" + std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

// ---------------------------------------------------------------------
// Property: for any seed, NSGA-II returns a mutually non-dominated,
// feasible front on the Fig.-4-style provisioning problem, and the
// run is reproducible.
// ---------------------------------------------------------------------

class Nsga2SeedProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Nsga2SeedProperty, FrontIsValidAndReproducible) {
  core::ResourceShareRequest req;
  req.hourly_budget_usd = 1.0;
  req.bounds[0] = {1.0, 30.0};
  req.bounds[1] = {1.0, 15.0};
  req.bounds[2] = {1.0, 300.0};
  req.constraints.push_back(core::LinearConstraint::AtLeast(
      core::Layer::kAnalytics, 5.0, core::Layer::kIngestion, 1.0));
  core::ShareProblem problem(req);

  opt::Nsga2Config cfg;
  cfg.population_size = 60;
  cfg.generations = 60;
  cfg.seed = GetParam();
  auto res1 = opt::Nsga2(cfg).Solve(problem);
  auto res2 = opt::Nsga2(cfg).Solve(problem);
  ASSERT_TRUE(res1.ok());
  ASSERT_TRUE(res2.ok());
  ASSERT_FALSE(res1->pareto_front.empty());

  // Reproducibility.
  ASSERT_EQ(res1->pareto_front.size(), res2->pareto_front.size());
  for (size_t i = 0; i < res1->pareto_front.size(); ++i) {
    EXPECT_EQ(res1->pareto_front[i].x, res2->pareto_front[i].x);
  }
  // Feasibility + mutual non-domination.
  for (const opt::Solution& s : res1->pareto_front) {
    std::vector<double> obj, viol;
    problem.Evaluate(s.x, &obj, &viol);
    for (double v : viol) EXPECT_LE(v, 1e-9);
    for (const opt::Solution& t : res1->pareto_front) {
      if (&s == &t) continue;
      EXPECT_FALSE(opt::Dominates(t.objectives, s.objectives));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Nsga2SeedProperty,
                         ::testing::Values(1u, 7u, 42u, 1337u, 99999u));

// ---------------------------------------------------------------------
// Property: percentile is monotone in p and bounded by min/max, for
// random samples of any size.
// ---------------------------------------------------------------------

class PercentileProperty : public ::testing::TestWithParam<int> {};

TEST_P(PercentileProperty, MonotoneAndBounded) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<double> xs;
  for (int i = 0; i < GetParam(); ++i) xs.push_back(rng.Normal(50, 20));
  stats::Summary s = stats::Summarize(xs);
  double prev = -1e300;
  for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    auto v = stats::Percentile(xs, p);
    ASSERT_TRUE(v.ok());
    EXPECT_GE(*v, s.min - 1e-9);
    EXPECT_LE(*v, s.max + 1e-9);
    EXPECT_GE(*v, prev);
    prev = *v;
  }
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, PercentileProperty,
                         ::testing::Values(1, 2, 3, 10, 100, 1000));

// ---------------------------------------------------------------------
// Property: the sliding-window counter credits each event to exactly
// window/slide consecutive emissions (mass conservation), for any
// valid (window, slide) pair.
// ---------------------------------------------------------------------

using WindowParam = std::tuple<double, double>;  // (window, slide)

class SlidingWindowProperty : public ::testing::TestWithParam<WindowParam> {};

TEST_P(SlidingWindowProperty, EventMassConserved) {
  auto [window, slide] = GetParam();
  auto counter = flow::SlidingWindowCounter::Create(window, slide)
                     .MoveValueOrDie();
  Rng rng(5);
  const int kEvents = 500;
  double t = 0.0;
  for (int i = 0; i < kEvents; ++i) {
    t += rng.Exponential(1.0);  // ~1 event/s.
    counter.Add(7, t);
  }
  // Advance far enough that every event left every window.
  double emitted_total = 0.0;
  counter.AdvanceTo(t + 2.0 * window + 2.0 * slide,
                    [&](int64_t entity, double count, SimTime) {
                      EXPECT_EQ(entity, 7);
                      emitted_total += count;
                    });
  double expected = static_cast<double>(kEvents) * (window / slide);
  EXPECT_NEAR(emitted_total, expected, 1e-6)
      << "window=" << window << " slide=" << slide;
}

INSTANTIATE_TEST_SUITE_P(
    WindowShapes, SlidingWindowProperty,
    ::testing::Values(WindowParam{10.0, 10.0}, WindowParam{60.0, 10.0},
                      WindowParam{60.0, 30.0}, WindowParam{300.0, 60.0},
                      WindowParam{120.0, 1.0}),
    [](const ::testing::TestParamInfo<WindowParam>& info) {
      return "w" + std::to_string(static_cast<int>(std::get<0>(info.param))) +
             "_s" + std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

// ---------------------------------------------------------------------
// Property: after observing two full seasons of a perfectly periodic
// signal, the seasonal-naive forecaster is exact at every horizon, for
// any (season, step) shape.
// ---------------------------------------------------------------------

using SeasonParam = std::tuple<double, double>;  // (season, step)

class SeasonalForecastProperty
    : public ::testing::TestWithParam<SeasonParam> {};

TEST_P(SeasonalForecastProperty, ExactOnPeriodicSignal) {
  auto [season, step] = GetParam();
  stats::SeasonalNaiveForecaster f(season, step);
  auto signal = [&](double t) {
    return 10.0 + 5.0 * std::sin(2.0 * M_PI * t / season) +
           2.0 * std::cos(6.0 * M_PI * t / season);
  };
  double t = 0.0;
  for (; t < 2.0 * season; t += step) f.Observe(t, signal(t));
  for (int k = 1; k <= 8; ++k) {
    double h = k * step;
    auto pred = f.Forecast(h);
    ASSERT_TRUE(pred.ok());
    EXPECT_NEAR(*pred, signal(t - step + h), 1e-9)
        << "season=" << season << " step=" << step << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeasonShapes, SeasonalForecastProperty,
    ::testing::Values(SeasonParam{kDay, kHour},
                      SeasonParam{kDay, 10.0 * kMinute},
                      SeasonParam{kHour, kMinute},
                      SeasonParam{7.0 * kDay, 6.0 * kHour}),
    [](const ::testing::TestParamInfo<SeasonParam>& info) {
      return "s" + std::to_string(static_cast<int>(std::get<0>(info.param))) +
             "_p" + std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

// ---------------------------------------------------------------------
// Property: for any budget, every budget-feasible window plan covers
// its demand in all three layers and stays within the budget; flagged
// windows report honestly (demand cost above budget).
// ---------------------------------------------------------------------

class WindowedPlannerProperty : public ::testing::TestWithParam<double> {};

TEST_P(WindowedPlannerProperty, PlansCoverDemandWithinBudget) {
  double budget = GetParam();
  core::ResourceShareRequest base;
  base.hourly_budget_usd = budget;
  base.bounds[0] = {1.0, 64.0};
  base.bounds[1] = {1.0, 40.0};
  base.bounds[2] = {1.0, 4000.0};
  core::DemandModel model;
  opt::Nsga2Config solver;
  solver.population_size = 40;
  solver.generations = 40;
  core::WindowedShareAnalyzer analyzer(base, model, solver);
  TimeSeries forecast("rate");
  for (int i = 0; i < 12; ++i) {
    forecast.AppendUnchecked(i * kHour,
                             400.0 + 250.0 * (i % 4));
  }
  auto plans = analyzer.PlanHorizon(forecast, 3.0 * kHour);
  ASSERT_TRUE(plans.ok());
  ASSERT_FALSE(plans->empty());
  for (const core::WindowPlan& wp : *plans) {
    double demand_cost = 0.0;
    for (int i = 0; i < core::kNumLayers; ++i) {
      demand_cost += wp.demand.shares[i] * base.unit_price[i];
    }
    if (wp.within_budget) {
      EXPECT_LE(wp.plan.hourly_cost_usd, budget + 1e-9);
      for (int i = 0; i < core::kNumLayers; ++i) {
        EXPECT_GE(wp.plan.shares[i], wp.demand.shares[i]);
      }
    } else {
      EXPECT_GT(demand_cost, budget);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, WindowedPlannerProperty,
                         ::testing::Values(0.5, 1.0, 2.0, 5.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "b" + std::to_string(static_cast<int>(
                                            info.param * 10.0));
                         });

}  // namespace
}  // namespace flower
