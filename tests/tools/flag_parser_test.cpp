#include "tools/flag_parser.h"

#include <gtest/gtest.h>

namespace flower::tools {
namespace {

FlagParser MustParse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  auto parsed = FlagParser::Parse(static_cast<int>(argv.size()),
                                  argv.data());
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return parsed.MoveValueOrDie();
}

TEST(FlagParserTest, KeyValueAndBareFlags) {
  FlagParser flags = MustParse({"--rate=800", "--quiet"});
  EXPECT_TRUE(flags.Has("rate"));
  EXPECT_TRUE(flags.Has("quiet"));
  EXPECT_FALSE(flags.Has("hours"));
  EXPECT_EQ(flags.GetString("rate", ""), "800");
  EXPECT_TRUE(flags.GetBool("quiet"));
}

TEST(FlagParserTest, TypedGettersWithDefaults) {
  FlagParser flags = MustParse({"--rate=800.5", "--seed=42"});
  EXPECT_DOUBLE_EQ(*flags.GetDouble("rate", 0.0), 800.5);
  EXPECT_EQ(*flags.GetInt("seed", 0), 42);
  EXPECT_DOUBLE_EQ(*flags.GetDouble("missing", 3.5), 3.5);
  EXPECT_EQ(*flags.GetInt("missing", 7), 7);
  EXPECT_EQ(flags.GetString("missing", "x"), "x");
}

TEST(FlagParserTest, MalformedNumbersAreErrors) {
  FlagParser flags = MustParse({"--rate=fast", "--seed=4x"});
  EXPECT_FALSE(flags.GetDouble("rate", 0.0).ok());
  EXPECT_FALSE(flags.GetInt("seed", 0).ok());
}

TEST(FlagParserTest, BoolSemantics) {
  FlagParser flags = MustParse({"--a=false", "--b=0", "--c=true", "--d"});
  EXPECT_FALSE(flags.GetBool("a"));
  EXPECT_FALSE(flags.GetBool("b"));
  EXPECT_TRUE(flags.GetBool("c"));
  EXPECT_TRUE(flags.GetBool("d"));
  EXPECT_TRUE(flags.GetBool("missing", true));
  EXPECT_FALSE(flags.GetBool("missing", false));
}

TEST(FlagParserTest, RejectsNonFlagsAndDuplicates) {
  const char* bad1[] = {"prog", "positional"};
  EXPECT_FALSE(FlagParser::Parse(2, bad1).ok());
  const char* bad2[] = {"prog", "--a=1", "--a=2"};
  EXPECT_FALSE(FlagParser::Parse(3, bad2).ok());
  const char* bad3[] = {"prog", "--"};
  EXPECT_FALSE(FlagParser::Parse(2, bad3).ok());
}

TEST(FlagParserTest, UnknownKeysDetected) {
  FlagParser flags = MustParse({"--rate=1", "--tpyo=2"});
  auto unknown = flags.UnknownKeys({"rate", "hours"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "tpyo");
}

TEST(FlagParserTest, ValueMayContainEquals) {
  FlagParser flags = MustParse({"--expr=a=b"});
  EXPECT_EQ(flags.GetString("expr", ""), "a=b");
}

TEST(FlagParserTest, EmptyArgvIsOk) {
  const char* argv[] = {"prog"};
  auto parsed = FlagParser::Parse(1, argv);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->Has("anything"));
}

}  // namespace
}  // namespace flower::tools
