#include "exec/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "exec/sub_rng.h"

namespace flower::exec {
namespace {

TEST(ThreadPoolTest, EmptyRangeReturnsOkWithoutInvokingBody) {
  ThreadPool pool(4);
  int calls = 0;
  Status s = pool.ParallelFor(0, 0, 1, [&](size_t) {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 0);

  // begin == end in the middle of the index space is also empty.
  s = pool.ParallelFor(7, 7, 3, [&](size_t) {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, GrainLargerThanRangeRunsInlineOnCallingThread) {
  ThreadPool pool(4);
  std::thread::id caller = std::this_thread::get_id();
  std::vector<size_t> seen;
  Status s = pool.ParallelFor(2, 6, 100, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    seen.push_back(i);
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(seen, (std::vector<size_t>{2, 3, 4, 5}));
}

TEST(ThreadPoolTest, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  Status s = pool.ParallelFor(0, kN, 7, [&](size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, GrainZeroIsTreatedAsOne) {
  ThreadPool pool(2);
  std::atomic<size_t> visited{0};
  Status s = pool.ParallelFor(0, 10, 0, [&](size_t) {
    visited.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(visited.load(), 10u);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInlineAndStopsAtFirstError) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<size_t> seen;
  Status s = pool.ParallelFor(0, 10, 1, [&](size_t i) -> Status {
    seen.push_back(i);
    if (i == 3) return Status::Internal("boom at 3");
    return Status::OK();
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  // Inline execution is ordered, so nothing past the failing index runs.
  EXPECT_EQ(seen, (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(ThreadPoolTest, ParallelErrorWinsAndDrainsRemainingChunks) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::atomic<size_t> executed{0};
  Status s = pool.ParallelFor(0, kN, 1, [&](size_t i) -> Status {
    if (i == 17) return Status::InvalidArgument("bad index 17");
    executed.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // Draining must skip at least some of the remaining work; with 10k
  // one-index chunks and the failure at index 17 this is deterministic
  // enough to assert a strict bound.
  EXPECT_LT(executed.load(), kN);
}

TEST(ThreadPoolTest, FirstErrorIsReturnedWhenSeveralChunksFail) {
  ThreadPool pool(4);
  Status s = pool.ParallelFor(0, 100, 1, [&](size_t i) -> Status {
    return Status::Internal("fail " + std::to_string(i));
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  // Exactly one of the per-index messages survives — never a torn mix.
  EXPECT_NE(s.message().find("fail "), std::string::npos);
}

TEST(ThreadPoolTest, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossSweeps) {
  ThreadPool pool(3);
  for (int sweep = 0; sweep < 20; ++sweep) {
    std::atomic<size_t> visited{0};
    Status s = pool.ParallelFor(0, 64, 4, [&](size_t) {
      visited.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    });
    ASSERT_TRUE(s.ok()) << "sweep " << sweep;
    ASSERT_EQ(visited.load(), 64u) << "sweep " << sweep;
  }
}

TEST(ThreadPoolTest, ResultIndependentOfThreadCountAndGrain) {
  // A reduction whose per-index terms come from SubRng must not depend
  // on how the sweep is chunked or how many workers run it.
  constexpr size_t kN = 257;  // Deliberately not a multiple of any grain.
  auto run = [](size_t threads, size_t grain) {
    ThreadPool pool(threads);
    std::vector<double> out(kN, 0.0);
    Status s = pool.ParallelFor(0, kN, grain, [&](size_t i) {
      Rng rng = SubRng(/*master_seed=*/42, /*stream=*/3, i);
      out[i] = rng.Uniform();
      return Status::OK();
    });
    EXPECT_TRUE(s.ok());
    return out;
  };
  std::vector<double> baseline = run(1, 1);
  EXPECT_EQ(run(2, 1), baseline);
  EXPECT_EQ(run(4, 3), baseline);
  EXPECT_EQ(run(8, 64), baseline);
}

TEST(RunTasksTest, EmptySeedListReturnsOkWithoutInvokingBody) {
  ThreadPool pool(4);
  int calls = 0;
  TaskStats stats;
  Status s = pool.RunTasks({}, [&](uint64_t, ThreadPool::TaskContext&) {
    ++calls;
    return Status::OK();
  }, &stats);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(stats.executed, 0u);
}

TEST(RunTasksTest, EverySeedExecutedExactlyOnce) {
  ThreadPool pool(4);
  constexpr uint64_t kN = 500;
  std::vector<uint64_t> seeds(kN);
  for (uint64_t i = 0; i < kN; ++i) seeds[i] = i;
  std::vector<std::atomic<int>> counts(kN);
  TaskStats stats;
  Status s = pool.RunTasks(seeds, [&](uint64_t id, ThreadPool::TaskContext&) {
    counts[id].fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }, &stats);
  ASSERT_TRUE(s.ok());
  for (uint64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "task " << i;
  }
  EXPECT_EQ(stats.executed, kN);
  EXPECT_EQ(stats.spawned, 0u);
}

TEST(RunTasksTest, SpawnedChainsRunToCompletion) {
  // One seed fans out a binary tree of follow-up tasks; the sweep must
  // drain every transitively spawned id before returning.
  ThreadPool pool(4);
  constexpr uint64_t kLeafCount = 128;  // Ids [1, 2*kLeafCount).
  std::vector<std::atomic<int>> counts(2 * kLeafCount);
  TaskStats stats;
  Status s = pool.RunTasks(
      {1},
      [&](uint64_t id, ThreadPool::TaskContext& ctx) {
        counts[id].fetch_add(1, std::memory_order_relaxed);
        if (2 * id < 2 * kLeafCount) {
          ctx.Spawn(2 * id);
          if (2 * id + 1 < 2 * kLeafCount) ctx.Spawn(2 * id + 1);
        }
        return Status::OK();
      },
      &stats);
  ASSERT_TRUE(s.ok());
  for (uint64_t id = 1; id < 2 * kLeafCount; ++id) {
    EXPECT_EQ(counts[id].load(), 1) << "task " << id;
  }
  EXPECT_EQ(stats.executed, 2 * kLeafCount - 1);
  EXPECT_EQ(stats.spawned, 2 * kLeafCount - 2);
}

TEST(RunTasksTest, SingleThreadPoolRunsInlineInFifoOrder) {
  // The 1-thread determinism anchor: seeds run in order, spawns append
  // to the back — exactly the order the fleet's digest reduction
  // assumes when it equates a 1-thread sweep with the lock-step one.
  ThreadPool pool(1);
  std::vector<uint64_t> order;
  Status s = pool.RunTasks(
      {1, 2, 3},
      [&](uint64_t id, ThreadPool::TaskContext& ctx) {
        EXPECT_EQ(ctx.worker(), 0u);
        order.push_back(id);
        if (id < 10) ctx.Spawn(id + 10);
        return Status::OK();
      });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(order, (std::vector<uint64_t>{1, 2, 3, 11, 12, 13}));
}

TEST(RunTasksTest, FirstErrorWinsAndDrainsRemainingTasks) {
  ThreadPool pool(1);  // Inline: deterministic failure point.
  std::vector<uint64_t> seeds(100);
  for (uint64_t i = 0; i < 100; ++i) seeds[i] = i;
  size_t executed = 0;
  Status s = pool.RunTasks(seeds,
                           [&](uint64_t id, ThreadPool::TaskContext&) -> Status {
                             ++executed;
                             if (id == 5) return Status::Internal("boom at 5");
                             return Status::OK();
                           });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  // Inline FIFO: tasks 0..5 ran, everything after was drained.
  EXPECT_EQ(executed, 6u);
}

TEST(RunTasksTest, ParallelErrorStopsSpawning) {
  ThreadPool pool(4);
  std::atomic<size_t> executed{0};
  std::vector<uint64_t> seeds(1000);
  for (uint64_t i = 0; i < 1000; ++i) seeds[i] = i;
  Status s = pool.RunTasks(seeds,
                           [&](uint64_t id, ThreadPool::TaskContext&) -> Status {
                             if (id == 3) return Status::InvalidArgument("bad");
                             executed.fetch_add(1, std::memory_order_relaxed);
                             return Status::OK();
                           });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_LT(executed.load(), 1000u);
}

TEST(RunTasksTest, IdleWorkersStealFromLoadedDeques) {
  // All work spawns from one seed, so it lands on a single deque; idle
  // workers must steal it. Tasks sleep long enough that the spawning
  // worker cannot race through the whole backlog alone.
  ThreadPool pool(4);
  constexpr uint64_t kFollowUps = 64;
  std::atomic<size_t> executed{0};
  TaskStats stats;
  Status s = pool.RunTasks(
      {0},
      [&](uint64_t id, ThreadPool::TaskContext& ctx) {
        if (id == 0) {
          for (uint64_t k = 1; k <= kFollowUps; ++k) ctx.Spawn(k);
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        executed.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      },
      &stats);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(executed.load(), kFollowUps + 1);
  EXPECT_EQ(stats.executed, kFollowUps + 1);
  EXPECT_EQ(stats.spawned, kFollowUps);
  EXPECT_GT(stats.steals, 0u);
  EXPECT_GT(stats.busy_sec, 0.0);
}

TEST(RunTasksTest, PoolIsReusableAcrossTaskSweepsAndParallelFor) {
  // Chunked sweeps and task sweeps interleave on one pool without
  // leaking state between modes.
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    std::atomic<size_t> visited{0};
    ASSERT_TRUE(pool.ParallelFor(0, 32, 4, [&](size_t) {
      visited.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }).ok());
    ASSERT_EQ(visited.load(), 32u) << "round " << round;
    std::atomic<size_t> ran{0};
    ASSERT_TRUE(pool.RunTasks({1, 2, 3, 4},
                              [&](uint64_t, ThreadPool::TaskContext&) {
                                ran.fetch_add(1, std::memory_order_relaxed);
                                return Status::OK();
                              }).ok());
    ASSERT_EQ(ran.load(), 4u) << "round " << round;
  }
}

TEST(SubRngTest, SameCellSameSequence) {
  Rng a = SubRng(99, 5, 11);
  Rng b = SubRng(99, 5, 11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(SubRngTest, DistinctCellsGiveDistinctSeeds) {
  // Any two of master/stream/index differing must change the seed.
  std::set<uint64_t> seeds;
  for (uint64_t master : {0ull, 1ull, 42ull}) {
    for (uint64_t stream : {0ull, 1ull, 7ull}) {
      for (uint64_t index : {0ull, 1ull, 1000ull}) {
        seeds.insert(DeriveSeed(master, stream, index));
      }
    }
  }
  EXPECT_EQ(seeds.size(), 27u);
}

TEST(SubRngTest, StreamAndIndexAreNotInterchangeable) {
  // (stream=1, index=2) and (stream=2, index=1) must be different
  // cells; a naive xor of the two coordinates would collide here.
  EXPECT_NE(DeriveSeed(7, 1, 2), DeriveSeed(7, 2, 1));
  EXPECT_NE(DeriveSeed(7, 0, 3), DeriveSeed(7, 3, 0));
}

TEST(SubRngTest, Mix64AvalanchesSingleBitFlips) {
  // Flipping one input bit should flip roughly half the output bits.
  uint64_t base = Mix64(0x123456789ABCDEFull);
  for (int bit = 0; bit < 64; ++bit) {
    uint64_t flipped = Mix64(0x123456789ABCDEFull ^ (1ull << bit));
    int diff = __builtin_popcountll(base ^ flipped);
    EXPECT_GE(diff, 16) << "bit " << bit;
    EXPECT_LE(diff, 48) << "bit " << bit;
  }
}

}  // namespace
}  // namespace flower::exec
