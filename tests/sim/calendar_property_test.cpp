// Property test pinning the timer-wheel calendar (sim::Simulation) to
// the binary-heap calendar it replaced (sim::RefCalendar): identical
// randomized schedules must execute in byte-identical order on both
// engines. Covers the order-sensitive corners the wheel must preserve:
// same-instant FIFO bursts, periodics landing exactly on RunUntil
// boundaries, in-callback reschedules (including zero-delay chains),
// far-future events beyond the 64 s wheel horizon, Step interleaves,
// and RunUntil calls in the past.

#include <random>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/ref_calendar.h"
#include "sim/simulation.h"

namespace flower::sim {
namespace {

using Log = std::vector<std::pair<int, SimTime>>;

/// Drives one engine through a seeded randomized schedule, recording
/// (event id, firing time) for every execution. Both engines are run
/// with the same seed; the random draws made inside callbacks happen in
/// execution order, so any order divergence makes the logs differ (the
/// failure we are hunting) rather than masking itself.
template <typename Engine>
class ScriptRunner {
 public:
  explicit ScriptRunner(uint64_t seed) : rng_(seed) {}

  Log Run() {
    // Bursts at a handful of shared instants: FIFO within an instant.
    for (int i = 0; i < 48; ++i) {
      ScheduleOneShot(static_cast<double>(rng_() % 7) * 2.5);
    }
    // Far-future events beyond the 64 s wheel horizon (overflow heap).
    for (int i = 0; i < 16; ++i) {
      ScheduleOneShot(70.0 + static_cast<double>(rng_() % 4000) * 0.1);
    }
    // Periodics; the first lands exactly on the RunUntil(10.0) boundary.
    AddPeriodic(2.5, 2.5, 9);
    AddPeriodic(1.0, 3.0, 12);
    AddPeriodic(0.75, 0.5, 40);
    eng_.RunUntil(10.0);
    eng_.RunUntil(4.0);  // In the past: must be a no-op.
    for (int i = 0; i < 7; ++i) eng_.Step();
    eng_.RunUntil(80.0);
    while (eng_.Step()) {
    }
    log_.emplace_back(-1, eng_.Now());
    log_.emplace_back(static_cast<int>(eng_.events_executed()),
                      static_cast<double>(eng_.pending_events()));
    return log_;
  }

 private:
  void ScheduleOneShot(double t) {
    int id = next_id_++;
    Status st = eng_.ScheduleAt(t, [this, id] { OnFire(id); });
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  void AddPeriodic(double start, double period, int fires) {
    int id = next_id_++;
    auto left = std::make_shared<int>(fires);
    Status st = eng_.SchedulePeriodic(start, period, [this, id, left] {
      log_.emplace_back(id, eng_.Now());
      return --*left > 0;
    });
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  void OnFire(int id) {
    log_.emplace_back(id, eng_.Now());
    if (budget_ <= 0) return;
    uint64_t roll = rng_() % 100;
    // In-callback reschedules: zero-delay (same instant, later seq),
    // sub-tick, near-future, and past-the-horizon.
    if (roll < 25) {
      --budget_;
      int id2 = next_id_++;
      (void)eng_.ScheduleAfter(0.0, [this, id2] { OnFire(id2); });
    } else if (roll < 45) {
      --budget_;
      int id2 = next_id_++;
      (void)eng_.ScheduleAfter(0.003, [this, id2] { OnFire(id2); });
    } else if (roll < 65) {
      --budget_;
      int id2 = next_id_++;
      (void)eng_.ScheduleAfter(3.7, [this, id2] { OnFire(id2); });
    } else if (roll < 75) {
      --budget_;
      int id2 = next_id_++;
      (void)eng_.ScheduleAfter(120.0, [this, id2] { OnFire(id2); });
    }
  }

  Engine eng_;
  std::mt19937_64 rng_;
  Log log_;
  int next_id_ = 0;
  int budget_ = 200;
};

TEST(CalendarPropertyTest, RandomizedSchedulesMatchReference) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Log wheel = ScriptRunner<Simulation>(seed).Run();
    Log heap = ScriptRunner<RefCalendar>(seed).Run();
    ASSERT_EQ(wheel.size(), heap.size()) << "seed " << seed;
    for (size_t i = 0; i < wheel.size(); ++i) {
      ASSERT_EQ(wheel[i].first, heap[i].first)
          << "seed " << seed << " divergence at step " << i;
      ASSERT_DOUBLE_EQ(wheel[i].second, heap[i].second)
          << "seed " << seed << " divergence at step " << i;
    }
  }
}

TEST(CalendarPropertyTest, SameInstantBurstPreservesSchedulingOrder) {
  Simulation sim;
  std::vector<int> order;
  // 300 events at one instant: more than enough to force bucket
  // activation and mid-burst growth of the active vector.
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(sim.ScheduleAt(1.0, [&order, i] { order.push_back(i); }).ok());
  }
  sim.RunUntil(1.0);
  ASSERT_EQ(order.size(), 300u);
  for (int i = 0; i < 300; ++i) EXPECT_EQ(order[i], i);
}

TEST(CalendarPropertyTest, ZeroDelayChainAtBoundaryMatchesReference) {
  // A callback firing exactly at the RunUntil boundary spawns a
  // zero-delay chain; every link must run inside the same RunUntil on
  // both engines, after everything previously scheduled at that time.
  auto drive = [](auto& eng) {
    Log log;
    for (int i = 0; i < 3; ++i) {
      (void)eng.ScheduleAt(5.0, [&log, &eng, i] {
        log.emplace_back(i, eng.Now());
      });
    }
    std::function<void(int)> chain = [&](int depth) {
      log.emplace_back(100 + depth, eng.Now());
      if (depth < 4) {
        (void)eng.ScheduleAfter(0.0, [&chain, depth] { chain(depth + 1); });
      }
    };
    (void)eng.ScheduleAt(5.0, [&chain] { chain(0); });
    eng.RunUntil(5.0);
    log.emplace_back(-1, static_cast<double>(eng.pending_events()));
    return log;
  };
  Simulation wheel;
  RefCalendar heap;
  EXPECT_EQ(drive(wheel), drive(heap));
}

TEST(CalendarPropertyTest, PeriodicAcrossBoundariesMatchesReference) {
  auto drive = [](auto& eng) {
    Log log;
    (void)eng.SchedulePeriodic(2.0, 2.0, [&log, &eng] {
      log.emplace_back(1, eng.Now());
      return eng.Now() < 19.0;
    });
    (void)eng.SchedulePeriodic(1.0, 2.0, [&log, &eng] {
      log.emplace_back(2, eng.Now());
      return eng.Now() < 14.0;
    });
    // Boundaries land exactly on firings (10.0), between them, and in
    // the past (8.0: no-op).
    eng.RunUntil(10.0);
    eng.RunUntil(8.0);
    eng.RunUntil(10.5);
    eng.RunUntil(20.0);
    log.emplace_back(-1, eng.Now());
    return log;
  };
  Simulation wheel;
  RefCalendar heap;
  EXPECT_EQ(drive(wheel), drive(heap));
}

TEST(CalendarPropertyTest, OverflowMigrationKeepsOrder) {
  // Events far beyond the wheel horizon interleaved with near events;
  // order across the horizon boundary must match the reference.
  auto drive = [](auto& eng) {
    Log log;
    auto fire = [&log, &eng](int id) { log.emplace_back(id, eng.Now()); };
    (void)eng.ScheduleAt(100.0, [&] { fire(1); });
    (void)eng.ScheduleAt(63.9, [&] { fire(2); });
    (void)eng.ScheduleAt(64.1, [&] { fire(3); });
    (void)eng.ScheduleAt(100.0, [&] { fire(4); });  // Same far instant.
    (void)eng.ScheduleAt(1.0, [&] {
      fire(5);
      // Scheduled from inside a callback, still beyond the horizon.
      (void)eng.ScheduleAt(100.0, [&] { fire(6); });
    });
    eng.RunUntil(500.0);
    log.emplace_back(-1, eng.Now());
    return log;
  };
  Simulation wheel;
  RefCalendar heap;
  EXPECT_EQ(drive(wheel), drive(heap));
}

TEST(CalendarPropertyTest, StepDrainsInReferenceOrder) {
  auto drive = [](auto& eng) {
    Log log;
    for (int i = 0; i < 5; ++i) {
      (void)eng.ScheduleAt(3.0, [&log, &eng, i] {
        log.emplace_back(i, eng.Now());
      });
    }
    (void)eng.ScheduleAt(90.0, [&log, &eng] {  // Overflow event.
      log.emplace_back(99, eng.Now());
    });
    while (eng.Step()) {
    }
    EXPECT_FALSE(eng.Step());  // Idempotent on an empty calendar.
    log.emplace_back(-1, eng.Now());
    return log;
  };
  Simulation wheel;
  RefCalendar heap;
  EXPECT_EQ(drive(wheel), drive(heap));
}

}  // namespace
}  // namespace flower::sim
