#include "sim/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

namespace flower::sim {
namespace {

Status OkActuator(double) { return Status::OK(); }

TEST(FaultInjectorTest, AddValidation) {
  Simulation sim;
  FaultInjector chaos(&sim, 1);
  FaultSpec bad;
  bad.start = 100.0;
  bad.end = 100.0;  // Empty window.
  EXPECT_FALSE(chaos.Add(bad).ok());
  bad.end = 50.0;  // Inverted window.
  EXPECT_FALSE(chaos.Add(bad).ok());
  bad.end = 200.0;
  bad.probability = 1.5;
  EXPECT_FALSE(chaos.Add(bad).ok());
  bad.probability = 0.5;
  bad.delay_sec = -1.0;
  EXPECT_FALSE(chaos.Add(bad).ok());
  bad.delay_sec = 0.0;
  EXPECT_TRUE(chaos.Add(bad).ok());
  EXPECT_EQ(chaos.fault_count(), 1u);
}

TEST(FaultInjectorTest, ActuatorFailsOnlyInsideWindow) {
  Simulation sim;
  FaultInjector chaos(&sim, 1);
  chaos.FailActuator("analytics", 100.0, 200.0);
  auto actuator = chaos.WrapActuator("analytics", OkActuator);
  std::vector<StatusCode> codes;
  for (SimTime t : {50.0, 100.0, 150.0, 199.0, 200.0, 250.0}) {
    ASSERT_TRUE(
        sim.ScheduleAt(t, [&] { codes.push_back(actuator(1.0).code()); })
            .ok());
  }
  sim.RunUntil(300.0);
  // [start, end): fails at 100 and 199, passes at 50, 200, 250.
  EXPECT_EQ(codes, (std::vector<StatusCode>{
                       StatusCode::kOk, StatusCode::kInternal,
                       StatusCode::kInternal, StatusCode::kInternal,
                       StatusCode::kOk, StatusCode::kOk}));
  EXPECT_EQ(chaos.stats().actuator_failures, 3u);
}

TEST(FaultInjectorTest, ThrottleReturnsRetryableStatus) {
  Simulation sim;
  FaultInjector chaos(&sim, 1);
  chaos.ThrottleActuator("ingestion", 0.0, 100.0);
  auto actuator = chaos.WrapActuator("ingestion", OkActuator);
  Status st = Status::OK();
  ASSERT_TRUE(sim.ScheduleAt(10.0, [&] { st = actuator(2.0); }).ok());
  sim.RunUntil(20.0);
  EXPECT_EQ(st.code(), StatusCode::kThrottled);
  EXPECT_TRUE(st.IsRetryable());
  EXPECT_EQ(chaos.stats().actuator_throttles, 1u);
}

TEST(FaultInjectorTest, TargetingMatchesNameOrAll) {
  Simulation sim;
  FaultInjector chaos(&sim, 1);
  chaos.FailActuator("analytics", 0.0, 100.0);
  auto analytics = chaos.WrapActuator("analytics", OkActuator);
  auto storage = chaos.WrapActuator("storage", OkActuator);
  Status sa = Status::OK(), ss = Status::OK();
  ASSERT_TRUE(sim.ScheduleAt(10.0, [&] {
    sa = analytics(1.0);
    ss = storage(1.0);
  }).ok());
  sim.RunUntil(20.0);
  EXPECT_FALSE(sa.ok());
  EXPECT_TRUE(ss.ok());  // Different target untouched.

  // An empty target hits every wrapped seam.
  chaos.FailActuator("", 0.0, 100.0);
  ASSERT_TRUE(sim.ScheduleAt(30.0, [&] { ss = storage(1.0); }).ok());
  sim.RunUntil(40.0);
  EXPECT_FALSE(ss.ok());
}

TEST(FaultInjectorTest, MetricGapHidesInnerSensor) {
  Simulation sim;
  FaultInjector chaos(&sim, 1);
  chaos.DropMetrics("analytics", 50.0, 150.0);
  int inner_calls = 0;
  auto sensor = chaos.WrapSensor(
      "analytics", [&](SimTime) -> Result<double> {
        ++inner_calls;
        return 42.0;
      });
  Result<double> in_window = 0.0, outside = 0.0;
  ASSERT_TRUE(sim.ScheduleAt(100.0, [&] { in_window = sensor(100.0); }).ok());
  ASSERT_TRUE(sim.ScheduleAt(200.0, [&] { outside = sensor(200.0); }).ok());
  sim.RunUntil(300.0);
  EXPECT_EQ(in_window.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(*outside, 42.0);
  EXPECT_EQ(inner_calls, 1);  // The gap short-circuits the inner read.
  EXPECT_EQ(chaos.stats().metric_gaps, 1u);
}

TEST(FaultInjectorTest, MetricDelayShiftsQueryTime) {
  Simulation sim;
  FaultInjector chaos(&sim, 1);
  chaos.DelayMetrics("analytics", 0.0, 1000.0, 90.0);
  SimTime seen = -1.0;
  auto sensor = chaos.WrapSensor("analytics", [&](SimTime t) -> Result<double> {
    seen = t;
    return 1.0;
  });
  ASSERT_TRUE(sim.ScheduleAt(500.0, [&] { (void)sensor(500.0); }).ok());
  sim.RunUntil(600.0);
  EXPECT_DOUBLE_EQ(seen, 410.0);  // Read observes the store 90 s back.
  EXPECT_EQ(chaos.stats().delayed_reads, 1u);
}

TEST(FaultInjectorTest, SensorSpikeDistortsValue) {
  Simulation sim;
  FaultInjector chaos(&sim, 1);
  chaos.SpikeSensor("analytics", 0.0, 100.0, 3.0, 7.0);
  auto sensor = chaos.WrapSensor(
      "analytics", [](SimTime) -> Result<double> { return 10.0; });
  Result<double> r = 0.0;
  ASSERT_TRUE(sim.ScheduleAt(10.0, [&] { r = sensor(10.0); }).ok());
  sim.RunUntil(20.0);
  EXPECT_DOUBLE_EQ(*r, 37.0);  // 10 * 3 + 7.
  EXPECT_EQ(chaos.stats().sensor_spikes, 1u);
}

TEST(FaultInjectorTest, SpikeDoesNotMaskSensorErrors) {
  Simulation sim;
  FaultInjector chaos(&sim, 1);
  chaos.SpikeSensor("analytics", 0.0, 100.0, 3.0);
  auto sensor = chaos.WrapSensor("analytics", [](SimTime) -> Result<double> {
    return Status::NotFound("empty window");
  });
  Result<double> r = 0.0;
  ASSERT_TRUE(sim.ScheduleAt(10.0, [&] { r = sensor(10.0); }).ok());
  sim.RunUntil(20.0);
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(chaos.stats().sensor_spikes, 0u);
}

TEST(FaultInjectorTest, TransientFaultIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    Simulation sim;
    FaultInjector chaos(&sim, seed);
    chaos.FailActuator("a", 0.0, 1e6, 0.5);
    auto actuator = chaos.WrapActuator("a", OkActuator);
    std::vector<bool> outcomes;
    EXPECT_TRUE(sim.SchedulePeriodic(1.0, 1.0, [&] {
      outcomes.push_back(actuator(1.0).ok());
      return outcomes.size() < 200;
    }).ok());
    sim.RunUntil(300.0);
    return outcomes;
  };
  std::vector<bool> a = run(7), b = run(7), c = run(8);
  EXPECT_EQ(a, b);  // Same seed: bit-identical outcome sequence.
  EXPECT_NE(a, c);  // Different seed: a different draw sequence.
  // p = 0.5 over 200 draws: both outcomes occur in force.
  int failures = 0;
  for (bool ok : a) failures += ok ? 0 : 1;
  EXPECT_GT(failures, 60);
  EXPECT_LT(failures, 140);
}

TEST(FaultInjectorTest, ClearDeactivatesFault) {
  Simulation sim;
  FaultInjector chaos(&sim, 1);
  int id = chaos.FailActuator("a", 0.0, 1e9);
  chaos.DropMetrics("a", 0.0, 1e9);
  EXPECT_EQ(chaos.fault_count(), 2u);
  auto actuator = chaos.WrapActuator("a", OkActuator);
  Status st = Status::OK();
  ASSERT_TRUE(sim.ScheduleAt(10.0, [&] { st = actuator(1.0); }).ok());
  sim.RunUntil(20.0);
  EXPECT_FALSE(st.ok());
  chaos.Clear(id);
  EXPECT_EQ(chaos.fault_count(), 1u);
  ASSERT_TRUE(sim.ScheduleAt(30.0, [&] { st = actuator(1.0); }).ok());
  sim.RunUntil(40.0);
  EXPECT_TRUE(st.ok());
  chaos.ClearAll();
  EXPECT_EQ(chaos.fault_count(), 0u);
}

TEST(FaultInjectorTest, ActiveReportsWindows) {
  Simulation sim;
  FaultInjector chaos(&sim, 1);
  chaos.FailActuator("a", 100.0, 200.0);
  EXPECT_FALSE(chaos.Active(FaultKind::kActuatorFailure, "a", 99.0));
  EXPECT_TRUE(chaos.Active(FaultKind::kActuatorFailure, "a", 100.0));
  EXPECT_TRUE(chaos.Active(FaultKind::kActuatorFailure, "a", 199.9));
  EXPECT_FALSE(chaos.Active(FaultKind::kActuatorFailure, "a", 200.0));
  EXPECT_FALSE(chaos.Active(FaultKind::kMetricGap, "a", 150.0));
  EXPECT_FALSE(chaos.Active(FaultKind::kActuatorFailure, "b", 150.0));
}

TEST(FaultInjectorTest, PersistentFaultLastsUntilCleared) {
  Simulation sim;
  FaultInjector chaos(&sim, 1);
  FaultSpec spec;
  spec.kind = FaultKind::kActuatorFailure;
  spec.target = "a";
  spec.start = 0.0;  // end defaults to infinity.
  auto id = chaos.Add(spec);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(chaos.Active(FaultKind::kActuatorFailure, "a", 1e12));
  chaos.Clear(*id);
  EXPECT_FALSE(chaos.Active(FaultKind::kActuatorFailure, "a", 1e12));
}

}  // namespace
}  // namespace flower::sim
