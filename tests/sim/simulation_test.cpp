#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace flower::sim {
namespace {

TEST(SimulationTest, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  ASSERT_TRUE(sim.ScheduleAt(3.0, [&] { order.push_back(3); }).ok());
  ASSERT_TRUE(sim.ScheduleAt(1.0, [&] { order.push_back(1); }).ok());
  ASSERT_TRUE(sim.ScheduleAt(2.0, [&] { order.push_back(2); }).ok());
  sim.RunUntil(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 10.0);
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(SimulationTest, SameTimeEventsFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(sim.ScheduleAt(1.0, [&order, i] { order.push_back(i); }).ok());
  }
  sim.RunUntil(2.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, SchedulingInPastFails) {
  Simulation sim;
  ASSERT_TRUE(sim.ScheduleAt(5.0, [] {}).ok());
  sim.RunUntil(5.0);
  EXPECT_FALSE(sim.ScheduleAt(4.0, [] {}).ok());
  EXPECT_FALSE(sim.ScheduleAfter(-1.0, [] {}).ok());
}

TEST(SimulationTest, RunUntilStopsAtBoundary) {
  Simulation sim;
  int fired = 0;
  ASSERT_TRUE(sim.ScheduleAt(5.0, [&] { ++fired; }).ok());
  ASSERT_TRUE(sim.ScheduleAt(15.0, [&] { ++fired; }).ok());
  sim.RunUntil(10.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 10.0);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunUntil(20.0);
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, EventsCanScheduleEvents) {
  Simulation sim;
  std::vector<double> fire_times;
  ASSERT_TRUE(sim.ScheduleAt(1.0, [&] {
    fire_times.push_back(sim.Now());
    (void)sim.ScheduleAfter(2.0, [&] { fire_times.push_back(sim.Now()); });
  }).ok());
  sim.RunUntil(10.0);
  EXPECT_EQ(fire_times, (std::vector<double>{1.0, 3.0}));
}

TEST(SimulationTest, PeriodicFiresUntilCallbackStops) {
  Simulation sim;
  int count = 0;
  ASSERT_TRUE(sim.SchedulePeriodic(10.0, 10.0, [&] {
    ++count;
    return count < 3;
  }).ok());
  sim.RunUntil(100.0);
  EXPECT_EQ(count, 3);
}

TEST(SimulationTest, PeriodicRunsForever) {
  Simulation sim;
  int count = 0;
  ASSERT_TRUE(sim.SchedulePeriodic(1.0, 1.0, [&] {
    ++count;
    return true;
  }).ok());
  sim.RunUntil(100.0);
  EXPECT_EQ(count, 100);
}

TEST(SimulationTest, PeriodicValidatesArguments) {
  Simulation sim;
  EXPECT_FALSE(sim.SchedulePeriodic(0.0, 0.0, [] { return true; }).ok());
  EXPECT_FALSE(sim.SchedulePeriodic(0.0, -5.0, [] { return true; }).ok());
}

TEST(SimulationTest, StepExecutesOneEvent) {
  Simulation sim;
  int fired = 0;
  ASSERT_TRUE(sim.ScheduleAt(1.0, [&] { ++fired; }).ok());
  ASSERT_TRUE(sim.ScheduleAt(2.0, [&] { ++fired; }).ok());
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 1.0);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

// Regression tests for the RunUntil boundary contract: an event at
// exactly `end` fires in that call, exactly once — never dropped, never
// re-run by a subsequent RunUntil.
TEST(SimulationTest, EventExactlyAtEndFiresExactlyOnce) {
  Simulation sim;
  int fired = 0;
  ASSERT_TRUE(sim.ScheduleAt(10.0, [&] { ++fired; }).ok());
  sim.RunUntil(10.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 10.0);
  sim.RunUntil(10.0);  // Same horizon again: no double-fire.
  EXPECT_EQ(fired, 1);
  sim.RunUntil(20.0);  // Later horizon: still no double-fire.
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(SimulationTest, EventScheduledAtEndDuringRunStillFires) {
  Simulation sim;
  int fired = 0;
  ASSERT_TRUE(sim.ScheduleAt(5.0, [&] {
    (void)sim.ScheduleAt(10.0, [&] { ++fired; });
  }).ok());
  sim.RunUntil(10.0);
  EXPECT_EQ(fired, 1);
}

TEST(SimulationTest, PeriodicLandingOnEndFiresOnceAndResumes) {
  Simulation sim;
  std::vector<double> fire_times;
  ASSERT_TRUE(sim.SchedulePeriodic(10.0, 10.0, [&] {
    fire_times.push_back(sim.Now());
    return true;
  }).ok());
  sim.RunUntil(30.0);  // Lands exactly on a firing.
  EXPECT_EQ(fire_times, (std::vector<double>{10.0, 20.0, 30.0}));
  sim.RunUntil(50.0);  // Resumes at 40, no repeat of 30.
  EXPECT_EQ(fire_times, (std::vector<double>{10.0, 20.0, 30.0, 40.0, 50.0}));
}

TEST(SimulationTest, RunUntilInPastIsNoOp) {
  Simulation sim;
  sim.RunUntil(10.0);
  int fired = 0;
  ASSERT_TRUE(sim.ScheduleAt(10.0, [&] { ++fired; }).ok());
  sim.RunUntil(5.0);  // Horizon before Now(): nothing runs, clock keeps.
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.Now(), 10.0);
  sim.RunUntil(10.0);  // The event at Now() is still runnable, once.
  EXPECT_EQ(fired, 1);
}

TEST(SimulationTest, RunUntilOnEmptyQueueAdvancesClock) {
  Simulation sim;
  sim.RunUntil(42.0);
  EXPECT_EQ(sim.Now(), 42.0);
}

TEST(SimulationTest, PeriodicCallbackIsFreedWhenItStopsRecurring) {
  // The self-rescheduling closure must not keep itself alive through a
  // strong reference cycle: once the callback declines to recur, every
  // capture must be released. Long-lived simulations schedule thousands
  // of periodic tasks; each used to leak its closure.
  Simulation sim;
  auto tracker = std::make_shared<int>(0);
  std::weak_ptr<int> watch = tracker;
  ASSERT_TRUE(sim.SchedulePeriodic(1.0, 1.0, [tracker] {
    return *tracker < 3 && ++*tracker < 3;
  }).ok());
  tracker.reset();
  EXPECT_FALSE(watch.expired());  // The pending event owns the captures.
  sim.RunUntil(10.0);
  EXPECT_TRUE(watch.expired());  // Stopped recurring: closure destroyed.
}

}  // namespace
}  // namespace flower::sim
