#include "common/reservoir.h"

#include <gtest/gtest.h>

#include <cmath>

namespace flower {
namespace {

TEST(ReservoirTest, KeepsEverythingBelowCapacity) {
  ReservoirSampler r(100, 1);
  for (int i = 0; i < 50; ++i) r.Add(static_cast<double>(i));
  EXPECT_EQ(r.size(), 50u);
  EXPECT_EQ(r.observed(), 50u);
  EXPECT_DOUBLE_EQ(*r.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(*r.Percentile(100.0), 49.0);
}

TEST(ReservoirTest, SizeCappedAtCapacity) {
  ReservoirSampler r(64, 2);
  for (int i = 0; i < 100000; ++i) r.Add(1.0);
  EXPECT_EQ(r.size(), 64u);
  EXPECT_EQ(r.observed(), 100000u);
}

TEST(ReservoirTest, SampleIsApproximatelyUniform) {
  // Stream 0..99999; a uniform sample's mean should be near 50k and its
  // median near 50k too.
  ReservoirSampler r(2000, 3);
  for (int i = 0; i < 100000; ++i) r.Add(static_cast<double>(i));
  double sum = 0.0;
  for (double v : r.sample()) sum += v;
  double mean = sum / static_cast<double>(r.size());
  EXPECT_NEAR(mean, 50000.0, 3000.0);
  EXPECT_NEAR(*r.Percentile(50.0), 50000.0, 5000.0);
  EXPECT_NEAR(*r.Percentile(99.0), 99000.0, 2000.0);
}

TEST(ReservoirTest, PercentileValidation) {
  ReservoirSampler r(10, 4);
  EXPECT_EQ(r.Percentile(50.0).status().code(),
            StatusCode::kFailedPrecondition);
  r.Add(5.0);
  EXPECT_FALSE(r.Percentile(-1.0).ok());
  EXPECT_FALSE(r.Percentile(101.0).ok());
  EXPECT_DOUBLE_EQ(*r.Percentile(75.0), 5.0);
}

TEST(ReservoirTest, ResetClearsSampleKeepsDeterminism) {
  ReservoirSampler r(8, 5);
  for (int i = 0; i < 100; ++i) r.Add(static_cast<double>(i));
  r.Reset();
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.observed(), 0u);
  r.Add(42.0);
  EXPECT_DOUBLE_EQ(*r.Percentile(50.0), 42.0);
}

TEST(ReservoirTest, DeterministicForSeed) {
  auto run = [](uint64_t seed) {
    ReservoirSampler r(16, seed);
    for (int i = 0; i < 10000; ++i) r.Add(static_cast<double>(i));
    return r.sample();
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

}  // namespace
}  // namespace flower
