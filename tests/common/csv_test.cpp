#include "common/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace flower {
namespace {

TEST(CsvTest, PlainRow) {
  std::ostringstream os;
  CsvWriter w(&os);
  w.WriteRow({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(CsvTest, EscapesCommasQuotesNewlines) {
  EXPECT_EQ(CsvWriter::Escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::Escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::Escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::Escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, EscapedFieldsRoundTripInRow) {
  std::ostringstream os;
  CsvWriter w(&os);
  w.WriteRow({"x,y", "z"});
  EXPECT_EQ(os.str(), "\"x,y\",z\n");
}

TEST(CsvTest, NumericRowFormatsDoubles) {
  std::ostringstream os;
  CsvWriter w(&os);
  w.WriteNumericRow({1.0, 2.5, -3.25});
  EXPECT_EQ(os.str(), "1,2.5,-3.25\n");
}

TEST(CsvTest, EmptyRowProducesNewline) {
  std::ostringstream os;
  CsvWriter w(&os);
  w.WriteRow(std::vector<std::string>{});
  EXPECT_EQ(os.str(), "\n");
}

}  // namespace
}  // namespace flower
