#include "common/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace flower {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer-name", "23456"});
  std::ostringstream os;
  t.Print(os);
  std::string s = os.str();
  EXPECT_NE(s.find("| name        | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer-name | 23456 |"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsWithPrecision) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::Num(-1.5, 1), "-1.5");
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only-one"});
  std::ostringstream os;
  t.Print(os);
  // Should not crash and should contain the cell.
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(AsciiChartTest, RendersPeakAndLabel) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(i < 50 ? 0.0 : 10.0);
  std::string chart = AsciiChart(v, 6, 40, "step-metric");
  EXPECT_NE(chart.find("step-metric"), std::string::npos);
  EXPECT_NE(chart.find("max"), std::string::npos);
  EXPECT_NE(chart.find('*'), std::string::npos);
}

TEST(AsciiChartTest, HandlesEmptyAndConstant) {
  EXPECT_NE(AsciiChart({}, 6, 40).find("(no data)"), std::string::npos);
  std::string flat = AsciiChart({5.0, 5.0, 5.0}, 6, 10);
  EXPECT_NE(flat.find('*'), std::string::npos);  // Renders without div-by-0.
}

}  // namespace
}  // namespace flower
