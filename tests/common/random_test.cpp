#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace flower {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1000000) == b.UniformInt(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntIsInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMatchesMomentsApproximately) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, PoissonMeanApproximatelyCorrect) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(25.0));
  EXPECT_NEAR(sum / n, 25.0, 0.5);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(RngTest, ZipfPrefersLowRanks) {
  Rng rng(19);
  int rank1 = 0, rank10 = 0;
  for (int i = 0; i < 10000; ++i) {
    int64_t r = rng.Zipf(10, 1.2);
    EXPECT_GE(r, 1);
    EXPECT_LE(r, 10);
    if (r == 1) ++rank1;
    if (r == 10) ++rank10;
  }
  EXPECT_GT(rank1, 4 * rank10);
}

TEST(RngTest, ZipfDegenerateN) {
  Rng rng(23);
  EXPECT_EQ(rng.Zipf(1, 1.0), 1);
  EXPECT_EQ(rng.Zipf(0, 1.0), 1);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // Astronomically unlikely to be identity.
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.Fork();
  // The child stream should not replay the parent's output.
  Rng b(31);
  (void)b.engine()();  // Parent consumed one draw for the fork.
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (child.UniformInt(0, 1 << 30) == a.UniformInt(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace flower
