#include "common/time_series.h"

#include <gtest/gtest.h>

namespace flower {
namespace {

TimeSeries Make(std::initializer_list<Sample> samples) {
  TimeSeries ts("test");
  for (const Sample& s : samples) ts.AppendUnchecked(s.time, s.value);
  return ts;
}

TEST(TimeSeriesTest, AppendKeepsOrderAndSize) {
  TimeSeries ts("m");
  ASSERT_TRUE(ts.Append(0.0, 1.0).ok());
  ASSERT_TRUE(ts.Append(1.0, 2.0).ok());
  ASSERT_TRUE(ts.Append(1.0, 3.0).ok());  // Equal time allowed.
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts.start_time(), 0.0);
  EXPECT_EQ(ts.end_time(), 1.0);
}

TEST(TimeSeriesTest, AppendRejectsNonMonotonicTime) {
  TimeSeries ts("m");
  ASSERT_TRUE(ts.Append(5.0, 1.0).ok());
  Status st = ts.Append(4.0, 2.0);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ts.size(), 1u);
}

TEST(TimeSeriesTest, WindowIsHalfOpen) {
  TimeSeries ts = Make({{0, 1}, {10, 2}, {20, 3}, {30, 4}});
  TimeSeries w = ts.Window(10.0, 30.0);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0].value, 2.0);
  EXPECT_EQ(w[1].value, 3.0);
}

TEST(TimeSeriesTest, WindowOnEmptyRangeIsEmpty) {
  TimeSeries ts = Make({{0, 1}, {10, 2}});
  EXPECT_TRUE(ts.Window(100.0, 200.0).empty());
  EXPECT_TRUE(ts.Window(5.0, 5.0).empty());
}

TEST(TimeSeriesTest, ValuesAndTimesExtract) {
  TimeSeries ts = Make({{0, 1}, {1, 4}, {2, 9}});
  EXPECT_EQ(ts.Values(), (std::vector<double>{1, 4, 9}));
  EXPECT_EQ(ts.Times(), (std::vector<double>{0, 1, 2}));
}

TEST(TimeSeriesTest, AtReturnsLatestAtOrBefore) {
  TimeSeries ts = Make({{0, 1}, {10, 2}, {20, 3}});
  EXPECT_EQ(*ts.At(0.0), 1.0);
  EXPECT_EQ(*ts.At(9.9), 1.0);
  EXPECT_EQ(*ts.At(10.0), 2.0);
  EXPECT_EQ(*ts.At(1000.0), 3.0);
}

TEST(TimeSeriesTest, AtBeforeFirstSampleIsNotFound) {
  TimeSeries ts = Make({{10, 2}});
  EXPECT_EQ(ts.At(5.0).status().code(), StatusCode::kNotFound);
  TimeSeries empty;
  EXPECT_EQ(empty.At(5.0).status().code(), StatusCode::kNotFound);
}

TEST(TimeSeriesTest, ResampleHoldCarriesForward) {
  TimeSeries ts = Make({{0, 1}, {25, 5}});
  auto r = ts.ResampleHold(0.0, 10.0, 4);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 4u);
  EXPECT_EQ((*r)[0].value, 1.0);  // t=0
  EXPECT_EQ((*r)[1].value, 1.0);  // t=10
  EXPECT_EQ((*r)[2].value, 1.0);  // t=20
  EXPECT_EQ((*r)[3].value, 5.0);  // t=30
}

TEST(TimeSeriesTest, ResampleHoldValidatesInput) {
  TimeSeries ts = Make({{0, 1}});
  EXPECT_FALSE(ts.ResampleHold(0.0, 0.0, 4).ok());
  TimeSeries empty;
  EXPECT_FALSE(empty.ResampleHold(0.0, 1.0, 4).ok());
}

TEST(TimeSeriesTest, BucketMeanAveragesPerBucket) {
  TimeSeries ts = Make({{0, 2}, {5, 4}, {10, 10}, {25, 7}});
  TimeSeries b = ts.BucketMean(0.0, 10.0);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0].time, 0.0);
  EXPECT_EQ(b[0].value, 3.0);   // (2+4)/2
  EXPECT_EQ(b[1].value, 10.0);  // bucket [10,20)
  EXPECT_EQ(b[2].time, 20.0);
  EXPECT_EQ(b[2].value, 7.0);   // bucket [20,30)
}

TEST(TimeSeriesTest, BucketMeanSkipsEmptyBucketsAndEarlySamples) {
  TimeSeries ts = Make({{-5, 100}, {0, 1}, {35, 2}});
  TimeSeries b = ts.BucketMean(0.0, 10.0);
  ASSERT_EQ(b.size(), 2u);  // Buckets [0,10) and [30,40); sample at -5 ignored.
  EXPECT_EQ(b[0].value, 1.0);
  EXPECT_EQ(b[1].time, 30.0);
}

}  // namespace
}  // namespace flower
