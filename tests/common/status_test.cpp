#include "common/status.h"

#include <gtest/gtest.h>

namespace flower {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_FALSE(s.IsRetryable());
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Throttled("x").code(), StatusCode::kThrottled);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::Throttled("write rate exceeded");
  EXPECT_EQ(s.ToString(), "Throttled: write rate exceeded");
}

TEST(StatusTest, ThrottledAndResourceExhaustedAreRetryable) {
  EXPECT_TRUE(Status::Throttled("t").IsRetryable());
  EXPECT_TRUE(Status::ResourceExhausted("r").IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("i").IsRetryable());
  EXPECT_FALSE(Status::Internal("i").IsRetryable());
  EXPECT_TRUE(Status::Throttled("t").IsThrottled());
  EXPECT_FALSE(Status::ResourceExhausted("r").IsThrottled());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StatusCodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kThrottled), "Throttled");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal error");
}

Status FailsThenPropagates() {
  FLOWER_RETURN_NOT_OK(Status::NotFound("inner"));
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  Status s = FailsThenPropagates();
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "inner");
}

Status SucceedsThrough() {
  FLOWER_RETURN_NOT_OK(Status::OK());
  return Status::Internal("reached");
}

TEST(StatusTest, ReturnNotOkMacroPassesOnOk) {
  EXPECT_EQ(SucceedsThrough().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace flower
