#include "common/result.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace flower {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, DefaultConstructedIsInternalError) {
  Result<int> r;
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, OkStatusDemotedToInternal) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, ValueOrReturnsFallbackOnError) {
  Result<int> err = Status::NotFound("x");
  EXPECT_EQ(err.ValueOr(-1), -1);
  Result<int> ok = 7;
  EXPECT_EQ(ok.ValueOr(-1), 7);
}

TEST(ResultTest, MoveValueOrDieMovesOut) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = r.MoveValueOrDie();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, ArrowOperatorAccessesMembers) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseAssignOrReturn(int x, int* out) {
  FLOWER_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  int out = 0;
  Status st = UseAssignOrReturn(-5, &out);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(out, 0);
}

TEST(ResultTest, AssignOrReturnAssignsOnSuccess) {
  int out = 0;
  ASSERT_TRUE(UseAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
}

}  // namespace
}  // namespace flower
