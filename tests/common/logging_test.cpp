#include "common/logging.h"

#include <gtest/gtest.h>

namespace flower {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, SuppressedMessagesDoNotPrint) {
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  FLOWER_LOG(Debug) << "hidden debug";
  FLOWER_LOG(Info) << "hidden info";
  FLOWER_LOG(Warning) << "hidden warning";
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(err.empty()) << err;
}

TEST_F(LoggingTest, EnabledMessagesIncludeTagAndLocation) {
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  FLOWER_LOG(Warning) << "shard " << 3 << " throttled";
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[W "), std::string::npos);
  EXPECT_NE(err.find("logging_test.cpp"), std::string::npos);
  EXPECT_NE(err.find("shard 3 throttled"), std::string::npos);
}

TEST_F(LoggingTest, CheckPassesSilently) {
  ::testing::internal::CaptureStderr();
  FLOWER_CHECK(1 + 1 == 2) << "never shown";
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(err.empty()) << err;
}

TEST_F(LoggingTest, CheckFailureAborts) {
  EXPECT_DEATH({ FLOWER_CHECK(false) << "boom"; }, "Check failed");
}

TEST_F(LoggingTest, SimClockPrefixesTime) {
  SetLogLevel(LogLevel::kInfo);
  double now = 123.5;
  SetLogClock([](void* ctx) { return *static_cast<double*>(ctx); }, &now);
  ::testing::internal::CaptureStderr();
  FLOWER_LOG(Warning) << "with clock";
  std::string err = ::testing::internal::GetCapturedStderr();
  SetLogClock(nullptr, nullptr);
  EXPECT_NE(err.find("[W t=123.5s "), std::string::npos) << err;

  ::testing::internal::CaptureStderr();
  FLOWER_LOG(Warning) << "without clock";
  err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("t="), std::string::npos) << err;
}

TEST_F(LoggingTest, DcheckMatchesBuildType) {
#ifdef NDEBUG
  // Compiled out: a false condition must not abort or print, and the
  // condition itself must not be evaluated.
  int evaluations = 0;
  ::testing::internal::CaptureStderr();
  FLOWER_DCHECK(++evaluations > 0) << "never";
  FLOWER_DCHECK(false) << "never";
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(evaluations, 0);
#else
  EXPECT_DEATH({ FLOWER_DCHECK(false) << "boom"; }, "Check failed");
#endif
}

TEST_F(LoggingTest, FatalCheckIgnoresLogLevel) {
  // A failed check must abort (and print) even when the level filter
  // would suppress kError messages entirely.
  SetLogLevel(static_cast<LogLevel>(static_cast<int>(LogLevel::kError) + 1));
  EXPECT_DEATH({ FLOWER_CHECK(false) << "fatal"; }, "Check failed");
}

}  // namespace
}  // namespace flower
