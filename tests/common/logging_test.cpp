#include "common/logging.h"

#include <gtest/gtest.h>

namespace flower {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, SuppressedMessagesDoNotPrint) {
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  FLOWER_LOG(Debug) << "hidden debug";
  FLOWER_LOG(Info) << "hidden info";
  FLOWER_LOG(Warning) << "hidden warning";
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(err.empty()) << err;
}

TEST_F(LoggingTest, EnabledMessagesIncludeTagAndLocation) {
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  FLOWER_LOG(Warning) << "shard " << 3 << " throttled";
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[W "), std::string::npos);
  EXPECT_NE(err.find("logging_test.cpp"), std::string::npos);
  EXPECT_NE(err.find("shard 3 throttled"), std::string::npos);
}

TEST_F(LoggingTest, CheckPassesSilently) {
  ::testing::internal::CaptureStderr();
  FLOWER_CHECK(1 + 1 == 2) << "never shown";
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(err.empty()) << err;
}

TEST_F(LoggingTest, CheckFailureAborts) {
  EXPECT_DEATH({ FLOWER_CHECK(false) << "boom"; }, "Check failed");
}

}  // namespace
}  // namespace flower
