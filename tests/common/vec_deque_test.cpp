#include "common/vec_deque.h"

#include <string>

#include <gtest/gtest.h>

namespace flower {
namespace {

TEST(VecDequeTest, StartsEmpty) {
  VecDeque<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.capacity(), 0u);
}

TEST(VecDequeTest, FifoOrder) {
  VecDeque<int> q;
  for (int i = 0; i < 100; ++i) q.push_back(i);
  for (int i = 0; i < 100; ++i) {
    ASSERT_FALSE(q.empty());
    EXPECT_EQ(q.front(), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(VecDequeTest, WrapsAroundWithoutLosingOrder) {
  VecDeque<int> q;
  // Interleave pushes and pops so the head walks around the ring many
  // times while the size stays below capacity (no growth after warmup).
  int next_in = 0, next_out = 0;
  for (int round = 0; round < 500; ++round) {
    for (int i = 0; i < 3; ++i) q.push_back(next_in++);
    for (int i = 0; i < 2; ++i) {
      ASSERT_EQ(q.front(), next_out);
      q.pop_front();
      ++next_out;
    }
  }
  size_t cap = q.capacity();
  while (!q.empty()) {
    ASSERT_EQ(q.front(), next_out++);
    q.pop_front();
  }
  EXPECT_EQ(next_out, next_in);
  EXPECT_EQ(q.capacity(), cap);  // pop never shrinks.
}

TEST(VecDequeTest, GrowPreservesOrderAcrossWrap) {
  VecDeque<int> q;
  // Force a wrapped state, then grow: elements must come out in order.
  for (int i = 0; i < 16; ++i) q.push_back(i);
  for (int i = 0; i < 10; ++i) q.pop_front();
  for (int i = 16; i < 40; ++i) q.push_back(i);  // Wraps, then grows.
  for (int i = 10; i < 40; ++i) {
    ASSERT_EQ(q.front(), i);
    q.pop_front();
  }
}

TEST(VecDequeTest, IndexingIsFifoRelative) {
  VecDeque<int> q;
  for (int i = 0; i < 20; ++i) q.push_back(i);
  for (int i = 0; i < 7; ++i) q.pop_front();
  for (size_t i = 0; i < q.size(); ++i) {
    EXPECT_EQ(q[i], static_cast<int>(i) + 7);
  }
}

TEST(VecDequeTest, AppendRangeBulkTransfer) {
  VecDeque<int> q;
  q.push_back(-1);
  int batch[5] = {0, 1, 2, 3, 4};
  q.AppendRange(batch, 5);
  q.AppendRange(batch, 0);  // Empty append is a no-op.
  ASSERT_EQ(q.size(), 6u);
  EXPECT_EQ(q.front(), -1);
  for (size_t i = 1; i < 6; ++i) EXPECT_EQ(q[i], static_cast<int>(i) - 1);
}

TEST(VecDequeTest, ClearKeepsCapacity) {
  VecDeque<std::string> q;
  for (int i = 0; i < 33; ++i) q.push_back(std::to_string(i));
  size_t cap = q.capacity();
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.capacity(), cap);
  q.push_back("again");
  EXPECT_EQ(q.front(), "again");
}

TEST(VecDequeTest, SteadyStateChurnDoesNotGrow) {
  VecDeque<int> q;
  for (int i = 0; i < 8; ++i) q.push_back(i);
  size_t cap = q.capacity();
  for (int i = 0; i < 10000; ++i) {
    q.push_back(i);
    q.pop_front();
  }
  EXPECT_EQ(q.capacity(), cap);
  EXPECT_EQ(q.size(), 8u);
}

}  // namespace
}  // namespace flower
