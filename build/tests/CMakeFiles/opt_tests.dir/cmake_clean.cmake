file(REMOVE_RECURSE
  "CMakeFiles/opt_tests.dir/opt/grid_search_test.cpp.o"
  "CMakeFiles/opt_tests.dir/opt/grid_search_test.cpp.o.d"
  "CMakeFiles/opt_tests.dir/opt/nsga2_test.cpp.o"
  "CMakeFiles/opt_tests.dir/opt/nsga2_test.cpp.o.d"
  "CMakeFiles/opt_tests.dir/opt/pareto_test.cpp.o"
  "CMakeFiles/opt_tests.dir/opt/pareto_test.cpp.o.d"
  "opt_tests"
  "opt_tests.pdb"
  "opt_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
