file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/controller_factory_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/controller_factory_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/dependency_analyzer_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/dependency_analyzer_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/elasticity_manager_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/elasticity_manager_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/flow_builder_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/flow_builder_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/monitor_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/monitor_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/resource_share_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/resource_share_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/windowed_share_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/windowed_share_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
