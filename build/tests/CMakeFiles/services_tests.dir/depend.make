# Empty dependencies file for services_tests.
# This may be replaced when dependencies are built.
