file(REMOVE_RECURSE
  "CMakeFiles/services_tests.dir/dynamodb/table_test.cpp.o"
  "CMakeFiles/services_tests.dir/dynamodb/table_test.cpp.o.d"
  "CMakeFiles/services_tests.dir/ec2/fleet_test.cpp.o"
  "CMakeFiles/services_tests.dir/ec2/fleet_test.cpp.o.d"
  "CMakeFiles/services_tests.dir/kinesis/stream_test.cpp.o"
  "CMakeFiles/services_tests.dir/kinesis/stream_test.cpp.o.d"
  "CMakeFiles/services_tests.dir/pricing/price_book_test.cpp.o"
  "CMakeFiles/services_tests.dir/pricing/price_book_test.cpp.o.d"
  "CMakeFiles/services_tests.dir/storm/cluster_test.cpp.o"
  "CMakeFiles/services_tests.dir/storm/cluster_test.cpp.o.d"
  "CMakeFiles/services_tests.dir/storm/topology_test.cpp.o"
  "CMakeFiles/services_tests.dir/storm/topology_test.cpp.o.d"
  "services_tests"
  "services_tests.pdb"
  "services_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/services_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
