file(REMOVE_RECURSE
  "CMakeFiles/control_tests.dir/control/adaptive_gain_test.cpp.o"
  "CMakeFiles/control_tests.dir/control/adaptive_gain_test.cpp.o.d"
  "CMakeFiles/control_tests.dir/control/closed_loop_test.cpp.o"
  "CMakeFiles/control_tests.dir/control/closed_loop_test.cpp.o.d"
  "CMakeFiles/control_tests.dir/control/feedforward_test.cpp.o"
  "CMakeFiles/control_tests.dir/control/feedforward_test.cpp.o.d"
  "CMakeFiles/control_tests.dir/control/fixed_gain_test.cpp.o"
  "CMakeFiles/control_tests.dir/control/fixed_gain_test.cpp.o.d"
  "CMakeFiles/control_tests.dir/control/metrics_test.cpp.o"
  "CMakeFiles/control_tests.dir/control/metrics_test.cpp.o.d"
  "CMakeFiles/control_tests.dir/control/quasi_adaptive_test.cpp.o"
  "CMakeFiles/control_tests.dir/control/quasi_adaptive_test.cpp.o.d"
  "CMakeFiles/control_tests.dir/control/rule_based_test.cpp.o"
  "CMakeFiles/control_tests.dir/control/rule_based_test.cpp.o.d"
  "CMakeFiles/control_tests.dir/control/stability_test.cpp.o"
  "CMakeFiles/control_tests.dir/control/stability_test.cpp.o.d"
  "CMakeFiles/control_tests.dir/control/target_tracking_test.cpp.o"
  "CMakeFiles/control_tests.dir/control/target_tracking_test.cpp.o.d"
  "control_tests"
  "control_tests.pdb"
  "control_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
