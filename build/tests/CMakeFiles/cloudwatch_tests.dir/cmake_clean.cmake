file(REMOVE_RECURSE
  "CMakeFiles/cloudwatch_tests.dir/cloudwatch/alarm_test.cpp.o"
  "CMakeFiles/cloudwatch_tests.dir/cloudwatch/alarm_test.cpp.o.d"
  "CMakeFiles/cloudwatch_tests.dir/cloudwatch/metric_store_test.cpp.o"
  "CMakeFiles/cloudwatch_tests.dir/cloudwatch/metric_store_test.cpp.o.d"
  "cloudwatch_tests"
  "cloudwatch_tests.pdb"
  "cloudwatch_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudwatch_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
