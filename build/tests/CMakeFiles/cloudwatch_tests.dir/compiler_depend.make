# Empty compiler generated dependencies file for cloudwatch_tests.
# This may be replaced when dependencies are built.
