# Empty compiler generated dependencies file for cost_savings.
# This may be replaced when dependencies are built.
