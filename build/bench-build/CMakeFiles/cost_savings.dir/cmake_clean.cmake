file(REMOVE_RECURSE
  "../bench/cost_savings"
  "../bench/cost_savings.pdb"
  "CMakeFiles/cost_savings.dir/cost_savings.cpp.o"
  "CMakeFiles/cost_savings.dir/cost_savings.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
