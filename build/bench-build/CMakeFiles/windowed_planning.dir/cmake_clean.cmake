file(REMOVE_RECURSE
  "../bench/windowed_planning"
  "../bench/windowed_planning.pdb"
  "CMakeFiles/windowed_planning.dir/windowed_planning.cpp.o"
  "CMakeFiles/windowed_planning.dir/windowed_planning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/windowed_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
