
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/windowed_planning.cpp" "bench-build/CMakeFiles/windowed_planning.dir/windowed_planning.cpp.o" "gcc" "bench-build/CMakeFiles/windowed_planning.dir/windowed_planning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/flower_core.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/flower_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/flower_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/flower_control.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/flower_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flower_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flower_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cloudwatch/CMakeFiles/flower_cloudwatch.dir/DependInfo.cmake"
  "/root/repo/build/src/kinesis/CMakeFiles/flower_kinesis.dir/DependInfo.cmake"
  "/root/repo/build/src/storm/CMakeFiles/flower_storm.dir/DependInfo.cmake"
  "/root/repo/build/src/dynamodb/CMakeFiles/flower_dynamodb.dir/DependInfo.cmake"
  "/root/repo/build/src/ec2/CMakeFiles/flower_ec2.dir/DependInfo.cmake"
  "/root/repo/build/src/pricing/CMakeFiles/flower_pricing.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/flower_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
