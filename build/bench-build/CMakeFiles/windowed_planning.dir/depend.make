# Empty dependencies file for windowed_planning.
# This may be replaced when dependencies are built.
