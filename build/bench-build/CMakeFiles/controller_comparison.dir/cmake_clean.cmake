file(REMOVE_RECURSE
  "../bench/controller_comparison"
  "../bench/controller_comparison.pdb"
  "CMakeFiles/controller_comparison.dir/controller_comparison.cpp.o"
  "CMakeFiles/controller_comparison.dir/controller_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
