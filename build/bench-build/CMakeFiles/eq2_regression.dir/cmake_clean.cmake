file(REMOVE_RECURSE
  "../bench/eq2_regression"
  "../bench/eq2_regression.pdb"
  "CMakeFiles/eq2_regression.dir/eq2_regression.cpp.o"
  "CMakeFiles/eq2_regression.dir/eq2_regression.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eq2_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
