# Empty compiler generated dependencies file for eq2_regression.
# This may be replaced when dependencies are built.
