file(REMOVE_RECURSE
  "../bench/fig4_pareto"
  "../bench/fig4_pareto.pdb"
  "CMakeFiles/fig4_pareto.dir/fig4_pareto.cpp.o"
  "CMakeFiles/fig4_pareto.dir/fig4_pareto.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
