file(REMOVE_RECURSE
  "../bench/fig6_elasticity_trace"
  "../bench/fig6_elasticity_trace.pdb"
  "CMakeFiles/fig6_elasticity_trace.dir/fig6_elasticity_trace.cpp.o"
  "CMakeFiles/fig6_elasticity_trace.dir/fig6_elasticity_trace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_elasticity_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
