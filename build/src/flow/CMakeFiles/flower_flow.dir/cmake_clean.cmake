file(REMOVE_RECURSE
  "CMakeFiles/flower_flow.dir/bolts.cpp.o"
  "CMakeFiles/flower_flow.dir/bolts.cpp.o.d"
  "CMakeFiles/flower_flow.dir/flow.cpp.o"
  "CMakeFiles/flower_flow.dir/flow.cpp.o.d"
  "CMakeFiles/flower_flow.dir/sliding_window.cpp.o"
  "CMakeFiles/flower_flow.dir/sliding_window.cpp.o.d"
  "libflower_flow.a"
  "libflower_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flower_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
