# Empty dependencies file for flower_flow.
# This may be replaced when dependencies are built.
