# Empty compiler generated dependencies file for flower_flow.
# This may be replaced when dependencies are built.
