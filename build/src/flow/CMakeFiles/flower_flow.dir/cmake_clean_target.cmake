file(REMOVE_RECURSE
  "libflower_flow.a"
)
