file(REMOVE_RECURSE
  "libflower_dynamodb.a"
)
