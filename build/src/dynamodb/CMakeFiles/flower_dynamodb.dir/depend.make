# Empty dependencies file for flower_dynamodb.
# This may be replaced when dependencies are built.
