file(REMOVE_RECURSE
  "CMakeFiles/flower_dynamodb.dir/table.cpp.o"
  "CMakeFiles/flower_dynamodb.dir/table.cpp.o.d"
  "libflower_dynamodb.a"
  "libflower_dynamodb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flower_dynamodb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
