file(REMOVE_RECURSE
  "libflower_ec2.a"
)
