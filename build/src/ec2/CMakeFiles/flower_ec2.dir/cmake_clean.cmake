file(REMOVE_RECURSE
  "CMakeFiles/flower_ec2.dir/fleet.cpp.o"
  "CMakeFiles/flower_ec2.dir/fleet.cpp.o.d"
  "CMakeFiles/flower_ec2.dir/instance.cpp.o"
  "CMakeFiles/flower_ec2.dir/instance.cpp.o.d"
  "libflower_ec2.a"
  "libflower_ec2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flower_ec2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
