
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ec2/fleet.cpp" "src/ec2/CMakeFiles/flower_ec2.dir/fleet.cpp.o" "gcc" "src/ec2/CMakeFiles/flower_ec2.dir/fleet.cpp.o.d"
  "/root/repo/src/ec2/instance.cpp" "src/ec2/CMakeFiles/flower_ec2.dir/instance.cpp.o" "gcc" "src/ec2/CMakeFiles/flower_ec2.dir/instance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flower_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flower_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
