# Empty compiler generated dependencies file for flower_ec2.
# This may be replaced when dependencies are built.
