file(REMOVE_RECURSE
  "libflower_control.a"
)
