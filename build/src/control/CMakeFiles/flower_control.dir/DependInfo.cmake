
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/adaptive_gain.cpp" "src/control/CMakeFiles/flower_control.dir/adaptive_gain.cpp.o" "gcc" "src/control/CMakeFiles/flower_control.dir/adaptive_gain.cpp.o.d"
  "/root/repo/src/control/controller.cpp" "src/control/CMakeFiles/flower_control.dir/controller.cpp.o" "gcc" "src/control/CMakeFiles/flower_control.dir/controller.cpp.o.d"
  "/root/repo/src/control/feedforward.cpp" "src/control/CMakeFiles/flower_control.dir/feedforward.cpp.o" "gcc" "src/control/CMakeFiles/flower_control.dir/feedforward.cpp.o.d"
  "/root/repo/src/control/fixed_gain.cpp" "src/control/CMakeFiles/flower_control.dir/fixed_gain.cpp.o" "gcc" "src/control/CMakeFiles/flower_control.dir/fixed_gain.cpp.o.d"
  "/root/repo/src/control/metrics.cpp" "src/control/CMakeFiles/flower_control.dir/metrics.cpp.o" "gcc" "src/control/CMakeFiles/flower_control.dir/metrics.cpp.o.d"
  "/root/repo/src/control/quasi_adaptive.cpp" "src/control/CMakeFiles/flower_control.dir/quasi_adaptive.cpp.o" "gcc" "src/control/CMakeFiles/flower_control.dir/quasi_adaptive.cpp.o.d"
  "/root/repo/src/control/rule_based.cpp" "src/control/CMakeFiles/flower_control.dir/rule_based.cpp.o" "gcc" "src/control/CMakeFiles/flower_control.dir/rule_based.cpp.o.d"
  "/root/repo/src/control/stability.cpp" "src/control/CMakeFiles/flower_control.dir/stability.cpp.o" "gcc" "src/control/CMakeFiles/flower_control.dir/stability.cpp.o.d"
  "/root/repo/src/control/target_tracking.cpp" "src/control/CMakeFiles/flower_control.dir/target_tracking.cpp.o" "gcc" "src/control/CMakeFiles/flower_control.dir/target_tracking.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flower_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
