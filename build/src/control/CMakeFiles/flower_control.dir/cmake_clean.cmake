file(REMOVE_RECURSE
  "CMakeFiles/flower_control.dir/adaptive_gain.cpp.o"
  "CMakeFiles/flower_control.dir/adaptive_gain.cpp.o.d"
  "CMakeFiles/flower_control.dir/controller.cpp.o"
  "CMakeFiles/flower_control.dir/controller.cpp.o.d"
  "CMakeFiles/flower_control.dir/feedforward.cpp.o"
  "CMakeFiles/flower_control.dir/feedforward.cpp.o.d"
  "CMakeFiles/flower_control.dir/fixed_gain.cpp.o"
  "CMakeFiles/flower_control.dir/fixed_gain.cpp.o.d"
  "CMakeFiles/flower_control.dir/metrics.cpp.o"
  "CMakeFiles/flower_control.dir/metrics.cpp.o.d"
  "CMakeFiles/flower_control.dir/quasi_adaptive.cpp.o"
  "CMakeFiles/flower_control.dir/quasi_adaptive.cpp.o.d"
  "CMakeFiles/flower_control.dir/rule_based.cpp.o"
  "CMakeFiles/flower_control.dir/rule_based.cpp.o.d"
  "CMakeFiles/flower_control.dir/stability.cpp.o"
  "CMakeFiles/flower_control.dir/stability.cpp.o.d"
  "CMakeFiles/flower_control.dir/target_tracking.cpp.o"
  "CMakeFiles/flower_control.dir/target_tracking.cpp.o.d"
  "libflower_control.a"
  "libflower_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flower_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
