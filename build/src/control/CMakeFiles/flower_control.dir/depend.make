# Empty dependencies file for flower_control.
# This may be replaced when dependencies are built.
