file(REMOVE_RECURSE
  "CMakeFiles/flower_sim.dir/simulation.cpp.o"
  "CMakeFiles/flower_sim.dir/simulation.cpp.o.d"
  "libflower_sim.a"
  "libflower_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flower_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
