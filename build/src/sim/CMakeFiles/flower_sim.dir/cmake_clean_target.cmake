file(REMOVE_RECURSE
  "libflower_sim.a"
)
