# Empty dependencies file for flower_sim.
# This may be replaced when dependencies are built.
