# Empty dependencies file for flower_storm.
# This may be replaced when dependencies are built.
