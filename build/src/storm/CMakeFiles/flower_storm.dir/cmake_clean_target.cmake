file(REMOVE_RECURSE
  "libflower_storm.a"
)
