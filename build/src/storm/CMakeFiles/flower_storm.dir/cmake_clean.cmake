file(REMOVE_RECURSE
  "CMakeFiles/flower_storm.dir/cluster.cpp.o"
  "CMakeFiles/flower_storm.dir/cluster.cpp.o.d"
  "CMakeFiles/flower_storm.dir/topology.cpp.o"
  "CMakeFiles/flower_storm.dir/topology.cpp.o.d"
  "libflower_storm.a"
  "libflower_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flower_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
