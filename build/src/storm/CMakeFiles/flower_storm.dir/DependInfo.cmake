
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storm/cluster.cpp" "src/storm/CMakeFiles/flower_storm.dir/cluster.cpp.o" "gcc" "src/storm/CMakeFiles/flower_storm.dir/cluster.cpp.o.d"
  "/root/repo/src/storm/topology.cpp" "src/storm/CMakeFiles/flower_storm.dir/topology.cpp.o" "gcc" "src/storm/CMakeFiles/flower_storm.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flower_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flower_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cloudwatch/CMakeFiles/flower_cloudwatch.dir/DependInfo.cmake"
  "/root/repo/build/src/ec2/CMakeFiles/flower_ec2.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/flower_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
