file(REMOVE_RECURSE
  "libflower_core.a"
)
