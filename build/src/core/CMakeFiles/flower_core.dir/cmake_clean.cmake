file(REMOVE_RECURSE
  "CMakeFiles/flower_core.dir/controller_factory.cpp.o"
  "CMakeFiles/flower_core.dir/controller_factory.cpp.o.d"
  "CMakeFiles/flower_core.dir/dependency_analyzer.cpp.o"
  "CMakeFiles/flower_core.dir/dependency_analyzer.cpp.o.d"
  "CMakeFiles/flower_core.dir/elasticity_manager.cpp.o"
  "CMakeFiles/flower_core.dir/elasticity_manager.cpp.o.d"
  "CMakeFiles/flower_core.dir/flow_builder.cpp.o"
  "CMakeFiles/flower_core.dir/flow_builder.cpp.o.d"
  "CMakeFiles/flower_core.dir/monitor.cpp.o"
  "CMakeFiles/flower_core.dir/monitor.cpp.o.d"
  "CMakeFiles/flower_core.dir/resource_share.cpp.o"
  "CMakeFiles/flower_core.dir/resource_share.cpp.o.d"
  "CMakeFiles/flower_core.dir/windowed_share.cpp.o"
  "CMakeFiles/flower_core.dir/windowed_share.cpp.o.d"
  "libflower_core.a"
  "libflower_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flower_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
