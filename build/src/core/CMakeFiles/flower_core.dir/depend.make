# Empty dependencies file for flower_core.
# This may be replaced when dependencies are built.
