# Empty dependencies file for flower_pricing.
# This may be replaced when dependencies are built.
