file(REMOVE_RECURSE
  "libflower_pricing.a"
)
