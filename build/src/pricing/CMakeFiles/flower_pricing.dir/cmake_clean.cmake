file(REMOVE_RECURSE
  "CMakeFiles/flower_pricing.dir/price_book.cpp.o"
  "CMakeFiles/flower_pricing.dir/price_book.cpp.o.d"
  "libflower_pricing.a"
  "libflower_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flower_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
