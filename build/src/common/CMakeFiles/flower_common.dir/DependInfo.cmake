
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/csv.cpp" "src/common/CMakeFiles/flower_common.dir/csv.cpp.o" "gcc" "src/common/CMakeFiles/flower_common.dir/csv.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/common/CMakeFiles/flower_common.dir/logging.cpp.o" "gcc" "src/common/CMakeFiles/flower_common.dir/logging.cpp.o.d"
  "/root/repo/src/common/random.cpp" "src/common/CMakeFiles/flower_common.dir/random.cpp.o" "gcc" "src/common/CMakeFiles/flower_common.dir/random.cpp.o.d"
  "/root/repo/src/common/reservoir.cpp" "src/common/CMakeFiles/flower_common.dir/reservoir.cpp.o" "gcc" "src/common/CMakeFiles/flower_common.dir/reservoir.cpp.o.d"
  "/root/repo/src/common/status.cpp" "src/common/CMakeFiles/flower_common.dir/status.cpp.o" "gcc" "src/common/CMakeFiles/flower_common.dir/status.cpp.o.d"
  "/root/repo/src/common/table_printer.cpp" "src/common/CMakeFiles/flower_common.dir/table_printer.cpp.o" "gcc" "src/common/CMakeFiles/flower_common.dir/table_printer.cpp.o.d"
  "/root/repo/src/common/time_series.cpp" "src/common/CMakeFiles/flower_common.dir/time_series.cpp.o" "gcc" "src/common/CMakeFiles/flower_common.dir/time_series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
