file(REMOVE_RECURSE
  "libflower_common.a"
)
