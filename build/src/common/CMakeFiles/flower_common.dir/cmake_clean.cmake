file(REMOVE_RECURSE
  "CMakeFiles/flower_common.dir/csv.cpp.o"
  "CMakeFiles/flower_common.dir/csv.cpp.o.d"
  "CMakeFiles/flower_common.dir/logging.cpp.o"
  "CMakeFiles/flower_common.dir/logging.cpp.o.d"
  "CMakeFiles/flower_common.dir/random.cpp.o"
  "CMakeFiles/flower_common.dir/random.cpp.o.d"
  "CMakeFiles/flower_common.dir/reservoir.cpp.o"
  "CMakeFiles/flower_common.dir/reservoir.cpp.o.d"
  "CMakeFiles/flower_common.dir/status.cpp.o"
  "CMakeFiles/flower_common.dir/status.cpp.o.d"
  "CMakeFiles/flower_common.dir/table_printer.cpp.o"
  "CMakeFiles/flower_common.dir/table_printer.cpp.o.d"
  "CMakeFiles/flower_common.dir/time_series.cpp.o"
  "CMakeFiles/flower_common.dir/time_series.cpp.o.d"
  "libflower_common.a"
  "libflower_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flower_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
