# Empty dependencies file for flower_common.
# This may be replaced when dependencies are built.
