file(REMOVE_RECURSE
  "CMakeFiles/flower_cloudwatch.dir/alarm.cpp.o"
  "CMakeFiles/flower_cloudwatch.dir/alarm.cpp.o.d"
  "CMakeFiles/flower_cloudwatch.dir/metric_store.cpp.o"
  "CMakeFiles/flower_cloudwatch.dir/metric_store.cpp.o.d"
  "libflower_cloudwatch.a"
  "libflower_cloudwatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flower_cloudwatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
