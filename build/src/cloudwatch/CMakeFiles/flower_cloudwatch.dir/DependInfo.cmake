
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloudwatch/alarm.cpp" "src/cloudwatch/CMakeFiles/flower_cloudwatch.dir/alarm.cpp.o" "gcc" "src/cloudwatch/CMakeFiles/flower_cloudwatch.dir/alarm.cpp.o.d"
  "/root/repo/src/cloudwatch/metric_store.cpp" "src/cloudwatch/CMakeFiles/flower_cloudwatch.dir/metric_store.cpp.o" "gcc" "src/cloudwatch/CMakeFiles/flower_cloudwatch.dir/metric_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flower_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/flower_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
