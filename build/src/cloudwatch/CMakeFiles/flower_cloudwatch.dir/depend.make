# Empty dependencies file for flower_cloudwatch.
# This may be replaced when dependencies are built.
