file(REMOVE_RECURSE
  "libflower_cloudwatch.a"
)
