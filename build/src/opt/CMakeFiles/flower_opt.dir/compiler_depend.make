# Empty compiler generated dependencies file for flower_opt.
# This may be replaced when dependencies are built.
