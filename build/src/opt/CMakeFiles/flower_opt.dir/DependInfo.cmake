
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/grid_search.cpp" "src/opt/CMakeFiles/flower_opt.dir/grid_search.cpp.o" "gcc" "src/opt/CMakeFiles/flower_opt.dir/grid_search.cpp.o.d"
  "/root/repo/src/opt/nsga2.cpp" "src/opt/CMakeFiles/flower_opt.dir/nsga2.cpp.o" "gcc" "src/opt/CMakeFiles/flower_opt.dir/nsga2.cpp.o.d"
  "/root/repo/src/opt/pareto.cpp" "src/opt/CMakeFiles/flower_opt.dir/pareto.cpp.o" "gcc" "src/opt/CMakeFiles/flower_opt.dir/pareto.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flower_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
