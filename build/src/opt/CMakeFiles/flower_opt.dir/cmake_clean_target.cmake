file(REMOVE_RECURSE
  "libflower_opt.a"
)
