file(REMOVE_RECURSE
  "CMakeFiles/flower_opt.dir/grid_search.cpp.o"
  "CMakeFiles/flower_opt.dir/grid_search.cpp.o.d"
  "CMakeFiles/flower_opt.dir/nsga2.cpp.o"
  "CMakeFiles/flower_opt.dir/nsga2.cpp.o.d"
  "CMakeFiles/flower_opt.dir/pareto.cpp.o"
  "CMakeFiles/flower_opt.dir/pareto.cpp.o.d"
  "libflower_opt.a"
  "libflower_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flower_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
