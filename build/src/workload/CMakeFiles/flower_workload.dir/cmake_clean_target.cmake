file(REMOVE_RECURSE
  "libflower_workload.a"
)
