# Empty compiler generated dependencies file for flower_workload.
# This may be replaced when dependencies are built.
