file(REMOVE_RECURSE
  "CMakeFiles/flower_workload.dir/arrival.cpp.o"
  "CMakeFiles/flower_workload.dir/arrival.cpp.o.d"
  "CMakeFiles/flower_workload.dir/clickstream.cpp.o"
  "CMakeFiles/flower_workload.dir/clickstream.cpp.o.d"
  "CMakeFiles/flower_workload.dir/dashboard_reader.cpp.o"
  "CMakeFiles/flower_workload.dir/dashboard_reader.cpp.o.d"
  "CMakeFiles/flower_workload.dir/trace_io.cpp.o"
  "CMakeFiles/flower_workload.dir/trace_io.cpp.o.d"
  "libflower_workload.a"
  "libflower_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flower_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
