file(REMOVE_RECURSE
  "libflower_kinesis.a"
)
