# Empty dependencies file for flower_kinesis.
# This may be replaced when dependencies are built.
