file(REMOVE_RECURSE
  "CMakeFiles/flower_kinesis.dir/stream.cpp.o"
  "CMakeFiles/flower_kinesis.dir/stream.cpp.o.d"
  "libflower_kinesis.a"
  "libflower_kinesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flower_kinesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
