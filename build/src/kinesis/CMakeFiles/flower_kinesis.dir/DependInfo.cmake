
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kinesis/stream.cpp" "src/kinesis/CMakeFiles/flower_kinesis.dir/stream.cpp.o" "gcc" "src/kinesis/CMakeFiles/flower_kinesis.dir/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flower_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flower_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cloudwatch/CMakeFiles/flower_cloudwatch.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/flower_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
