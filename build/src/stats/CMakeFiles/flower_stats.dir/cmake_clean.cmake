file(REMOVE_RECURSE
  "CMakeFiles/flower_stats.dir/correlation.cpp.o"
  "CMakeFiles/flower_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/flower_stats.dir/descriptive.cpp.o"
  "CMakeFiles/flower_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/flower_stats.dir/forecast.cpp.o"
  "CMakeFiles/flower_stats.dir/forecast.cpp.o.d"
  "CMakeFiles/flower_stats.dir/linreg.cpp.o"
  "CMakeFiles/flower_stats.dir/linreg.cpp.o.d"
  "CMakeFiles/flower_stats.dir/robust.cpp.o"
  "CMakeFiles/flower_stats.dir/robust.cpp.o.d"
  "CMakeFiles/flower_stats.dir/rolling.cpp.o"
  "CMakeFiles/flower_stats.dir/rolling.cpp.o.d"
  "libflower_stats.a"
  "libflower_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flower_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
