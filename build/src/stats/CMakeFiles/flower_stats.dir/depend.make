# Empty dependencies file for flower_stats.
# This may be replaced when dependencies are built.
