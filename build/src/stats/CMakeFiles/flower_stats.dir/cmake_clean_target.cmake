file(REMOVE_RECURSE
  "libflower_stats.a"
)
