
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/correlation.cpp" "src/stats/CMakeFiles/flower_stats.dir/correlation.cpp.o" "gcc" "src/stats/CMakeFiles/flower_stats.dir/correlation.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/flower_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/flower_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/forecast.cpp" "src/stats/CMakeFiles/flower_stats.dir/forecast.cpp.o" "gcc" "src/stats/CMakeFiles/flower_stats.dir/forecast.cpp.o.d"
  "/root/repo/src/stats/linreg.cpp" "src/stats/CMakeFiles/flower_stats.dir/linreg.cpp.o" "gcc" "src/stats/CMakeFiles/flower_stats.dir/linreg.cpp.o.d"
  "/root/repo/src/stats/robust.cpp" "src/stats/CMakeFiles/flower_stats.dir/robust.cpp.o" "gcc" "src/stats/CMakeFiles/flower_stats.dir/robust.cpp.o.d"
  "/root/repo/src/stats/rolling.cpp" "src/stats/CMakeFiles/flower_stats.dir/rolling.cpp.o" "gcc" "src/stats/CMakeFiles/flower_stats.dir/rolling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flower_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
