# Empty compiler generated dependencies file for monitoring_dashboard.
# This may be replaced when dependencies are built.
