file(REMOVE_RECURSE
  "CMakeFiles/monitoring_dashboard.dir/monitoring_dashboard.cpp.o"
  "CMakeFiles/monitoring_dashboard.dir/monitoring_dashboard.cpp.o.d"
  "monitoring_dashboard"
  "monitoring_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitoring_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
