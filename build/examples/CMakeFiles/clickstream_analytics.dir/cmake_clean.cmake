file(REMOVE_RECURSE
  "CMakeFiles/clickstream_analytics.dir/clickstream_analytics.cpp.o"
  "CMakeFiles/clickstream_analytics.dir/clickstream_analytics.cpp.o.d"
  "clickstream_analytics"
  "clickstream_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clickstream_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
