file(REMOVE_RECURSE
  "CMakeFiles/ad_attribution.dir/ad_attribution.cpp.o"
  "CMakeFiles/ad_attribution.dir/ad_attribution.cpp.o.d"
  "ad_attribution"
  "ad_attribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_attribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
