# Empty dependencies file for ad_attribution.
# This may be replaced when dependencies are built.
