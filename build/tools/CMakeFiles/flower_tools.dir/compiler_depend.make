# Empty compiler generated dependencies file for flower_tools.
# This may be replaced when dependencies are built.
