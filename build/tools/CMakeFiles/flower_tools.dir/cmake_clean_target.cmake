file(REMOVE_RECURSE
  "libflower_tools.a"
)
