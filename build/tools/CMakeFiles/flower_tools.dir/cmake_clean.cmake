file(REMOVE_RECURSE
  "CMakeFiles/flower_tools.dir/flag_parser.cpp.o"
  "CMakeFiles/flower_tools.dir/flag_parser.cpp.o.d"
  "libflower_tools.a"
  "libflower_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flower_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
