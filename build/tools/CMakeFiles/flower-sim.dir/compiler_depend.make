# Empty compiler generated dependencies file for flower-sim.
# This may be replaced when dependencies are built.
