file(REMOVE_RECURSE
  "CMakeFiles/flower-sim.dir/flower_sim.cpp.o"
  "CMakeFiles/flower-sim.dir/flower_sim.cpp.o.d"
  "flower-sim"
  "flower-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flower-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
